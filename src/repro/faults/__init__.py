"""repro.faults: composable, seeded adversarial-infrastructure schedules.

Builders live in :mod:`repro.faults.plan`; the event/recovery vocabulary they
lower into is :mod:`repro.systems.fault_tolerance`, and the Laminar runtime
consumes the resulting :class:`~repro.systems.fault_tolerance.FailureInjector`
in pure event time.  The whole subsystem is deterministic from unit seeds:
fleet vs process stepping stay ``==`` under injected chaos.
"""

from ..systems.fault_tolerance import (
    CRASH_KINDS,
    FailureEvent,
    FailureInjector,
    FailureKind,
    RecoveryModel,
    RecoveryRecord,
    failure_kind_description,
    known_failure_kinds,
    register_failure_kind,
)
from .plan import DEFAULT_RACK_SIZE, FailurePlan, rack_machines

__all__ = [
    "CRASH_KINDS",
    "DEFAULT_RACK_SIZE",
    "FailureEvent",
    "FailureInjector",
    "FailureKind",
    "FailurePlan",
    "RecoveryModel",
    "RecoveryRecord",
    "failure_kind_description",
    "known_failure_kinds",
    "rack_machines",
    "register_failure_kind",
]

"""Generative, seeded fault schedules (adversarial infrastructure).

The paper's fault model (Fig 15) is independent per-machine failure at fixed
rates.  :class:`FailurePlan` keeps that model and adds the fleet-level
dynamics a production datacenter actually exhibits:

* **correlated failure waves** — a rack/zone power or switch event takes a
  group of machines down simultaneously;
* **spot-preemption waves** — the provider reclaims a set of spot machines
  with a warning lead time, so the system can drain them gracefully;
* **stragglers** — persistent or transient slowdown multipliers on decode
  step time and environment latency for chosen machines;
* **degraded networks** — inter-machine bandwidth dips and per-machine link
  flaps that weight-sync paths ride out with bounded-backoff retries.

Every builder derives its schedule deterministically from an integer seed
(``numpy.random.default_rng``), so a benchmark unit's seed fully determines
its chaos — the bit-identity contract extends to adversarial runs.  Plans
compose with :meth:`FailurePlan.merge` and lower into the existing
:class:`~repro.systems.fault_tolerance.FailureInjector`, which the Laminar
runtime already polls in pure event time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..systems.fault_tolerance import (
    FailureEvent,
    FailureInjector,
    FailureKind,
    RecoveryModel,
)

#: Rollout machines per rack in the simulated topology (8-GPU machines,
#: four to a rack — the zone granularity correlated waves operate on).
DEFAULT_RACK_SIZE = 4


def rack_machines(rack: int, rack_size: int = DEFAULT_RACK_SIZE) -> List[int]:
    """Machine ids belonging to ``rack`` under the fixed rack layout."""
    if rack < 0:
        raise ValueError("rack must be non-negative")
    if rack_size <= 0:
        raise ValueError("rack_size must be positive")
    return list(range(rack * rack_size, (rack + 1) * rack_size))


@dataclass
class FailurePlan:
    """A composable, deterministic schedule of failure/degradation events."""

    events: List[FailureEvent] = field(default_factory=list)
    recovery: RecoveryModel = field(default_factory=RecoveryModel)

    # ------------------------------------------------------------------ composition
    def add(self, event: FailureEvent) -> "FailurePlan":
        self.events.append(event)
        return self

    def extend(self, events: Sequence[FailureEvent]) -> "FailurePlan":
        self.events.extend(events)
        return self

    def merge(self, *others: "FailurePlan") -> "FailurePlan":
        """Fold other plans' events into this one (recovery model kept)."""
        for other in others:
            self.events.extend(other.events)
        return self

    def sorted_events(self) -> List[FailureEvent]:
        """Events in firing order (ties broken by kind then target, so the
        order is total and identical in every stepping mode)."""
        return sorted(self.events, key=lambda e: (e.time, e.kind, e.target))

    def build_injector(self, recovery: Optional[RecoveryModel] = None) -> FailureInjector:
        return FailureInjector(
            events=self.sorted_events(), recovery=recovery or self.recovery
        )

    @property
    def horizon(self) -> float:
        return max((e.time for e in self.events), default=0.0)

    # ------------------------------------------------------------------ builders
    @classmethod
    def independent(
        cls,
        seed: int,
        num_machines: int,
        horizon: float,
        rate_per_machine_hour: float = 0.05,
        kind: str = FailureKind.ROLLOUT_MACHINE,
        reinit_success_rate: float = 0.5,
    ) -> "FailurePlan":
        """The paper's model: independent Poisson failures per machine."""
        if num_machines <= 0:
            raise ValueError("num_machines must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if rate_per_machine_hour < 0:
            raise ValueError("rate must be non-negative")
        rng = np.random.default_rng(seed)
        plan = cls()
        rate_per_second = rate_per_machine_hour / 3600.0
        for machine in range(num_machines):
            if rate_per_second == 0:
                continue
            t = float(rng.exponential(1.0 / rate_per_second))
            while t < horizon:
                reinit = bool(rng.random() < reinit_success_rate)
                plan.add(FailureEvent(time=t, kind=kind, target=machine,
                                      reinit_succeeds=reinit))
                t += float(rng.exponential(1.0 / rate_per_second))
        return plan

    @classmethod
    def correlated_wave(
        cls,
        time: float,
        machines: Sequence[int],
        reinit_succeeds: bool = False,
    ) -> "FailurePlan":
        """Rack/zone-scoped wave: every machine in the group fails at once."""
        plan = cls()
        for machine in machines:
            plan.add(FailureEvent(time=time, kind=FailureKind.ROLLOUT_MACHINE,
                                  target=machine, reinit_succeeds=reinit_succeeds))
        return plan

    @classmethod
    def rack_wave(
        cls,
        time: float,
        rack: int,
        rack_size: int = DEFAULT_RACK_SIZE,
        reinit_succeeds: bool = False,
    ) -> "FailurePlan":
        """A correlated wave scoped to one rack of the fixed topology."""
        return cls.correlated_wave(time, rack_machines(rack, rack_size),
                                   reinit_succeeds=reinit_succeeds)

    @classmethod
    def preemption_wave(
        cls,
        time: float,
        machines: Sequence[int],
        warning_lead: float = 120.0,
    ) -> "FailurePlan":
        """Spot-preemption wave with a warning lead time.

        Each machine receives a :data:`~FailureKind.SPOT_WARNING` at ``time``
        (the system drains it gracefully — zero trajectory loss) and the
        :data:`~FailureKind.SPOT_PREEMPTION` reclaim ``warning_lead`` seconds
        later.
        """
        if warning_lead < 0:
            raise ValueError("warning_lead must be non-negative")
        plan = cls()
        for machine in machines:
            plan.add(FailureEvent(time=time, kind=FailureKind.SPOT_WARNING,
                                  target=machine, duration=warning_lead))
            plan.add(FailureEvent(time=time + warning_lead,
                                  kind=FailureKind.SPOT_PREEMPTION, target=machine))
        return plan

    @classmethod
    def stragglers(
        cls,
        seed: int,
        num_machines: int,
        window: Tuple[float, float],
        count: int = 1,
        factor_range: Tuple[float, float] = (1.5, 4.0),
        duration_range: Tuple[float, float] = (20.0, 60.0),
        persistent: bool = False,
    ) -> "FailurePlan":
        """Seeded straggler schedule over ``count`` distinct machines.

        Transient stragglers (the default) emit a paired
        :data:`~FailureKind.STRAGGLER_CLEAR` when their window ends;
        persistent ones degrade for the rest of the run.
        """
        if num_machines <= 0:
            raise ValueError("num_machines must be positive")
        if not 0 < count <= num_machines:
            raise ValueError("count must be in [1, num_machines]")
        start, end = window
        if end <= start:
            raise ValueError("window must have positive length")
        rng = np.random.default_rng(seed)
        machines = rng.choice(num_machines, size=count, replace=False)
        plan = cls()
        for machine in sorted(int(m) for m in machines):
            t = float(rng.uniform(start, end))
            factor = float(rng.uniform(*factor_range))
            if persistent:
                plan.add(FailureEvent(time=t, kind=FailureKind.STRAGGLER,
                                      target=machine, factor=factor))
                continue
            duration = float(rng.uniform(*duration_range))
            plan.add(FailureEvent(time=t, kind=FailureKind.STRAGGLER,
                                  target=machine, factor=factor, duration=duration))
            plan.add(FailureEvent(time=t + duration, kind=FailureKind.STRAGGLER_CLEAR,
                                  target=machine))
        return plan

    @classmethod
    def network_degradation(
        cls,
        seed: int,
        window: Tuple[float, float],
        dips: int = 1,
        dip_factor_range: Tuple[float, float] = (0.2, 0.6),
        dip_duration_range: Tuple[float, float] = (30.0, 90.0),
        flap_machines: Sequence[int] = (),
        flap_duration_range: Tuple[float, float] = (5.0, 15.0),
    ) -> "FailurePlan":
        """Seeded bandwidth dips (global) and link flaps (per machine)."""
        start, end = window
        if end <= start:
            raise ValueError("window must have positive length")
        rng = np.random.default_rng(seed)
        plan = cls()
        for _ in range(dips):
            t = float(rng.uniform(start, end))
            factor = float(rng.uniform(*dip_factor_range))
            duration = float(rng.uniform(*dip_duration_range))
            plan.add(FailureEvent(time=t, kind=FailureKind.NETWORK_DEGRADED,
                                  target=-1, factor=factor, duration=duration))
            plan.add(FailureEvent(time=t + duration,
                                  kind=FailureKind.NETWORK_RESTORED, target=-1))
        for machine in flap_machines:
            t = float(rng.uniform(start, end))
            duration = float(rng.uniform(*flap_duration_range))
            plan.add(FailureEvent(time=t, kind=FailureKind.LINK_FLAP,
                                  target=machine, duration=duration))
        return plan

    @classmethod
    def chaos(
        cls,
        seed: int,
        num_machines: int,
        horizon: float,
        rack_size: int = DEFAULT_RACK_SIZE,
    ) -> "FailurePlan":
        """The kitchen sink: one seeded composition of every adversity.

        Schedules, in rng order: a correlated rack wave, a spot-preemption
        wave with warning lead, a transient straggler, and a network window
        (one bandwidth dip plus one link flap).  All times land inside
        ``[0.1, 0.8] * horizon`` so recoveries overlap live work rather than
        trailing off the end of the run.
        """
        if num_machines < 2:
            raise ValueError("chaos needs at least two machines")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = np.random.default_rng(seed)
        lo, hi = 0.1 * horizon, 0.8 * horizon
        plan = cls()

        num_racks = max(1, num_machines // rack_size)
        rack = int(rng.integers(num_racks))
        machines = [m for m in rack_machines(rack, rack_size) if m < num_machines]
        # Never take the whole fleet down at once: cap the wave at half.
        machines = machines[: max(1, num_machines // 2)]
        plan.merge(cls.correlated_wave(float(rng.uniform(lo, hi)), machines))

        victim = int(rng.integers(num_machines))
        lead = float(rng.uniform(0.05, 0.15)) * horizon
        plan.merge(cls.preemption_wave(float(rng.uniform(lo, hi)), [victim],
                                       warning_lead=lead))

        plan.merge(cls.stragglers(
            int(rng.integers(2 ** 31)), num_machines, (lo, hi),
            duration_range=(0.1 * horizon, 0.3 * horizon)))

        flap_machine = int(rng.integers(num_machines))
        plan.merge(cls.network_degradation(
            int(rng.integers(2 ** 31)), (lo, hi),
            dip_duration_range=(0.1 * horizon, 0.2 * horizon),
            flap_machines=[flap_machine],
            flap_duration_range=(0.02 * horizon, 0.08 * horizon)))
        return plan

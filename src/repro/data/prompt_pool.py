"""Prompt pool: supplies initial states (questions) for rollout generation.

Runs conceptually on a CPU machine (§3.1) so it survives GPU failures.  In the
reproduction it is an in-memory queue that rollout replicas draw batches from;
when it runs low it refills itself from the :class:`~repro.workload.PromptDataset`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

import numpy as np

from ..types import Prompt
from ..workload.datasets import PromptDataset


class PromptPool:
    """FIFO pool of prompts with automatic refill from a dataset."""

    def __init__(
        self,
        dataset: PromptDataset,
        rng: Optional[np.random.Generator] = None,
        refill_prompts: int = 512,
        low_watermark: int = 1024,
    ) -> None:
        if refill_prompts <= 0:
            raise ValueError("refill_prompts must be positive")
        if low_watermark < 0:
            raise ValueError("low_watermark must be non-negative")
        self.dataset = dataset
        self.rng = rng or np.random.default_rng(dataset.seed + 1)
        self.refill_prompts = refill_prompts
        self.low_watermark = low_watermark
        self._queue: Deque[Prompt] = deque()
        self.total_supplied = 0
        self._refill()

    def __len__(self) -> int:
        return len(self._queue)

    def _refill(self) -> None:
        batch = self.dataset.sample_batch(self.refill_prompts, self.rng)
        self._queue.extend(batch)

    def take(self, count: int) -> List[Prompt]:
        """Remove and return up to ``count`` prompts (refilling as needed)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        while len(self._queue) < count or len(self._queue) < self.low_watermark:
            self._refill()
        taken = [self._queue.popleft() for _ in range(count)]
        self.total_supplied += len(taken)
        return taken

    def put_back(self, prompts: List[Prompt]) -> None:
        """Return prompts to the head of the pool (e.g. after a failed replica)."""
        for prompt in reversed(prompts):
            self._queue.appendleft(prompt)
        self.total_supplied -= len(prompts)

"""Partial response pool: centrally stores in-progress trajectories.

§3.1/§3.3: every rollout streams the tokens of its in-flight trajectories to
this CPU-side pool so that a rollout-machine failure loses no work — the
rollout manager simply redirects the interrupted trajectories to healthy
replicas holding the same weight version.  The pool also backs the repack
mechanism: moving a trajectory between replicas is a metadata operation plus
a KVCache re-prefill of the already-streamed tokens on the destination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..types import Trajectory


@dataclass
class PartialResponsePool:
    """Tracks every in-progress trajectory and which replica owns it."""

    _entries: Dict[int, Trajectory] = field(default_factory=dict)
    _owner: Dict[int, int] = field(default_factory=dict)
    #: Cumulative counters for observability / tests.
    total_registered: int = 0
    total_completed: int = 0
    total_migrated: int = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, traj_id: int) -> bool:
        return traj_id in self._entries

    # -- registration -----------------------------------------------------------
    def register(self, trajectory: Trajectory, replica_id: int) -> None:
        """Start tracking an in-progress trajectory owned by ``replica_id``."""
        if trajectory.traj_id in self._entries:
            raise KeyError(f"trajectory {trajectory.traj_id} already registered")
        self._entries[trajectory.traj_id] = trajectory
        self._owner[trajectory.traj_id] = replica_id
        self.total_registered += 1

    def stream_progress(self, traj_id: int, generated_tokens: int) -> None:
        """Record streamed progress (tokens generated so far) for a trajectory."""
        trajectory = self._entries.get(traj_id)
        if trajectory is None:
            raise KeyError(f"trajectory {traj_id} is not registered")
        if generated_tokens < trajectory.generated_tokens:
            raise ValueError("generated_tokens cannot decrease")
        trajectory.generated_tokens = min(trajectory.target_tokens, generated_tokens)

    def complete(self, traj_id: int) -> Trajectory:
        """Remove a finished trajectory from the pool and return it."""
        trajectory = self._entries.pop(traj_id, None)
        if trajectory is None:
            raise KeyError(f"trajectory {traj_id} is not registered")
        self._owner.pop(traj_id, None)
        self.total_completed += 1
        return trajectory

    def discard(self, traj_id: int) -> None:
        """Drop a trajectory without completing it (e.g. evicted prompt)."""
        self._entries.pop(traj_id, None)
        self._owner.pop(traj_id, None)

    # -- ownership / migration ----------------------------------------------------
    def owner(self, traj_id: int) -> int:
        try:
            return self._owner[traj_id]
        except KeyError:
            raise KeyError(f"trajectory {traj_id} is not registered") from None

    def migrate(self, traj_id: int, new_replica_id: int) -> Trajectory:
        """Reassign an in-progress trajectory to another replica (repack/failover)."""
        trajectory = self._entries.get(traj_id)
        if trajectory is None:
            raise KeyError(f"trajectory {traj_id} is not registered")
        self._owner[traj_id] = new_replica_id
        trajectory.repack_count += 1
        self.total_migrated += 1
        return trajectory

    def owned_by(self, replica_id: int) -> List[Trajectory]:
        """All in-progress trajectories currently owned by ``replica_id``."""
        return [self._entries[tid] for tid, owner in self._owner.items() if owner == replica_id]

    def orphans_of(self, replica_ids: List[int]) -> List[Trajectory]:
        """Trajectories owned by any of the (failed) ``replica_ids``."""
        wanted = set(replica_ids)
        return [self._entries[tid] for tid, owner in self._owner.items() if owner in wanted]

    def in_progress_tokens(self) -> int:
        """Total generated-but-unconsumed tokens currently protected by the pool."""
        return sum(t.generated_tokens for t in self._entries.values())

    def snapshot(self) -> List[Trajectory]:
        return list(self._entries.values())

"""Experience buffer holding completed trajectories for trainer sampling.

The buffer is the decoupling point between data production (rollouts) and
consumption (trainer): rollouts write completed, scored trajectories; the
trainer samples batches whenever enough are available (§3.2, step 3-4).
Writer and sampler expose pluggable strategies (§3.1).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..types import Experience, Trajectory
from .sampling import EvictOldest, EvictionStrategy, FIFOSampling, SamplingStrategy


class ExperienceBuffer:
    """Bounded buffer of :class:`Experience` with pluggable sampling/eviction."""

    def __init__(
        self,
        capacity: int = 1_000_000,
        sampler: Optional[SamplingStrategy] = None,
        evictor: Optional[EvictionStrategy] = None,
        seed: int = 0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.sampler = sampler or FIFOSampling()
        self.evictor = evictor or EvictOldest()
        self.rng = np.random.default_rng(seed)
        self._items: List[Experience] = []
        self.total_written = 0
        self.total_sampled = 0
        self.total_evicted = 0

    def __len__(self) -> int:
        return len(self._items)

    # -- writer -----------------------------------------------------------------
    def write(self, trajectory: Trajectory, reward: float, actor_version: int,
              priority: float = 0.0) -> Experience:
        """Score ``trajectory`` and append it to the buffer."""
        experience = Experience(
            trajectory=trajectory,
            reward=reward,
            actor_version_at_completion=actor_version,
            priority=priority,
        )
        self._items.append(experience)
        self.total_written += 1
        self._maybe_evict()
        return experience

    def write_experience(self, experience: Experience) -> None:
        self._items.append(experience)
        self.total_written += 1
        self._maybe_evict()

    def _maybe_evict(self) -> None:
        overflow = len(self._items) - self.capacity
        if overflow <= 0:
            return
        victims = sorted(self.evictor.select_victims(self._items, overflow), reverse=True)
        for index in victims:
            del self._items[index]
            self.total_evicted += 1

    # -- sampler -----------------------------------------------------------------
    def can_sample(self, batch_size: int) -> bool:
        return len(self._items) >= batch_size

    def sample(self, batch_size: int) -> List[Experience]:
        """Remove and return a batch chosen by the sampling strategy.

        Raises ``ValueError`` if fewer than ``batch_size`` experiences are
        buffered — callers are expected to check :meth:`can_sample` first
        (the trainer process waits on buffer occupancy).
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if len(self._items) < batch_size:
            raise ValueError(
                f"buffer holds {len(self._items)} experiences, need {batch_size}"
            )
        indices = self.sampler.select(self._items, batch_size, self.rng)
        if len(set(indices)) != batch_size:
            raise RuntimeError(
                f"sampler {self.sampler.name!r} returned {len(set(indices))} unique "
                f"indices for a batch of {batch_size}"
            )
        chosen = set(indices)
        batch = [self._items[i] for i in sorted(chosen)]
        self._items = [item for i, item in enumerate(self._items) if i not in chosen]
        self.total_sampled += len(batch)
        return batch

    # -- inspection ---------------------------------------------------------------
    def occupancy(self) -> int:
        return len(self._items)

    def staleness_distribution(self) -> List[int]:
        """Inherent staleness of every buffered experience (Fig 10 input)."""
        return [exp.staleness for exp in self._items]

    def mean_reward(self) -> float:
        if not self._items:
            return 0.0
        return float(np.mean([exp.reward for exp in self._items]))

    def peek_all(self) -> List[Experience]:
        return list(self._items)

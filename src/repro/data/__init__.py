"""Data module: prompt pool, partial-response pool, experience buffer (§3.1)."""

from .experience_buffer import ExperienceBuffer
from .partial_response_pool import PartialResponsePool
from .prompt_pool import PromptPool
from .sampling import (
    EvictOldest,
    EvictStalest,
    EvictionStrategy,
    FIFOSampling,
    FreshnessSampling,
    PrioritySampling,
    SAMPLING_REGISTRY,
    SamplingStrategy,
    UniformSampling,
    make_sampler,
)

__all__ = [
    "ExperienceBuffer",
    "PartialResponsePool",
    "PromptPool",
    "EvictOldest",
    "EvictStalest",
    "EvictionStrategy",
    "FIFOSampling",
    "FreshnessSampling",
    "PrioritySampling",
    "SAMPLING_REGISTRY",
    "SamplingStrategy",
    "UniformSampling",
    "make_sampler",
]

"""Paged KVCache accounting for rollout replicas.

The repack mechanism (§5) keys entirely off KVCache utilisation, so the
reproduction models the cache the way vLLM does: a fixed pool of fixed-size
blocks, allocated per in-flight trajectory as it grows.  The model exposes the
utilisation lifecycle of Figure 9: ramp-up while waiting trajectories fill
freed space, a steady plateau near ``C_max``, and a ramp-down once no waiting
trajectories remain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


#: Default vLLM-style block size in tokens.
DEFAULT_BLOCK_SIZE = 16

#: "Full" utilisation threshold C_max from §5.2 (99% of the cache).
DEFAULT_C_MAX = 0.99


class KVCacheError(RuntimeError):
    """Raised on illegal KVCache operations (double free, over-allocation)."""


@dataclass
class KVCacheConfig:
    """Sizing of one replica's KVCache pool."""

    total_blocks: int
    block_size: int = DEFAULT_BLOCK_SIZE
    c_max: float = DEFAULT_C_MAX

    def __post_init__(self) -> None:
        if self.total_blocks <= 0:
            raise ValueError("total_blocks must be positive")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if not 0 < self.c_max <= 1:
            raise ValueError("c_max must be in (0, 1]")

    @property
    def total_tokens(self) -> int:
        """Maximum number of cached tokens across all sequences."""
        return self.total_blocks * self.block_size


@dataclass
class _Allocation:
    tokens: int = 0
    blocks: int = 0


@dataclass
class KVCache:
    """Block-granular KVCache for a single rollout replica."""

    config: KVCacheConfig
    _allocations: Dict[int, _Allocation] = field(default_factory=dict)
    _used_blocks: int = 0
    peak_blocks: int = 0
    _usage_history: List[float] = field(default_factory=list)

    # -- allocation ---------------------------------------------------------
    def blocks_for(self, tokens: int) -> int:
        """Number of blocks needed to hold ``tokens``."""
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        if tokens == 0:
            return 0
        return -(-tokens // self.config.block_size)

    def can_allocate(self, tokens: int) -> bool:
        """True if a new sequence of ``tokens`` tokens fits right now."""
        return self._used_blocks + self.blocks_for(tokens) <= self.config.total_blocks

    def allocate(self, seq_id: int, tokens: int) -> None:
        """Reserve cache space for a new sequence ``seq_id`` of ``tokens`` tokens."""
        if seq_id in self._allocations:
            raise KVCacheError(f"sequence {seq_id} already allocated")
        blocks = self.blocks_for(tokens)
        if self._used_blocks + blocks > self.config.total_blocks:
            raise KVCacheError(
                f"cannot allocate {blocks} blocks for seq {seq_id}: "
                f"{self.free_blocks} free"
            )
        self._allocations[seq_id] = _Allocation(tokens=tokens, blocks=blocks)
        self._used_blocks += blocks
        self.peak_blocks = max(self.peak_blocks, self._used_blocks)

    def append_tokens(self, seq_id: int, tokens: int = 1) -> None:
        """Grow sequence ``seq_id`` by ``tokens`` decoded tokens."""
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        alloc = self._allocations.get(seq_id)
        if alloc is None:
            raise KVCacheError(f"sequence {seq_id} is not allocated")
        new_total = alloc.tokens + tokens
        new_blocks = self.blocks_for(new_total)
        delta = new_blocks - alloc.blocks
        if delta > 0:
            if self._used_blocks + delta > self.config.total_blocks:
                raise KVCacheError(f"KVCache overflow growing sequence {seq_id}")
            self._used_blocks += delta
        alloc.tokens = new_total
        alloc.blocks = new_blocks
        self.peak_blocks = max(self.peak_blocks, self._used_blocks)

    def free(self, seq_id: int) -> int:
        """Release the sequence's blocks, returning how many were freed."""
        alloc = self._allocations.pop(seq_id, None)
        if alloc is None:
            raise KVCacheError(f"sequence {seq_id} is not allocated")
        self._used_blocks -= alloc.blocks
        return alloc.blocks

    def evict_all(self) -> None:
        """Drop every allocation (used when a replica is repacked away or fails)."""
        self._allocations.clear()
        self._used_blocks = 0

    # -- inspection -----------------------------------------------------------
    @property
    def used_blocks(self) -> int:
        return self._used_blocks

    @property
    def free_blocks(self) -> int:
        return self.config.total_blocks - self._used_blocks

    @property
    def utilization(self) -> float:
        """Fraction of blocks in use, in [0, 1]."""
        return self._used_blocks / self.config.total_blocks

    @property
    def num_sequences(self) -> int:
        return len(self._allocations)

    def sequence_tokens(self, seq_id: int) -> int:
        alloc = self._allocations.get(seq_id)
        if alloc is None:
            raise KVCacheError(f"sequence {seq_id} is not allocated")
        return alloc.tokens

    def sequence_ids(self) -> List[int]:
        return list(self._allocations)

    def is_full(self) -> bool:
        """True if utilisation has reached the C_max threshold."""
        return self.utilization >= self.config.c_max

    def record_usage(self) -> None:
        """Append the current utilisation to the usage history (Fig 9 traces)."""
        self._usage_history.append(self.utilization)

    @property
    def usage_history(self) -> List[float]:
        return list(self._usage_history)


def kvcache_blocks_for_memory(
    free_memory_bytes: float,
    kv_bytes_per_token: float,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> int:
    """How many KVCache blocks fit into ``free_memory_bytes``.

    ``kv_bytes_per_token`` is provided by the model spec (2 * layers * kv_heads
    * head_dim * dtype bytes, divided by the tensor-parallel degree).
    """
    if kv_bytes_per_token <= 0:
        raise ValueError("kv_bytes_per_token must be positive")
    tokens = int(free_memory_bytes // kv_bytes_per_token)
    return max(0, tokens // block_size)

"""Paged KVCache accounting for rollout replicas.

The repack mechanism (§5) keys entirely off KVCache utilisation, so the
reproduction models the cache the way vLLM does: a fixed pool of fixed-size
blocks, allocated per in-flight trajectory as it grows.  The model exposes the
utilisation lifecycle of Figure 9: ramp-up while waiting trajectories fill
freed space, a steady plateau near ``C_max``, and a ramp-down once no waiting
trajectories remain.

The per-sequence ledger is stored structure-of-arrays (parallel numpy arrays
of sequence ids / tokens / blocks plus an id→row index), so the vectorized
replica engine can grow every decoding sequence in one call
(:meth:`KVCache.append_tokens_many`) instead of one dict update per sequence
per decode event.  Freed rows go on a free list rather than being compacted,
so a sequence's row handle (:meth:`KVCache.row_of`, returned by
:meth:`KVCache.allocate`) stays valid for its whole residency — the engine
keeps per-sequence row arrays alive across arbitrary interleavings of frees
and allocations without re-resolving ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

#: Default vLLM-style block size in tokens.
DEFAULT_BLOCK_SIZE = 16

#: "Full" utilisation threshold C_max from §5.2 (99% of the cache).
DEFAULT_C_MAX = 0.99

#: Initial row capacity of the SoA ledger (grown geometrically).
_INITIAL_CAPACITY = 64


class KVCacheError(RuntimeError):
    """Raised on illegal KVCache operations (double free, over-allocation)."""


def grow_array(array: np.ndarray, capacity: int, fill=0) -> np.ndarray:
    """Return ``array`` re-homed in a ``capacity``-sized buffer of ``fill``.

    Shared by every geometric grow-and-copy site of the SoA state (the
    KVCache ledger, the replica slot arrays, the decode/env-wait vectors) so
    the growth policy lives in one place.
    """
    grown = np.full(capacity, fill, dtype=array.dtype)
    grown[: len(array)] = array
    return grown


@dataclass
class KVCacheConfig:
    """Sizing of one replica's KVCache pool."""

    total_blocks: int
    block_size: int = DEFAULT_BLOCK_SIZE
    c_max: float = DEFAULT_C_MAX

    def __post_init__(self) -> None:
        if self.total_blocks <= 0:
            raise ValueError("total_blocks must be positive")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if not 0 < self.c_max <= 1:
            raise ValueError("c_max must be in (0, 1]")

    @property
    def total_tokens(self) -> int:
        """Maximum number of cached tokens across all sequences."""
        return self.total_blocks * self.block_size


class KVCache:
    """Block-granular KVCache for a single rollout replica."""

    def __init__(self, config: KVCacheConfig) -> None:
        self.config = config
        self.peak_blocks = 0
        self._used_blocks = 0
        self._usage_history: List[float] = []
        # SoA ledger: row r holds (_tokens[r], _blocks[r]) for one live
        # sequence; _row_of maps seq_id -> row.  Freed rows are recycled via
        # _free_rows, never compacted, so live rows are stable handles.
        self._tokens = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._blocks = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._row_of: Dict[int, int] = {}
        self._free_rows: List[int] = list(range(_INITIAL_CAPACITY - 1, -1, -1))

    # -- allocation ---------------------------------------------------------
    def blocks_for(self, tokens: int) -> int:
        """Number of blocks needed to hold ``tokens``."""
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        if tokens == 0:
            return 0
        return -(-tokens // self.config.block_size)

    def blocks_for_many(self, tokens: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`blocks_for` (tokens must be non-negative)."""
        return -(-tokens // self.config.block_size)

    def can_allocate(self, tokens: int) -> bool:
        """True if a new sequence of ``tokens`` tokens fits right now."""
        return self._used_blocks + self.blocks_for(tokens) <= self.config.total_blocks

    def _grow_ledger(self) -> None:
        old = len(self._tokens)
        new = 2 * old
        self._tokens = grow_array(self._tokens, new)
        self._blocks = grow_array(self._blocks, new)
        self._free_rows.extend(range(new - 1, old - 1, -1))

    def allocate(self, seq_id: int, tokens: int) -> int:
        """Reserve cache space for a new sequence; returns its stable row handle."""
        if seq_id in self._row_of:
            raise KVCacheError(f"sequence {seq_id} already allocated")
        blocks = self.blocks_for(tokens)
        if self._used_blocks + blocks > self.config.total_blocks:
            raise KVCacheError(
                f"cannot allocate {blocks} blocks for seq {seq_id}: "
                f"{self.free_blocks} free"
            )
        if not self._free_rows:
            self._grow_ledger()
        row = self._free_rows.pop()
        self._tokens[row] = tokens
        self._blocks[row] = blocks
        self._row_of[seq_id] = row
        self._used_blocks += blocks
        self.peak_blocks = max(self.peak_blocks, self._used_blocks)
        return row

    def append_tokens(self, seq_id: int, tokens: int = 1) -> None:
        """Grow sequence ``seq_id`` by ``tokens`` decoded tokens."""
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        row = self._row_of.get(seq_id)
        if row is None:
            raise KVCacheError(f"sequence {seq_id} is not allocated")
        new_total = int(self._tokens[row]) + tokens
        new_blocks = self.blocks_for(new_total)
        delta = new_blocks - int(self._blocks[row])
        if delta > 0:
            if self._used_blocks + delta > self.config.total_blocks:
                raise KVCacheError(f"KVCache overflow growing sequence {seq_id}")
            self._used_blocks += delta
        self._tokens[row] = new_total
        self._blocks[row] = new_blocks
        self.peak_blocks = max(self.peak_blocks, self._used_blocks)

    def append_tokens_many(
        self,
        seq_ids: Sequence[int],
        tokens: np.ndarray,
        rows: Optional[np.ndarray] = None,
    ) -> None:
        """Grow many sequences at once (the vectorized decode hot path).

        ``tokens[i]`` decoded tokens are appended to ``seq_ids[i]``.  Callers
        that hold the stable row handles (from :meth:`allocate` or
        :meth:`rows_for`) pass them via ``rows`` to skip the id lookups.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.size == 0:
            return
        if np.any(tokens < 0):
            raise ValueError("tokens must be non-negative")
        if rows is None:
            rows = self.rows_for(seq_ids)
        new_totals = self._tokens[rows] + tokens
        new_blocks = self.blocks_for_many(new_totals)
        grow = int((new_blocks - self._blocks[rows]).sum())
        if grow > 0 and self._used_blocks + grow > self.config.total_blocks:
            # Replicate the scalar error semantics exactly: apply sequences in
            # order until the one that overflows, then raise.
            for seq_id, count in zip(seq_ids, tokens):
                self.append_tokens(int(seq_id), int(count))
            raise AssertionError("unreachable: scalar fallback must overflow")
        self._tokens[rows] = new_totals
        self._blocks[rows] = new_blocks
        self._used_blocks += grow
        self.peak_blocks = max(self.peak_blocks, self._used_blocks)

    def allocate_many(self, seq_ids: Sequence[int], tokens: np.ndarray) -> np.ndarray:
        """Batch :meth:`allocate`: reserve space for many new sequences at once.

        Returns the stable row handle of each sequence, in input order.  The
        error semantics match a scalar loop exactly — duplicate ids and the
        first over-allocating sequence raise after every *earlier* sequence in
        the batch has been applied — and rows are recycled from the free list
        in the same order a scalar loop would pop them, so the ledger layout
        is bit-identical to per-sequence allocation.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.size == 0:
            return np.empty(0, dtype=np.int64)
        blocks = self.blocks_for_many(tokens)
        total = int(blocks.sum())
        if (
            self._used_blocks + total > self.config.total_blocks
            or any(seq_id in self._row_of for seq_id in seq_ids)
        ):
            # Replicate the scalar error semantics exactly: apply sequences in
            # order until the one that fails, then raise.
            for seq_id, count in zip(seq_ids, tokens):
                self.allocate(int(seq_id), int(count))
            raise AssertionError("unreachable: scalar fallback must fail")
        rows = np.empty(len(tokens), dtype=np.int64)
        for index, seq_id in enumerate(seq_ids):
            if not self._free_rows:
                self._grow_ledger()
            row = self._free_rows.pop()
            rows[index] = row
            self._row_of[int(seq_id)] = row
        self._tokens[rows] = tokens
        self._blocks[rows] = blocks
        self._used_blocks += total
        self.peak_blocks = max(self.peak_blocks, self._used_blocks)
        return rows

    def free(self, seq_id: int) -> int:
        """Release the sequence's blocks, returning how many were freed."""
        row = self._row_of.pop(seq_id, None)
        if row is None:
            raise KVCacheError(f"sequence {seq_id} is not allocated")
        blocks = int(self._blocks[row])
        self._free_rows.append(row)
        self._used_blocks -= blocks
        return blocks

    def free_many(self, seq_ids: Sequence[int]) -> int:
        """Batch :meth:`free`: release many sequences in one ledger update.

        Returns the total number of blocks freed.  Rows return to the free
        list in input order (the order a scalar loop would push them), so
        subsequent allocations recycle identical rows either way.
        """
        if len(seq_ids) == 0:
            return 0
        row_of = self._row_of
        unique = {int(seq_id) for seq_id in seq_ids}
        if len(unique) != len(seq_ids) or any(s not in row_of for s in unique):
            # Replicate the scalar partial-failure semantics: free in order
            # until the unallocated (or duplicated) sequence, then raise.
            return sum(self.free(int(seq_id)) for seq_id in seq_ids)
        rows = np.empty(len(seq_ids), dtype=np.int64)
        for index, seq_id in enumerate(seq_ids):
            rows[index] = row_of.pop(int(seq_id))
        freed = int(self._blocks[rows].sum())
        self._free_rows.extend(rows.tolist())
        self._used_blocks -= freed
        return freed

    def note_peak(self, peak_blocks: int) -> None:
        """Raise the high-water mark to ``peak_blocks`` if it exceeds it.

        Used by the fused cross-replica stepper, which tracks a replica's
        chronological block usage outside the ledger during a drain and
        settles the ledger afterwards with telescoped appends/frees — the
        transient peaks the scalar call sequence would have recorded are
        re-applied here.
        """
        if peak_blocks > self.peak_blocks:
            self.peak_blocks = peak_blocks

    def evict_all(self) -> None:
        """Drop every allocation (used when a replica is repacked away or fails)."""
        self._row_of.clear()
        self._free_rows = list(range(len(self._tokens) - 1, -1, -1))
        self._used_blocks = 0

    # -- batched inspection ---------------------------------------------------
    def row_of(self, seq_id: int) -> int:
        """Stable row handle of a live sequence (valid until it is freed)."""
        row = self._row_of.get(seq_id)
        if row is None:
            raise KVCacheError(f"sequence {seq_id} is not allocated")
        return row

    def rows_for(self, seq_ids: Sequence[int]) -> np.ndarray:
        """Row handles for ``seq_ids`` (each valid until that sequence is freed)."""
        row_of = self._row_of
        try:
            return np.fromiter(
                (row_of[int(s)] for s in seq_ids), dtype=np.int64, count=len(seq_ids)
            )
        except KeyError as exc:
            raise KVCacheError(f"sequence {exc.args[0]} is not allocated") from None

    def tokens_at(self, rows: np.ndarray) -> np.ndarray:
        """Cached token counts for the given row handles."""
        return self._tokens[rows]

    # -- inspection -----------------------------------------------------------
    @property
    def used_blocks(self) -> int:
        return self._used_blocks

    @property
    def free_blocks(self) -> int:
        return self.config.total_blocks - self._used_blocks

    @property
    def utilization(self) -> float:
        """Fraction of blocks in use, in [0, 1]."""
        return self._used_blocks / self.config.total_blocks

    @property
    def num_sequences(self) -> int:
        return len(self._row_of)

    def sequence_tokens(self, seq_id: int) -> int:
        row = self._row_of.get(seq_id)
        if row is None:
            raise KVCacheError(f"sequence {seq_id} is not allocated")
        return int(self._tokens[row])

    def sequence_ids(self) -> List[int]:
        return list(self._row_of)

    def is_full(self) -> bool:
        """True if utilisation has reached the C_max threshold."""
        return self.utilization >= self.config.c_max

    def record_usage(self) -> None:
        """Append the current utilisation to the usage history (Fig 9 traces)."""
        self._usage_history.append(self.utilization)

    @property
    def usage_history(self) -> List[float]:
        return list(self._usage_history)


def kvcache_blocks_for_memory(
    free_memory_bytes: float,
    kv_bytes_per_token: float,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> int:
    """How many KVCache blocks fit into ``free_memory_bytes``.

    ``kv_bytes_per_token`` is provided by the model spec (2 * layers * kv_heads
    * head_dim * dtype bytes, divided by the tensor-parallel degree).
    """
    if kv_bytes_per_token <= 0:
        raise ValueError("kv_bytes_per_token must be positive")
    tokens = int(free_memory_bytes // kv_bytes_per_token)
    return max(0, tokens // block_size)

"""Network cost models.

All communication in the reproduction is costed with the classic alpha–beta
model: transferring ``s`` bytes over a link costs ``T_start + s * T_byte``
(Appendix D of the paper uses exactly this formulation).  On top of single
links we provide the collective patterns the paper relies on:

* :func:`chain_pipelined_broadcast_time` — Appendix D, Eq. (1): the relay
  workers' chunked broadcast along a chain of machines.
* :func:`optimal_chunk_count` — the closed-form k* from Appendix D.
* :func:`gpu_direct_global_sync_time` — the NCCL-style broadcast used by the
  baselines, where every actor shard is broadcast to every rollout shard and
  both sides stall.
* :class:`Link` / :class:`NetworkFabric` — event-level transfer processes used
  inside the discrete-event simulation (so concurrent transfers on the same
  link share bandwidth and serialize correctly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Generator, Optional, Sequence, Tuple

from .engine import Environment
from .resources import Resource

# -- Hardware constants (H800-class testbed from §8) --------------------------

#: Intra-machine NVLink bandwidth (bytes/s).  8x H800 with 400 GB/s NVLink.
NVLINK_BANDWIDTH = 400e9
#: PCIe Gen5 x16 effective bandwidth used for relay -> GPU weight loads.
PCIE_BANDWIDTH = 55e9
#: Per-NIC RDMA bandwidth: 400 Gbps.
RDMA_NIC_BANDWIDTH = 400e9 / 8
#: Each machine has 8 NICs (8 x 400 Gbps in the paper's testbed).
NICS_PER_MACHINE = 8
#: RDMA startup latency (seconds) — microseconds per Appendix D.
RDMA_STARTUP_LATENCY = 5e-6
#: TCP startup latency (seconds) — used for the storage-system comparison (§4.1).
TCP_STARTUP_LATENCY = 100e-6
#: Effective TCP bandwidth for the NFS/Redis style baseline (bytes/s).
TCP_BANDWIDTH = 1.25e9  # ~10 Gbps
#: Serialization throughput observed in §4.1 profiling (4 GB shard ~ 8 s).
SERIALIZATION_BANDWIDTH = 0.5e9


@dataclass(frozen=True)
class LinkSpec:
    """Static description of one communication link."""

    name: str
    bandwidth: float  # bytes per second
    startup: float  # seconds

    def transfer_time(self, nbytes: float) -> float:
        """Alpha-beta cost of moving ``nbytes`` over this link once."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return self.startup
        return self.startup + nbytes / self.bandwidth

    def scaled(self, factor: float) -> "LinkSpec":
        """Degraded (or boosted) copy with bandwidth scaled by ``factor``.

        Startup latency is unchanged — congestion and partial NIC failures
        eat throughput, not the RTT floor.  ``factor == 1`` returns ``self``
        so healthy paths keep the original (identity-comparable) spec.
        """
        if factor <= 0:
            raise ValueError("bandwidth factor must be positive")
        if factor == 1.0:
            return self
        return LinkSpec(f"{self.name}@x{factor:g}", self.bandwidth * factor, self.startup)


RDMA_LINK = LinkSpec("rdma", RDMA_NIC_BANDWIDTH * NICS_PER_MACHINE, RDMA_STARTUP_LATENCY)
RDMA_SINGLE_NIC_LINK = LinkSpec("rdma-1nic", RDMA_NIC_BANDWIDTH, RDMA_STARTUP_LATENCY)
PCIE_LINK = LinkSpec("pcie", PCIE_BANDWIDTH, 10e-6)
NVLINK_LINK = LinkSpec("nvlink", NVLINK_BANDWIDTH, 3e-6)
TCP_LINK = LinkSpec("tcp", TCP_BANDWIDTH, TCP_STARTUP_LATENCY)


# -- Appendix D: chain-based pipelined broadcast ------------------------------


def chain_pipelined_broadcast_time(
    nbytes: float,
    num_nodes: int,
    chunks: Optional[int] = None,
    link: LinkSpec = RDMA_LINK,
) -> float:
    """Total latency of broadcasting ``nbytes`` to ``num_nodes - 1`` relays.

    Implements Eq. (1) of Appendix D:

        T(p, k) = (p + k - 2) * (M/k * T_byte + T_start)

    If ``chunks`` is ``None``, the optimal k* from the appendix is used.

    ``num_nodes`` counts the master relay plus all receivers (p in the paper).
    A single node (p == 1) costs nothing; p == 2 degenerates to a single
    point-to-point transfer.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    if num_nodes == 1 or nbytes == 0:
        return 0.0
    p = num_nodes
    if chunks is None:
        chunks = optimal_chunk_count(nbytes, num_nodes, link)
    k = max(1, int(chunks))
    t_byte = 1.0 / link.bandwidth
    chunk_time = (nbytes / k) * t_byte + link.startup
    return (p + k - 2) * chunk_time


def optimal_chunk_count(nbytes: float, num_nodes: int, link: LinkSpec = RDMA_LINK) -> int:
    """Closed-form optimal chunk count k* = sqrt((p-2) * M * T_byte / T_start)."""
    if num_nodes <= 2 or nbytes <= 0:
        return 1
    t_byte = 1.0 / link.bandwidth
    k_star = math.sqrt((num_nodes - 2) * nbytes * t_byte / link.startup)
    return max(1, int(round(k_star)))


def optimal_chain_broadcast_time(
    nbytes: float, num_nodes: int, link: LinkSpec = RDMA_LINK
) -> float:
    """T*(p) = M*T_byte + (p-2)*T_start + 2*sqrt((p-2)*M*T_byte*T_start)."""
    if num_nodes <= 1 or nbytes <= 0:
        return 0.0
    if num_nodes == 2:
        return link.transfer_time(nbytes)
    t_byte = 1.0 / link.bandwidth
    p = num_nodes
    return (
        nbytes * t_byte
        + (p - 2) * link.startup
        + 2.0 * math.sqrt((p - 2) * nbytes * t_byte * link.startup)
    )


def gpu_direct_global_sync_time(
    nbytes_per_rank: float,
    num_rollout_machines: int,
    link: LinkSpec = RDMA_LINK,
    resharding_overhead: float = 0.25,
) -> float:
    """Latency of the baselines' NCCL-style global weight synchronization.

    Each actor shard is broadcast to the corresponding rollout shards across
    machines.  Unlike the relay chain this is a blocking collective: all
    rollouts and the actor participate, and the duration grows with the
    number of participating rollout machines because the broadcast tree gets
    deeper and the per-rank traffic is replicated to every machine hosting a
    model replica.  ``resharding_overhead`` accounts for the actor->rollout
    layout conversion performed on-GPU before the transfer.
    """
    if num_rollout_machines < 1:
        raise ValueError("num_rollout_machines must be >= 1")
    tree_depth = max(1, math.ceil(math.log2(num_rollout_machines + 1)))
    transfer = link.transfer_time(nbytes_per_rank) * tree_depth
    return transfer * (1.0 + resharding_overhead)


def storage_system_sync_time(nbytes: float, num_readers: int = 1) -> float:
    """Weight sync through an NFS/Redis style storage system (§4.1).

    Serialization + TCP write + ``num_readers`` contended TCP reads.
    """
    serialize = nbytes / SERIALIZATION_BANDWIDTH
    write = TCP_LINK.transfer_time(nbytes)
    # Readers contend on the storage node's NIC: effective per-reader bandwidth
    # shrinks linearly with concurrency.
    read = TCP_LINK.transfer_time(nbytes) * max(1, num_readers)
    return serialize + write + read


# -- Degraded networks (repro.faults) -----------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for failed link operations.

    The schedule is fully deterministic (no jitter): retry ``i`` waits
    ``min(base_delay * multiplier**i, max_delay)`` seconds, for at most
    ``max_retries`` attempts.  Simulated peers either all see an outage or
    none do, so jitter would only perturb the bit-identity contract without
    modelling anything.
    """

    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 8.0
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.base_delay <= 0 or self.multiplier < 1 or self.max_delay <= 0:
            raise ValueError("retry delays must be positive and non-decreasing")
        if self.max_retries < 1:
            raise ValueError("max_retries must be at least 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based)."""
        return min(self.base_delay * self.multiplier ** attempt, self.max_delay)

    def wait_through(self, outage: float) -> Tuple[float, int]:
        """Total backoff and retry count to ride out an ``outage`` seconds gap.

        Returns ``(wait, retries)`` where ``wait`` is the cumulative backoff
        until the first retry that lands after the outage ends.  When the
        budget runs out first, the caller waits for the outage to clear plus
        one final (capped) backoff — the "gave up, operator re-drove it" cost.
        """
        if outage <= 0:
            return 0.0, 0
        elapsed = 0.0
        for attempt in range(self.max_retries):
            elapsed += self.delay(attempt)
            if elapsed >= outage:
                return elapsed, attempt + 1
        return outage + self.delay(self.max_retries - 1), self.max_retries


@dataclass(frozen=True)
class DegradationWindow:
    """One bandwidth-dip interval: ``factor`` of nominal inside [start, end)."""

    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("degradation window must have positive length")
        if self.factor <= 0:
            raise ValueError("bandwidth factor must be positive")

    def active(self, time: float) -> bool:
        return self.start <= time < self.end


def bandwidth_factor_at(windows: Sequence[DegradationWindow], time: float) -> float:
    """Effective bandwidth multiplier at ``time`` (overlaps compound)."""
    factor = 1.0
    for window in windows:
        if window.active(time):
            factor *= window.factor
    return factor


# -- Event-level links used inside the DES ------------------------------------


class Link:
    """A simulated link that serializes transfers and tracks utilisation."""

    def __init__(self, env: Environment, spec: LinkSpec, name: str = "") -> None:
        self.env = env
        self.spec = spec
        self.name = name or spec.name
        self._channel = Resource(env, capacity=1)
        self.bytes_transferred = 0.0
        self.busy_time = 0.0

    def transfer(self, nbytes: float) -> Generator:
        """Process generator: acquire the link, hold it for the transfer time."""
        request = self._channel.request()
        yield request
        duration = self.spec.transfer_time(nbytes)
        start = self.env.now
        try:
            yield self.env.timeout(duration)
            self.bytes_transferred += nbytes
        finally:
            self.busy_time += self.env.now - start
            self._channel.release(request)

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of time the link was busy up to ``horizon`` (default: now)."""
        horizon = self.env.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)


@dataclass
class NetworkFabric:
    """Collection of named links between simulation entities."""

    env: Environment
    links: Dict[Tuple[str, str], Link] = field(default_factory=dict)

    def add_link(self, src: str, dst: str, spec: LinkSpec) -> Link:
        link = Link(self.env, spec, name=f"{src}->{dst}")
        self.links[(src, dst)] = link
        return link

    def link(self, src: str, dst: str) -> Link:
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link registered between {src!r} and {dst!r}") from None

    def transfer(self, src: str, dst: str, nbytes: float) -> Generator:
        return self.link(src, dst).transfer(nbytes)

"""Shared-resource primitives for the simulation engine.

Three primitives cover everything the Laminar reproduction needs:

* :class:`Store` — an unbounded (or bounded) FIFO queue of Python objects.
  The prompt pool, partial-response pool and experience buffer are stores.
* :class:`Resource` — a counted resource with a wait queue (e.g. an RDMA NIC
  that only one broadcast may use at a time).
* :class:`Container` — a continuous quantity with put/get (e.g. KVCache
  blocks on a rollout replica).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from .engine import Environment, Event, SimulationError


class StorePut(Event):
    """Request to place ``item`` into a store."""

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """Request to take one item out of a store.

    ``filter_fn`` restricts which items satisfy this request (used e.g. to
    fetch trajectories belonging to a specific weight version).
    """

    def __init__(self, store: "Store", filter_fn: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.env)
        self.filter_fn = filter_fn
        store._get_queue.append(self)
        store._trigger()


class Store:
    """FIFO object store with optional capacity and filtered gets."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self, filter_fn: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        return StoreGet(self, filter_fn)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Satisfy puts while capacity remains.
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Satisfy gets for which a matching item exists.
            remaining: Deque[StoreGet] = deque()
            while self._get_queue:
                get = self._get_queue.popleft()
                index = self._find(get.filter_fn)
                if index is None:
                    remaining.append(get)
                else:
                    item = self.items.pop(index)
                    get.succeed(item)
                    progressed = True
            self._get_queue = remaining

    def _find(self, filter_fn: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if filter_fn is None:
            return 0 if self.items else None
        for index, item in enumerate(self.items):
            if filter_fn(item):
                return index
        return None


class ResourceRequest(Event):
    """Pending acquisition of one unit of a :class:`Resource`."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger()

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class Resource:
    """Counted resource with ``capacity`` concurrent holders."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: List[ResourceRequest] = []
        self._queue: Deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of units currently held."""
        return len(self.users)

    def request(self) -> ResourceRequest:
        return ResourceRequest(self)

    def release(self, request: ResourceRequest) -> None:
        if request in self.users:
            self.users.remove(request)
        elif request in self._queue:
            self._queue.remove(request)
        self._trigger()

    def _trigger(self) -> None:
        while self._queue and len(self.users) < self.capacity:
            request = self._queue.popleft()
            self.users.append(request)
            request.succeed()


class ContainerPut(Event):
    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise SimulationError("put amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._put_queue.append(self)
        container._trigger()


class ContainerGet(Event):
    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise SimulationError("get amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._get_queue.append(self)
        container._trigger()


class Container:
    """A continuous quantity bounded by ``capacity`` (e.g. KVCache blocks)."""

    def __init__(self, env: Environment, capacity: float, init: float = 0.0) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("init must lie within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self.level = float(init)
        self._put_queue: Deque[ContainerPut] = deque()
        self._get_queue: Deque[ContainerGet] = deque()

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._put_queue and self.level + self._put_queue[0].amount <= self.capacity:
                put = self._put_queue.popleft()
                self.level += put.amount
                put.succeed()
                progressed = True
            while self._get_queue and self._get_queue[0].amount <= self.level:
                get = self._get_queue.popleft()
                self.level -= get.amount
                get.succeed()
                progressed = True

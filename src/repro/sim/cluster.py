"""Cluster topology model: machines, GPUs and the links between them.

The paper's testbed (§8) is 128 machines x 8 NVIDIA H800-80GB GPUs, NVLink
within a machine and 8 x 400 Gbps RDMA between machines.  This module builds a
static description of such a cluster that the scheduling layers (Laminar and
the baselines) carve up into trainer GPUs and rollout replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .network import (
    LinkSpec,
    NVLINK_LINK,
    PCIE_LINK,
    RDMA_LINK,
)


@dataclass(frozen=True)
class GPUSpec:
    """Static characteristics of one GPU."""

    name: str
    memory_bytes: float
    hbm_bandwidth: float  # bytes/s
    peak_flops_bf16: float  # FLOP/s
    #: Achievable fraction of peak FLOPs in LLM training/prefill kernels.
    mfu: float = 0.45
    #: Achievable fraction of HBM bandwidth in decode kernels.
    membw_efficiency: float = 0.75


#: NVIDIA H800 80GB SXM: ~990 TFLOPs BF16 dense, 3.35 TB/s HBM3.
H800 = GPUSpec(
    name="H800-80GB",
    memory_bytes=80e9,
    hbm_bandwidth=3.35e12,
    peak_flops_bf16=990e12,
    mfu=0.45,
    membw_efficiency=0.75,
)

#: NVIDIA A100 80GB (kept for what-if studies / ablations).
A100 = GPUSpec(
    name="A100-80GB",
    memory_bytes=80e9,
    hbm_bandwidth=2.0e12,
    peak_flops_bf16=312e12,
    mfu=0.5,
    membw_efficiency=0.8,
)


@dataclass
class GPU:
    """One GPU slot in the cluster."""

    machine_id: int
    local_rank: int
    spec: GPUSpec = H800

    @property
    def global_id(self) -> Tuple[int, int]:
        return (self.machine_id, self.local_rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GPU(machine={self.machine_id}, rank={self.local_rank}, {self.spec.name})"


@dataclass
class Machine:
    """One server: GPUs plus host memory and its NIC/PCIe links."""

    machine_id: int
    gpus: List[GPU]
    host_memory_bytes: float = 2e12  # 2 TB host DRAM
    intra_link: LinkSpec = NVLINK_LINK
    pcie_link: LinkSpec = PCIE_LINK
    inter_link: LinkSpec = RDMA_LINK
    healthy: bool = True

    @property
    def num_gpus(self) -> int:
        return len(self.gpus)

    def fail(self) -> None:
        self.healthy = False

    def recover(self) -> None:
        self.healthy = True


#: GPUs per machine in the paper's H800 deployment (Table 2).  Placement,
#: weight-sync machine counts and the bench executors must all agree on this.
GPUS_PER_MACHINE = 8


@dataclass
class ClusterSpec:
    """Parameters describing a homogeneous cluster."""

    num_machines: int
    gpus_per_machine: int = GPUS_PER_MACHINE
    gpu: GPUSpec = H800
    host_memory_bytes: float = 2e12

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise ValueError("num_machines must be positive")
        if self.gpus_per_machine <= 0:
            raise ValueError("gpus_per_machine must be positive")

    @property
    def total_gpus(self) -> int:
        return self.num_machines * self.gpus_per_machine


class Cluster:
    """A collection of machines with helpers for carving out GPU groups."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.machines: List[Machine] = []
        for machine_id in range(spec.num_machines):
            gpus = [
                GPU(machine_id=machine_id, local_rank=rank, spec=spec.gpu)
                for rank in range(spec.gpus_per_machine)
            ]
            self.machines.append(
                Machine(
                    machine_id=machine_id,
                    gpus=gpus,
                    host_memory_bytes=spec.host_memory_bytes,
                )
            )

    # -- inspection -----------------------------------------------------------
    @property
    def total_gpus(self) -> int:
        return self.spec.total_gpus

    @property
    def healthy_machines(self) -> List[Machine]:
        return [m for m in self.machines if m.healthy]

    def machine(self, machine_id: int) -> Machine:
        return self.machines[machine_id]

    def iter_gpus(self) -> Iterator[GPU]:
        for machine in self.machines:
            yield from machine.gpus

    # -- partitioning ----------------------------------------------------------
    def partition(self, trainer_gpus: int, rollout_gpus: int) -> "Placement":
        """Split the cluster into a trainer group and a rollout group.

        Machines are assigned whole to one side whenever possible (matching
        the paper's disaggregated placement); a machine may be split only when
        a group needs fewer GPUs than a full machine provides.
        """
        if trainer_gpus + rollout_gpus > self.total_gpus:
            raise ValueError(
                f"requested {trainer_gpus + rollout_gpus} GPUs but cluster has "
                f"{self.total_gpus}"
            )
        if trainer_gpus < 0 or rollout_gpus < 0:
            raise ValueError("GPU counts must be non-negative")
        all_gpus = list(self.iter_gpus())
        trainer = all_gpus[:trainer_gpus]
        rollout = all_gpus[trainer_gpus : trainer_gpus + rollout_gpus]
        return Placement(cluster=self, trainer_gpus=trainer, rollout_gpus=rollout)


@dataclass
class Placement:
    """A concrete assignment of cluster GPUs to trainer and rollout roles."""

    cluster: Cluster
    trainer_gpus: List[GPU]
    rollout_gpus: List[GPU]

    @property
    def num_trainer_gpus(self) -> int:
        return len(self.trainer_gpus)

    @property
    def num_rollout_gpus(self) -> int:
        return len(self.rollout_gpus)

    @property
    def colocated(self) -> bool:
        """True when trainer and rollout share the same GPUs (verl-style)."""
        return not self.rollout_gpus or not self.trainer_gpus

    def rollout_machines(self) -> List[int]:
        """Machine ids hosting at least one rollout GPU."""
        return sorted({gpu.machine_id for gpu in self.rollout_gpus})

    def trainer_machines(self) -> List[int]:
        return sorted({gpu.machine_id for gpu in self.trainer_gpus})

    def rollout_replicas(self, tensor_parallel: int) -> List[List[GPU]]:
        """Group rollout GPUs into replicas of ``tensor_parallel`` GPUs each.

        Replicas never span machines (vLLM TP groups are intra-node).
        """
        if tensor_parallel <= 0:
            raise ValueError("tensor_parallel must be positive")
        replicas: List[List[GPU]] = []
        by_machine: Dict[int, List[GPU]] = {}
        for gpu in self.rollout_gpus:
            by_machine.setdefault(gpu.machine_id, []).append(gpu)
        for machine_id in sorted(by_machine):
            gpus = by_machine[machine_id]
            for start in range(0, len(gpus) - tensor_parallel + 1, tensor_parallel):
                replicas.append(gpus[start : start + tensor_parallel])
        return replicas

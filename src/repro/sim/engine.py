"""Discrete-event simulation engine.

This module implements a from-scratch, generator-based discrete-event
simulation (DES) core in the style of SimPy.  It is the substrate on which the
whole Laminar reproduction runs: the :mod:`repro.runtime` layer drives every
system on it — per-replica driver processes, the trainer process, the
failure/recovery processes and the rollout-manager process in Laminar, and the
``AllOf``-joined replica processes that express the baselines' generation
barriers — so simulated time jumps from event to event instead of being
stepped through in rounds.

The engine is deliberately small and deterministic:

* Events scheduled at the same simulated time fire in FIFO order of their
  scheduling (a monotonically increasing sequence number breaks ties), so a
  simulation run is fully reproducible.
* Processes are plain Python generators.  A process yields events (most
  commonly :class:`Timeout`) and is resumed when the yielded event fires.
* A process can be interrupted by another process via
  :meth:`Process.interrupt`, which raises :class:`Interrupt` inside the
  generator.  This is used by the repack mechanism to pull in-progress
  trajectories off a rollout replica.
"""

from __future__ import annotations

import heapq
import inspect
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..obs.trace import current_tracer


class SimulationError(RuntimeError):
    """Raised for illegal uses of the simulation engine."""


class StopSimulation(Exception):
    """Internal signal used to end :meth:`Environment.run`."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process generator when the process is interrupted.

    The ``cause`` attribute carries an arbitrary payload supplied by the
    interrupting party (e.g. a repack directive).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Event state markers.
PENDING = object()


class Event:
    """A single occurrence that processes may wait for.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers it; the environment then invokes its callbacks at the current
    simulation time.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event carries (its result or exception)."""
        if self._value is PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def defused(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition ------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class TimeoutUntil(Event):
    """An event that fires at an absolute simulated time.

    Unlike ``Timeout(target - env.now)``, the event lands on ``at`` exactly
    (no ``now + delay`` rounding), which is what lets anchored processes —
    ones whose wake-ups are derived from a local clock as ``origin + local``
    — keep their event times bit-identical to the local arithmetic.  ``at``
    may equal the current time (fires this instant, FIFO-ordered after
    already-scheduled same-time events) but must not lie in the past.
    """

    def __init__(self, env: "Environment", at: float, value: Any = None) -> None:
        if at < env.now:
            raise SimulationError(
                f"timeout_until({at!r}) lies in the past (now={env.now!r})"
            )
        super().__init__(env)
        self.at = at
        self._ok = True
        self._value = value
        env._schedule_at(self, at)


class ConditionError(SimulationError):
    """Raised when a sub-event of a condition fails."""


class _Condition(Event):
    """Base class for AllOf / AnyOf composite events.

    A sub-event counts as *done* only once its callbacks have run (``callbacks
    is None``); merely being scheduled (as a ``Timeout`` is at construction)
    does not count.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._done = 0
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
            if event.callbacks is None:
                self._count(event)
            else:
                event.callbacks.append(self._observe)
        if not self.triggered and self._check_now():
            self.succeed(self._collect())

    def _count(self, event: Event) -> None:
        if not event._ok:
            event._defused = True
            self.fail(ConditionError(f"sub-event failed: {event._value!r}"))
            return
        self._done += 1

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        self._count(event)
        if not self.triggered and self._check_now():
            self.succeed(self._collect())

    def _collect(self) -> dict:
        return {e: e._value for e in self.events if e.callbacks is None and e._ok}

    def _check_now(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when all sub-events have fired."""

    def _check_now(self) -> bool:
        return self._done >= len(self.events)


class AnyOf(_Condition):
    """Fires as soon as any sub-event has fired."""

    def _check_now(self) -> bool:
        return (not self.events) or self._done >= 1


class Initialize(Event):
    """Immediate event that starts a process."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self)


class Process(Event):
    """A running process wrapping a generator.

    The process itself is an event that fires when the generator terminates;
    its value is the generator's return value.  Other processes may therefore
    ``yield`` a process to wait for its completion.
    """

    def __init__(self, env: "Environment", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process, raising :class:`Interrupt` inside it.

        The interruption is delivered as a high-priority event at the current
        simulation time.  At delivery the process is detached from whatever
        event it was waiting on, so that event firing later can no longer wake
        the process a second time — an interrupted process that keeps running
        (e.g. a rollout-replica driver recomputing its next decode event after
        a repack pull) would otherwise receive a stale, spurious resume.
        """
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated and cannot be interrupted")
        if self.env._active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._deliver_interrupt)
        self.env._schedule(interrupt_event, priority=0)

    def _deliver_interrupt(self, event: Event) -> None:
        """Detach from the awaited event, then resume with the interrupt."""
        if self._value is not PENDING:
            # The process terminated before the interrupt was delivered
            # (e.g. a second interrupt queued behind one that killed it).
            return
        if inspect.getgeneratorstate(self._generator) == inspect.GEN_CREATED:
            # The process has not started yet (its Initialize event is still
            # queued at this same timestamp).  A generator cannot receive a
            # throw() before its first resume, so redeliver the interrupt at
            # normal priority — behind Initialize — and it will land on the
            # process's first yield.
            retry = Event(self.env)
            retry._ok = False
            retry._value = event._value
            retry._defused = True
            retry.callbacks.append(self._deliver_interrupt)
            self.env._schedule(retry)
            return
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        if self._value is not PENDING:
            # The process already terminated (e.g. it was interrupted while
            # waiting on an event that later fires anyway).  Ignore the wake-up.
            return
        self.env._active_process = self
        self._target = None
        while True:
            # Deliver the event's outcome into the generator.
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                self.env._schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.env._schedule(self)
                break

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self._ok = False
                self._value = exc
                self.env._schedule(self)
                break

            if next_event.callbacks is not None:
                # Event not yet processed: wait for it.  ``_target`` keeps the
                # reference so an interrupt can detach the process from it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # Event already processed; feed its value in immediately.
            event = next_event

        self.env._active_process = None


class Environment:
    """The simulation environment: clock, event queue and scheduler."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List = []
        self._eid = itertools.count()
        self._active_process: Optional[Process] = None
        # Observability: capture the active tracer at construction so every
        # process on this environment reports to the same recorder.  The
        # default NullTracer is shared and disabled; instrumentation sites
        # guard on ``env.tracer.enabled`` and only *observe* (the tracing
        # on/off bit-identity contract).
        self.tracer = current_tracer()

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def timeout_until(self, at: float, value: Any = None) -> TimeoutUntil:
        return TimeoutUntil(self, at, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def _schedule_at(self, event: Event, at: float, priority: int = 1) -> None:
        """Schedule ``event`` at the absolute time ``at`` (no ``now +`` rounding)."""
        heapq.heappush(self._queue, (at, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _prio, _eid, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number (run
        until that simulated time) or an :class:`Event` (run until it fires,
        returning its value).
        """
        stop_at = None
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                return stop_event.value
            stop_event.callbacks.append(self._stop_on_event)
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at} lies in the past (now={self._now})"
                )

        try:
            while self._queue:
                if stop_at is not None and self.peek() > stop_at:
                    self._now = stop_at
                    return None
                self.step()
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None and not stop_event.triggered:
            raise SimulationError("run() finished but the awaited event never fired")
        if stop_at is not None:
            self._now = stop_at
        return stop_event.value if stop_event is not None else None

    @staticmethod
    def _stop_on_event(event: Event) -> None:
        if not event._ok:
            event._defused = True
            raise event._value
        raise StopSimulation(event._value)

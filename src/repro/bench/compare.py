"""Regression comparison of a benchmark run against a stored baseline.

Every unit of the candidate run is matched against the baseline unit with the
same ``(scenario, system, gpus, variant)`` key and judged on the scenario
kind's primary metric with a configurable relative tolerance.  A run passes
when no unit regresses beyond tolerance and no unit that used to succeed now
fails.

Traced runs may additionally opt into **derived-metric gates**
(``--derived-metric NAME``): attribution fractions from
:mod:`repro.obs.analysis` carried in ``UnitResult.extras``.  Unlike primary
metrics they have no better/worse direction — a drift beyond tolerance in
*either* direction fails the gate (a bottleneck that moved is a finding even
when throughput held).  Units lacking the metric on either side are skipped,
so untraced baselines never fail a derived gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .runner import PRIMARY_METRICS, ScenarioResult, UnitResult

#: Default relative tolerance before a primary-metric move counts as a
#: regression / improvement.
DEFAULT_TOLERANCE = 0.05

VERDICT_IMPROVEMENT = "improvement"
VERDICT_UNCHANGED = "within-tolerance"
VERDICT_REGRESSION = "regression"
VERDICT_NEW = "no-baseline"
VERDICT_MISSING = "missing-in-candidate"
VERDICT_ERROR = "unit-error"
VERDICT_TIMEOUT = "unit-timeout"

#: Verdicts that fail the gate.
FAILING_VERDICTS = (VERDICT_REGRESSION, VERDICT_MISSING, VERDICT_ERROR,
                    VERDICT_TIMEOUT)


@dataclass
class UnitVerdict:
    """Comparison outcome for one scenario grid point."""

    scenario_id: str
    unit_label: str
    metric: str
    verdict: str
    baseline: Optional[float] = None
    candidate: Optional[float] = None
    #: Signed relative change, candidate vs baseline (NaN when undefined).
    delta: float = float("nan")
    note: str = ""

    @property
    def passed(self) -> bool:
        return self.verdict not in FAILING_VERDICTS

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario_id": self.scenario_id,
            "unit": self.unit_label,
            "metric": self.metric,
            "verdict": self.verdict,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta": None if math.isnan(self.delta) else self.delta,
            "note": self.note,
        }


@dataclass
class ComparisonReport:
    """All unit verdicts plus the overall gate outcome."""

    tolerance: float
    verdicts: List[UnitVerdict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(v.passed for v in self.verdicts)

    @property
    def regressions(self) -> List[UnitVerdict]:
        return [v for v in self.verdicts if not v.passed]

    @property
    def improvements(self) -> List[UnitVerdict]:
        return [v for v in self.verdicts if v.verdict == VERDICT_IMPROVEMENT]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for verdict in self.verdicts:
            out[verdict.verdict] = out.get(verdict.verdict, 0) + 1
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "tolerance": self.tolerance,
            "passed": self.passed,
            "counts": self.counts(),
            "verdicts": [v.as_dict() for v in self.verdicts],
        }


def _units_by_key(results: Sequence[ScenarioResult]) -> Dict[Tuple, Tuple[str, UnitResult]]:
    out: Dict[Tuple, Tuple[str, UnitResult]] = {}
    for result in results:
        for unit in result.units:
            out[unit.key] = (result.kind, unit)
    return out


def judge_unit(
    kind: str,
    baseline: Optional[UnitResult],
    candidate: Optional[UnitResult],
    tolerance: float,
) -> UnitVerdict:
    """Judge one (baseline, candidate) unit pair on the kind's primary metric."""
    metric, higher_is_better = PRIMARY_METRICS[kind]
    some = candidate or baseline
    verdict = UnitVerdict(
        scenario_id=some.scenario_id, unit_label=some.label, metric=metric,
        verdict=VERDICT_UNCHANGED,
    )
    if candidate is None:
        verdict.verdict = VERDICT_MISSING
        verdict.note = "unit present in baseline but absent from the candidate run"
        return verdict
    if candidate.status != "ok":
        # Over-budget units get their own verdict so a wedged grid point is
        # distinguishable from a crashed one in the gate report.
        verdict.verdict = (
            VERDICT_TIMEOUT if candidate.status == "timeout" else VERDICT_ERROR
        )
        verdict.note = f"candidate unit status: {candidate.status}"
        return verdict
    verdict.candidate = candidate.metrics.get(metric)
    if verdict.candidate is None:
        verdict.verdict = VERDICT_ERROR
        verdict.note = f"candidate unit lacks primary metric {metric!r}"
        return verdict
    if baseline is None or baseline.status != "ok" or metric not in baseline.metrics:
        verdict.verdict = VERDICT_NEW
        verdict.note = "no usable baseline for this unit"
        return verdict
    verdict.baseline = baseline.metrics[metric]
    if verdict.baseline == 0:
        verdict.delta = 0.0 if verdict.candidate == 0 else math.inf
    else:
        verdict.delta = (verdict.candidate - verdict.baseline) / abs(verdict.baseline)
    gain = verdict.delta if higher_is_better else -verdict.delta
    if gain < -tolerance:
        verdict.verdict = VERDICT_REGRESSION
        verdict.note = f"{metric} moved {verdict.delta:+.2%} (tolerance {tolerance:.0%})"
    elif gain > tolerance:
        verdict.verdict = VERDICT_IMPROVEMENT
    return verdict


def judge_derived(
    metric: str,
    baseline: UnitResult,
    candidate: UnitResult,
    tolerance: float,
) -> Optional[UnitVerdict]:
    """Judge one derived (trace-analytics) metric pair; ``None`` to skip.

    Derived metrics live in ``UnitResult.extras`` and only exist on traced
    runs; a unit lacking the metric on either side is silently skipped so an
    untraced baseline cannot fail the gate.  Directionless: any relative
    drift beyond tolerance is a regression verdict.
    """
    if candidate.status != "ok" or baseline.status != "ok":
        return None
    cand = candidate.extras.get(metric)
    base = baseline.extras.get(metric)
    if cand is None or base is None:
        return None
    verdict = UnitVerdict(
        scenario_id=candidate.scenario_id, unit_label=candidate.label,
        metric=metric, verdict=VERDICT_UNCHANGED,
        baseline=float(base), candidate=float(cand),
    )
    if base == 0:
        verdict.delta = 0.0 if cand == 0 else math.inf
    else:
        verdict.delta = (cand - base) / abs(base)
    if abs(verdict.delta) > tolerance:
        verdict.verdict = VERDICT_REGRESSION
        verdict.note = (f"derived metric drifted {verdict.delta:+.2%} "
                        f"(tolerance {tolerance:.0%}, either direction)")
    return verdict


def compare_runs(
    candidate: Sequence[ScenarioResult],
    baseline: Sequence[ScenarioResult],
    tolerance: float = DEFAULT_TOLERANCE,
    derived: Sequence[str] = (),
) -> ComparisonReport:
    """Gate a candidate run against a baseline run.

    ``derived`` names trace-analytics metrics (``UnitResult.extras``) to gate
    in addition to each kind's primary metric; pairs lacking a metric are
    skipped (see :func:`judge_derived`).
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    base_units = _units_by_key(baseline)
    cand_units = _units_by_key(candidate)
    report = ComparisonReport(tolerance=tolerance)
    for key, (kind, unit) in cand_units.items():
        base = base_units.get(key)
        report.verdicts.append(judge_unit(kind, base[1] if base else None, unit, tolerance))
        if base is not None:
            for metric in derived:
                extra = judge_derived(metric, base[1], unit, tolerance)
                if extra is not None:
                    report.verdicts.append(extra)
    for key, (kind, unit) in base_units.items():
        if key not in cand_units:
            report.verdicts.append(judge_unit(kind, unit, None, tolerance))
    report.verdicts.sort(key=lambda v: (v.scenario_id, v.unit_label, v.metric))
    return report

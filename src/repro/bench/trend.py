"""Historical trend reporting over committed ``BENCH_*.json`` artifacts.

Every merged artifact run carries its git revision, creation timestamp,
per-scenario harness wall-clock (``elapsed_s``) and the per-unit primary
metrics.  ``repro-bench trend`` stitches those runs into per-scenario time
series — pulling prior versions of each artifact out of git history, so the
perf trajectory of the repo is visible from the committed JSONs alone — and
renders them as sparkline tables: one ``elapsed_s`` row (the engine-speed
signal perf PRs move) plus one row per unit's primary metric (the
regression-gate signal that must stay flat).

``repro-bench trend --bisect SCENARIO METRIC`` turns the same history into a
regression-hunting tool: :func:`largest_step` finds the biggest run-to-run
move of a metric and :func:`commits_between` maps it to the commit range
that produced it.  Inside a git checkout, :func:`bisect_commits` then
tightens a unit-metric range to a single commit by true bisection —
:func:`run_scenario_at_revision` checks each midpoint out into a temporary
``git worktree``, re-runs the scenario there, and the observed value decides
which half of the range the step lives in.  ``elapsed_s`` steps stay
range-only: historical wall-clocks were recorded on other machines, so a
local re-run cannot be classified against them.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .runner import PRIMARY_METRICS, ScenarioResult
from .store import load_artifact, results_from_artifact

#: Eight-level block sparkline ramp.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


@dataclass
class RunSnapshot:
    """One historical artifact state: which run produced it, and its results."""

    path: str
    git_rev: str
    created_at: str
    results: List[ScenarioResult] = field(default_factory=list)

    @property
    def order_key(self) -> Tuple[str, str]:
        # ISO-8601 timestamps sort lexicographically.
        return (self.created_at, self.git_rev)

    def merge(self, other: "RunSnapshot") -> None:
        """Fold another artifact state of the same run into this snapshot."""
        mine = {r.scenario_id for r in self.results}
        self.results.extend(r for r in other.results if r.scenario_id not in mine)
        self.created_at = max(self.created_at, other.created_at)


def _git_revisions_of(path: str) -> List[str]:
    """Commits that touched ``path``, oldest first ('' outside a checkout)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        out = subprocess.run(
            ["git", "log", "--follow", "--format=%H", "--", os.path.basename(path)],
            cwd=directory, capture_output=True, text=True, timeout=20,
        )
    except (OSError, subprocess.TimeoutExpired):
        return []
    if out.returncode != 0:
        return []
    return [rev for rev in reversed(out.stdout.split())]

def _git_show(path: str, revision: str) -> Optional[str]:
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        out = subprocess.run(
            ["git", "show", f"{revision}:./{os.path.basename(path)}"],
            cwd=directory, capture_output=True, text=True, timeout=20,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout if out.returncode == 0 else None


def _snapshot_from_payload(path: str, payload: Dict[str, object]) -> RunSnapshot:
    return RunSnapshot(
        path=path,
        git_rev=str(payload.get("git_rev", "unknown")),
        created_at=str(payload.get("created_at", "")),
        results=results_from_artifact(payload),
    )


def collect_history(
    paths: Sequence[str],
    include_git_history: bool = True,
    max_revisions: int = 50,
) -> List[RunSnapshot]:
    """Load each artifact plus (optionally) its prior versions from git.

    Artifact states produced by the same run (same recorded ``git_rev``) are
    merged into one snapshot — the per-scenario ``BENCH_*.json`` files of one
    benchmark sweep count as a single run — and a commit that merely carried
    an artifact forward unchanged adds no new run.  Snapshots are returned
    oldest-first.
    """
    by_rev: Dict[str, RunSnapshot] = {}

    def record(snapshot: RunSnapshot) -> None:
        existing = by_rev.get(snapshot.git_rev)
        if existing is None:
            by_rev[snapshot.git_rev] = snapshot
        else:
            existing.merge(snapshot)

    for path in paths:
        if include_git_history:
            for revision in _git_revisions_of(path)[-max_revisions:]:
                text = _git_show(path, revision)
                if text is None:
                    continue
                try:
                    payload = json.loads(text)
                    if not isinstance(payload, dict) or "scenarios" not in payload:
                        continue
                    record(_snapshot_from_payload(path, payload))
                except (ValueError, KeyError, TypeError):
                    continue  # unreadable / pre-schema version: skip
        if os.path.exists(path):
            try:
                record(_snapshot_from_payload(path, load_artifact(path)))
            except (ValueError, OSError):
                continue
    return sorted(by_rev.values(), key=lambda s: s.order_key)


def sparkline(values: Sequence[Optional[float]]) -> str:
    """Render a block sparkline; gaps (None/NaN) become spaces."""
    present = [v for v in values if v is not None and v == v]
    if not present:
        return " " * len(values)
    low, high = min(present), max(present)
    span = high - low
    chars: List[str] = []
    for value in values:
        if value is None or value != value:
            chars.append(" ")
        elif span <= 0:
            chars.append(_SPARK_LEVELS[3])
        else:
            level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
            chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


@dataclass
class TrendSeries:
    """One metric's history across the collected runs."""

    label: str
    values: List[Optional[float]]

    def first(self) -> Optional[float]:
        return next((v for v in self.values if v is not None), None)

    def last(self) -> Optional[float]:
        return next((v for v in reversed(self.values) if v is not None), None)

    def delta_pct(self) -> Optional[float]:
        first, last = self.first(), self.last()
        if first is None or last is None or first == 0:
            return None
        return (last - first) / abs(first) * 100.0


def scenario_trends(
    snapshots: Sequence[RunSnapshot],
) -> Dict[str, Tuple[str, List[TrendSeries]]]:
    """Build per-scenario series over the snapshot sequence.

    Returns ``{scenario_id: (kind, [elapsed_s series, unit series...])}``,
    ordered by scenario id; scenarios present in only some runs get gaps.
    """
    by_scenario: Dict[str, Dict[str, List[Optional[float]]]] = {}
    kinds: Dict[str, str] = {}
    runs = len(snapshots)
    for index, snapshot in enumerate(snapshots):
        for result in snapshot.results:
            kinds[result.scenario_id] = result.kind
            series = by_scenario.setdefault(result.scenario_id, {})
            elapsed = series.setdefault("elapsed_s", [None] * runs)
            elapsed[index] = float(result.elapsed_s)
            metric, _ = PRIMARY_METRICS.get(result.kind, (None, True))
            if metric is None:
                continue
            for unit in result.units:
                if unit.status != "ok" or metric not in unit.metrics:
                    continue
                row = series.setdefault(unit.label, [None] * runs)
                row[index] = float(unit.metrics[metric])
    out: Dict[str, Tuple[str, List[TrendSeries]]] = {}
    for scenario_id in sorted(by_scenario):
        series_map = by_scenario[scenario_id]
        ordered = [TrendSeries("elapsed_s", series_map.pop("elapsed_s"))]
        ordered.extend(
            TrendSeries(label, series_map[label]) for label in sorted(series_map)
        )
        out[scenario_id] = (kinds[scenario_id], ordered)
    return out


@dataclass
class MetricStep:
    """One run-to-run move of a metric, attributable to a commit range."""

    scenario_id: str
    series_label: str
    metric: str
    before: float
    after: float
    #: Snapshot bounds of the step: the runs just before and just after.
    from_rev: str
    to_rev: str
    from_created: str
    to_created: str

    @property
    def rel_change(self) -> float:
        if self.before == 0:
            return math.inf if self.after != 0 else 0.0
        return (self.after - self.before) / abs(self.before)

    @property
    def magnitude(self) -> float:
        """Ranking key: absolute relative change (inf-safe)."""
        change = self.rel_change
        return abs(change) if math.isfinite(change) else math.inf


def metric_series(
    snapshots: Sequence[RunSnapshot], scenario_id: str, metric: str
) -> Dict[str, List[Optional[float]]]:
    """Per-series history of one metric for one scenario.

    ``metric="elapsed_s"`` yields the scenario wall-clock as a single
    series; any other name is looked up in every unit's metrics dict, falling
    back to the unit's trace-analytics ``extras`` (so derived metrics like
    ``critical_path_gen_share`` from traced artifacts are minable too —
    bisection is not limited to the kind's primary metric).
    """
    runs = len(snapshots)
    series: Dict[str, List[Optional[float]]] = {}
    for index, snapshot in enumerate(snapshots):
        for result in snapshot.results:
            if result.scenario_id != scenario_id:
                continue
            if metric == "elapsed_s":
                row = series.setdefault("elapsed_s", [None] * runs)
                row[index] = float(result.elapsed_s)
                continue
            for unit in result.units:
                value = unit.metrics.get(metric)
                if value is None:
                    value = unit.extras.get(metric)
                if value is None:
                    continue
                row = series.setdefault(unit.label, [None] * runs)
                row[index] = float(value)
    return series


def largest_step(
    snapshots: Sequence[RunSnapshot], scenario_id: str, metric: str
) -> Optional[MetricStep]:
    """The biggest run-to-run move of ``metric`` across the history.

    Consecutive *present* values are compared (runs missing the scenario or
    the metric are skipped over), and the step with the largest absolute
    relative change across all unit series wins.  Returns ``None`` when the
    history holds fewer than two observations of the metric.
    """
    best: Optional[MetricStep] = None
    for label, values in sorted(metric_series(snapshots, scenario_id, metric).items()):
        observed = [
            (index, value) for index, value in enumerate(values) if value is not None
        ]
        for (prev_index, before), (next_index, after) in zip(observed, observed[1:]):
            step = MetricStep(
                scenario_id=scenario_id, series_label=label, metric=metric,
                before=before, after=after,
                from_rev=snapshots[prev_index].git_rev,
                to_rev=snapshots[next_index].git_rev,
                from_created=snapshots[prev_index].created_at,
                to_created=snapshots[next_index].created_at,
            )
            if step.magnitude == 0.0:
                continue
            if best is None or step.magnitude > best.magnitude:
                best = step
    return best


@dataclass
class BisectOutcome:
    """Result of tightening a commit range by re-running the scenario."""

    #: ``git log --oneline`` line of the single culprit commit, if found.
    culprit: Optional[str]
    #: ``(revision, observed value)`` for every midpoint actually re-run.
    tested: List[Tuple[str, Optional[float]]] = field(default_factory=list)
    note: str = ""


def run_scenario_at_revision(
    revision: str,
    scenario_id: str,
    series_label: str,
    metric: str,
    cwd: Optional[str] = None,
    timeout_s: float = 900.0,
) -> Optional[float]:
    """Re-run ``scenario_id`` at ``revision`` and read one metric value.

    Checks the revision out into a temporary ``git worktree``, runs
    ``python -m repro.bench run --scenario <id>`` there with the worktree's
    own ``src`` on ``PYTHONPATH``, and extracts ``metric`` for
    ``series_label`` (an exact unit label, or ``elapsed_s`` for the scenario
    wall-clock) from the exported artifact.  Returns ``None`` when the
    revision cannot be built or run — the bisection then falls back to the
    range-only report.
    """
    import shutil
    import sys
    import tempfile

    tmpdir = tempfile.mkdtemp(prefix="repro-bisect-")
    worktree = os.path.join(tmpdir, "tree")
    export = os.path.join(tmpdir, "out.json")
    try:
        added = subprocess.run(
            ["git", "worktree", "add", "--detach", worktree, revision],
            cwd=cwd, capture_output=True, text=True, timeout=60,
        )
        if added.returncode != 0:
            return None
        env = dict(os.environ)
        src = os.path.join(worktree, "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        ran = subprocess.run(
            [sys.executable, "-m", "repro.bench", "run",
             "--scenario", scenario_id, "--export", export],
            cwd=worktree, env=env, capture_output=True, text=True,
            timeout=timeout_s,
        )
        if ran.returncode != 0 or not os.path.exists(export):
            return None
        for result in results_from_artifact(load_artifact(export)):
            if result.scenario_id != scenario_id:
                continue
            if metric == "elapsed_s":
                return float(result.elapsed_s)
            for unit in result.units:
                if unit.label == series_label and metric in unit.metrics:
                    return float(unit.metrics[metric])
        return None
    except (OSError, subprocess.TimeoutExpired, ValueError):
        return None
    finally:
        subprocess.run(["git", "worktree", "remove", "--force", worktree],
                       cwd=cwd, capture_output=True, text=True, timeout=60)
        shutil.rmtree(tmpdir, ignore_errors=True)


def bisect_commits(
    step: MetricStep,
    commits: Sequence[str],
    run_metric,
) -> BisectOutcome:
    """Tighten ``step``'s commit range to one commit by true bisection.

    ``commits`` is the ``git log --oneline from..to`` range (newest first:
    excludes the known-good ``from_rev``, includes the known-bad side).
    ``run_metric(revision) -> Optional[float]`` re-measures the metric at a
    revision; each observation is classified by which endpoint value it is
    closer to, and the first commit on the ``after`` side is the culprit.
    A midpoint that fails to run aborts the search (range-only fallback).
    """
    candidates = [line.split()[0] for line in reversed(list(commits))]  # oldest first
    if len(candidates) == 1:
        return BisectOutcome(culprit=list(commits)[0],
                             note="range already contains a single commit")
    tested: List[Tuple[str, Optional[float]]] = []
    lo, hi = -1, len(candidates) - 1  # lo: before-side index, hi: after-side
    while hi - lo > 1:
        mid = (lo + hi) // 2
        value = run_metric(candidates[mid])
        tested.append((candidates[mid], value))
        if value is None:
            return BisectOutcome(
                culprit=None, tested=tested,
                note=f"could not re-run the scenario at {candidates[mid]}; "
                     "reporting the range only",
            )
        if abs(value - step.after) < abs(value - step.before):
            hi = mid  # the step already happened at this midpoint
        else:
            lo = mid
    culprit_sha = candidates[hi]
    culprit = next(
        (line for line in commits if line.split()[0] == culprit_sha), culprit_sha
    )
    return BisectOutcome(culprit=culprit, tested=tested)


def commits_between(from_rev: str, to_rev: str, cwd: Optional[str] = None) -> List[str]:
    """``git log --oneline from..to`` — the commits that could have produced
    a step between two artifact runs (newest first; [] outside a checkout)."""
    try:
        out = subprocess.run(
            ["git", "log", "--oneline", f"{from_rev}..{to_rev}"],
            cwd=cwd, capture_output=True, text=True, timeout=20,
        )
    except (OSError, subprocess.TimeoutExpired):
        return []
    if out.returncode != 0:
        return []
    return [line for line in out.stdout.splitlines() if line.strip()]


def render_bisect(
    step: Optional[MetricStep],
    commits: Sequence[str],
    outcome: Optional[BisectOutcome] = None,
) -> str:
    """Console report mapping the largest metric step to its commit range
    (tightened to a single commit when a :class:`BisectOutcome` is given)."""
    if step is None:
        return "bisect: fewer than two observations of that metric in the history"
    change = (
        f"{step.rel_change:+.1%}" if math.isfinite(step.rel_change) else "from zero"
    )
    lines = [
        f"largest step of {step.metric} in {step.scenario_id} "
        f"[{step.series_label}]:",
        f"  {step.before:g} -> {step.after:g} ({change})",
        f"  between runs {step.from_rev}@{step.from_created[:10] or '?'} "
        f"and {step.to_rev}@{step.to_created[:10] or '?'}",
    ]
    if outcome is not None and outcome.culprit is not None:
        for revision, value in outcome.tested:
            observed = f"{value:g}" if value is not None else "run failed"
            lines.append(f"  re-ran at {revision}: {observed}")
        lines.append("  bisected to a single commit:")
        lines.append(f"    {outcome.culprit}")
        if outcome.note:
            lines.append(f"  note: {outcome.note}")
        return "\n".join(lines)
    if commits:
        lines.append(f"  produced by one of these {len(commits)} commit(s):")
        lines.extend(f"    {line}" for line in commits)
        if outcome is not None and outcome.note:
            lines.append(f"  note: {outcome.note}")
    else:
        lines.append(
            f"  commit range: git log --oneline {step.from_rev}..{step.to_rev}"
        )
    return "\n".join(lines)


def render_trend(snapshots: Sequence[RunSnapshot]) -> str:
    """Console report: per-scenario sparkline tables over the run history."""
    if not snapshots:
        return "no artifact history found"
    from .report import format_table

    header = [
        f"{len(snapshots)} run(s): "
        + " -> ".join(
            f"{s.git_rev}@{s.created_at[:10] or '?'}" for s in snapshots
        )
    ]
    blocks: List[str] = ["\n".join(header), ""]
    for scenario_id, (kind, series_list) in scenario_trends(snapshots).items():
        metric, _ = PRIMARY_METRICS.get(kind, ("?", True))
        rows = []
        for series in series_list:
            delta = series.delta_pct()
            rows.append([
                series.label,
                sparkline(series.values),
                series.first() if series.first() is not None else float("nan"),
                series.last() if series.last() is not None else float("nan"),
                f"{delta:+.1f}%" if delta is not None else "-",
            ])
        blocks.append(f"=== {scenario_id} [{kind}] primary={metric} ===")
        blocks.append(format_table(["series", "trend", "first", "last", "delta"], rows))
        blocks.append("")
    return "\n".join(blocks).rstrip()

"""Historical trend reporting over committed ``BENCH_*.json`` artifacts.

Every merged artifact run carries its git revision, creation timestamp,
per-scenario harness wall-clock (``elapsed_s``) and the per-unit primary
metrics.  ``repro-bench trend`` stitches those runs into per-scenario time
series — pulling prior versions of each artifact out of git history, so the
perf trajectory of the repo is visible from the committed JSONs alone — and
renders them as sparkline tables: one ``elapsed_s`` row (the engine-speed
signal perf PRs move) plus one row per unit's primary metric (the
regression-gate signal that must stay flat).
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .runner import PRIMARY_METRICS, ScenarioResult
from .store import load_artifact, results_from_artifact

#: Eight-level block sparkline ramp.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


@dataclass
class RunSnapshot:
    """One historical artifact state: which run produced it, and its results."""

    path: str
    git_rev: str
    created_at: str
    results: List[ScenarioResult] = field(default_factory=list)

    @property
    def order_key(self) -> Tuple[str, str]:
        # ISO-8601 timestamps sort lexicographically.
        return (self.created_at, self.git_rev)

    def merge(self, other: "RunSnapshot") -> None:
        """Fold another artifact state of the same run into this snapshot."""
        mine = {r.scenario_id for r in self.results}
        self.results.extend(r for r in other.results if r.scenario_id not in mine)
        self.created_at = max(self.created_at, other.created_at)


def _git_revisions_of(path: str) -> List[str]:
    """Commits that touched ``path``, oldest first ('' outside a checkout)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        out = subprocess.run(
            ["git", "log", "--follow", "--format=%H", "--", os.path.basename(path)],
            cwd=directory, capture_output=True, text=True, timeout=20,
        )
    except (OSError, subprocess.TimeoutExpired):
        return []
    if out.returncode != 0:
        return []
    return [rev for rev in reversed(out.stdout.split())]

def _git_show(path: str, revision: str) -> Optional[str]:
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        out = subprocess.run(
            ["git", "show", f"{revision}:./{os.path.basename(path)}"],
            cwd=directory, capture_output=True, text=True, timeout=20,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout if out.returncode == 0 else None


def _snapshot_from_payload(path: str, payload: Dict[str, object]) -> RunSnapshot:
    return RunSnapshot(
        path=path,
        git_rev=str(payload.get("git_rev", "unknown")),
        created_at=str(payload.get("created_at", "")),
        results=results_from_artifact(payload),
    )


def collect_history(
    paths: Sequence[str],
    include_git_history: bool = True,
    max_revisions: int = 50,
) -> List[RunSnapshot]:
    """Load each artifact plus (optionally) its prior versions from git.

    Artifact states produced by the same run (same recorded ``git_rev``) are
    merged into one snapshot — the per-scenario ``BENCH_*.json`` files of one
    benchmark sweep count as a single run — and a commit that merely carried
    an artifact forward unchanged adds no new run.  Snapshots are returned
    oldest-first.
    """
    by_rev: Dict[str, RunSnapshot] = {}

    def record(snapshot: RunSnapshot) -> None:
        existing = by_rev.get(snapshot.git_rev)
        if existing is None:
            by_rev[snapshot.git_rev] = snapshot
        else:
            existing.merge(snapshot)

    for path in paths:
        if include_git_history:
            for revision in _git_revisions_of(path)[-max_revisions:]:
                text = _git_show(path, revision)
                if text is None:
                    continue
                try:
                    payload = json.loads(text)
                    if not isinstance(payload, dict) or "scenarios" not in payload:
                        continue
                    record(_snapshot_from_payload(path, payload))
                except (ValueError, KeyError, TypeError):
                    continue  # unreadable / pre-schema version: skip
        if os.path.exists(path):
            try:
                record(_snapshot_from_payload(path, load_artifact(path)))
            except (ValueError, OSError):
                continue
    return sorted(by_rev.values(), key=lambda s: s.order_key)


def sparkline(values: Sequence[Optional[float]]) -> str:
    """Render a block sparkline; gaps (None/NaN) become spaces."""
    present = [v for v in values if v is not None and v == v]
    if not present:
        return " " * len(values)
    low, high = min(present), max(present)
    span = high - low
    chars: List[str] = []
    for value in values:
        if value is None or value != value:
            chars.append(" ")
        elif span <= 0:
            chars.append(_SPARK_LEVELS[3])
        else:
            level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
            chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


@dataclass
class TrendSeries:
    """One metric's history across the collected runs."""

    label: str
    values: List[Optional[float]]

    def first(self) -> Optional[float]:
        return next((v for v in self.values if v is not None), None)

    def last(self) -> Optional[float]:
        return next((v for v in reversed(self.values) if v is not None), None)

    def delta_pct(self) -> Optional[float]:
        first, last = self.first(), self.last()
        if first is None or last is None or first == 0:
            return None
        return (last - first) / abs(first) * 100.0


def scenario_trends(
    snapshots: Sequence[RunSnapshot],
) -> Dict[str, Tuple[str, List[TrendSeries]]]:
    """Build per-scenario series over the snapshot sequence.

    Returns ``{scenario_id: (kind, [elapsed_s series, unit series...])}``,
    ordered by scenario id; scenarios present in only some runs get gaps.
    """
    by_scenario: Dict[str, Dict[str, List[Optional[float]]]] = {}
    kinds: Dict[str, str] = {}
    runs = len(snapshots)
    for index, snapshot in enumerate(snapshots):
        for result in snapshot.results:
            kinds[result.scenario_id] = result.kind
            series = by_scenario.setdefault(result.scenario_id, {})
            elapsed = series.setdefault("elapsed_s", [None] * runs)
            elapsed[index] = float(result.elapsed_s)
            metric, _ = PRIMARY_METRICS.get(result.kind, (None, True))
            if metric is None:
                continue
            for unit in result.units:
                if unit.status != "ok" or metric not in unit.metrics:
                    continue
                row = series.setdefault(unit.label, [None] * runs)
                row[index] = float(unit.metrics[metric])
    out: Dict[str, Tuple[str, List[TrendSeries]]] = {}
    for scenario_id in sorted(by_scenario):
        series_map = by_scenario[scenario_id]
        ordered = [TrendSeries("elapsed_s", series_map.pop("elapsed_s"))]
        ordered.extend(
            TrendSeries(label, series_map[label]) for label in sorted(series_map)
        )
        out[scenario_id] = (kinds[scenario_id], ordered)
    return out


def render_trend(snapshots: Sequence[RunSnapshot]) -> str:
    """Console report: per-scenario sparkline tables over the run history."""
    if not snapshots:
        return "no artifact history found"
    from .report import format_table

    header = [
        f"{len(snapshots)} run(s): "
        + " -> ".join(
            f"{s.git_rev}@{s.created_at[:10] or '?'}" for s in snapshots
        )
    ]
    blocks: List[str] = ["\n".join(header), ""]
    for scenario_id, (kind, series_list) in scenario_trends(snapshots).items():
        metric, _ = PRIMARY_METRICS.get(kind, ("?", True))
        rows = []
        for series in series_list:
            delta = series.delta_pct()
            rows.append([
                series.label,
                sparkline(series.values),
                series.first() if series.first() is not None else float("nan"),
                series.last() if series.last() is not None else float("nan"),
                f"{delta:+.1f}%" if delta is not None else "-",
            ])
        blocks.append(f"=== {scenario_id} [{kind}] primary={metric} ===")
        blocks.append(format_table(["series", "trend", "first", "last", "delta"], rows))
        blocks.append("")
    return "\n".join(blocks).rstrip()

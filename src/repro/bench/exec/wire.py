"""Wire format of the queue backend: length-prefixed JSON frames.

Every message between a coordinator and its peers (workers and remote
drivers) is one UTF-8 JSON object prefixed by a 4-byte big-endian length.
The payloads are plain dicts with a ``"type"`` discriminator; units and
results travel as the dict encodings below, so a worker needs nothing but
the installed package to execute leased units — the scenario registry is
never consulted remotely (a :class:`~repro.bench.registry.ScenarioUnit`
carries everything its executor needs).

Protocol summary (all messages are peer-initiated; the coordinator only
ever replies):

==============  =======================================================
worker → coord  ``hello`` (role=worker, jobs), ``lease`` (ask for a
                unit), ``result`` (completed lease), ``heartbeat``
coord → worker  ``welcome``, ``unit`` / ``idle`` / ``shutdown`` (lease
                replies)
driver → coord  ``hello`` (role=driver), ``submit`` (units + timeout)
coord → driver  ``welcome``, ``result`` stream, ``done``
==============  =======================================================
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict

from ..registry import ScenarioUnit
from ..runner import UnitResult

#: Bump on any incompatible message-layout change; ``hello`` carries it and
#: the coordinator rejects mismatched peers instead of mis-parsing them.
WIRE_VERSION = 1

#: Upper bound on one frame; anything larger is a corrupt or foreign stream.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class WireError(ConnectionError):
    """Malformed frame or closed connection."""


def send_message(sock: socket.socket, payload: Dict[str, object]) -> None:
    """Serialise one message onto the socket (length prefix + JSON body)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds the wire limit")
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise WireError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Dict[str, object]:
    """Read one message; raises :class:`WireError` on EOF or garbage."""
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds the wire limit")
    try:
        payload = json.loads(_recv_exact(sock, length).decode("utf-8"))
    except ValueError as exc:
        raise WireError(f"undecodable frame: {exc}") from None
    if not isinstance(payload, dict) or "type" not in payload:
        raise WireError("frame is not a typed message object")
    return payload


# --------------------------------------------------------------------------- payload codecs
def unit_to_wire(unit: ScenarioUnit) -> Dict[str, object]:
    """Encode a unit for transmission (overrides tuples become lists)."""
    return {
        "scenario_id": unit.scenario_id,
        "kind": unit.kind,
        "system": unit.system,
        "model_size": unit.model_size,
        "task_type": unit.task_type,
        "total_gpus": unit.total_gpus,
        "variant": unit.variant,
        "iterations": unit.iterations,
        "warmup": unit.warmup,
        "batch_scale": unit.batch_scale,
        "seed": unit.seed,
        "base_seed": unit.base_seed,
        "timeout_s": unit.timeout_s,
        "overrides": [[key, value] for key, value in unit.overrides],
    }


def unit_from_wire(payload: Dict[str, object]) -> ScenarioUnit:
    return ScenarioUnit(
        scenario_id=str(payload["scenario_id"]),
        kind=str(payload["kind"]),
        system=str(payload["system"]),
        model_size=str(payload["model_size"]),
        task_type=str(payload["task_type"]),
        total_gpus=int(payload["total_gpus"]),
        variant=str(payload["variant"]),
        iterations=int(payload["iterations"]),
        warmup=int(payload["warmup"]),
        batch_scale=float(payload["batch_scale"]),
        seed=int(payload["seed"]),
        base_seed=int(payload["base_seed"]),
        timeout_s=float(payload["timeout_s"]),
        overrides=tuple((str(key), value) for key, value in payload.get("overrides", [])),
    )


def result_to_wire(result: UnitResult) -> Dict[str, object]:
    return result.as_dict()


def result_from_wire(payload: Dict[str, object]) -> UnitResult:
    return UnitResult.from_dict(payload)

"""Pluggable execution backends for the scenario matrix.

* :mod:`repro.bench.exec.base` — the :class:`ExecBackend` protocol plus the
  single-host backends (:class:`SerialBackend`, :class:`ProcessPoolBackend`).
* :mod:`repro.bench.exec.wire` — length-prefixed JSON framing and the
  unit/result codecs shared by every networked peer.
* :mod:`repro.bench.exec.coordinator` — the TCP :class:`Coordinator`
  (leases, heartbeats, requeue-on-death, retry budgets) and the
  :class:`QueueBackend` that drives it, embedded or remote.
* :mod:`repro.bench.exec.worker` — the ``repro-bench worker`` agent loop.

:func:`make_backend` maps the CLI surface (``--backend`` + ``--jobs`` +
``--bind``/``--connect``) onto a concrete backend instance.
"""

from __future__ import annotations

from typing import Callable, Optional

from .base import (
    ExecBackend,
    ProcessPoolBackend,
    SerialBackend,
    TracingSerialBackend,
    effective_timeout,
    failed_result,
)
from .coordinator import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_LEASE_GRACE_S,
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_PORT,
    Coordinator,
    QueueBackend,
    parse_hostport,
)
from .wire import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    WireError,
    recv_message,
    result_from_wire,
    result_to_wire,
    send_message,
    unit_from_wire,
    unit_to_wire,
)
from .worker import connect_with_retry, run_worker

#: Names accepted by ``repro-bench run --backend``.
BACKENDS = ("serial", "process", "queue")


def make_backend(
    name: str,
    jobs: int = 1,
    profile_top: Optional[int] = None,
    bind: Optional[str] = None,
    connect: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> ExecBackend:
    """Build the backend the CLI flags describe.

    ``serial`` ignores ``jobs``; ``process`` is the historical local pool;
    ``queue`` embeds a coordinator at ``bind`` unless ``connect`` points at
    a standalone one.  ``profile_top`` is only meaningful serially (the CLI
    forces the serial backend for profiled runs).
    """
    if name == "serial":
        return SerialBackend(profile_top=profile_top)
    if profile_top is not None:
        raise ValueError("--profile requires the serial backend")
    if name == "process":
        return ProcessPoolBackend(jobs=jobs)
    if name == "queue":
        return QueueBackend(bind=bind, connect=connect, log=log)
    raise ValueError(f"unknown backend {name!r}; known: {', '.join(BACKENDS)}")


def default_backend(jobs: int = 1, profile_top: Optional[int] = None) -> ExecBackend:
    """The backend `run_scenarios` historically implied: serial for one job
    (or any profiled run), the local process pool otherwise."""
    if profile_top is not None or jobs == 1:
        return SerialBackend(profile_top=profile_top)
    return ProcessPoolBackend(jobs=jobs)


__all__ = [
    "BACKENDS",
    "Coordinator",
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_LEASE_GRACE_S",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_PORT",
    "ExecBackend",
    "MAX_FRAME_BYTES",
    "ProcessPoolBackend",
    "QueueBackend",
    "SerialBackend",
    "TracingSerialBackend",
    "WIRE_VERSION",
    "WireError",
    "connect_with_retry",
    "default_backend",
    "effective_timeout",
    "failed_result",
    "make_backend",
    "parse_hostport",
    "recv_message",
    "result_from_wire",
    "result_to_wire",
    "run_worker",
    "send_message",
    "unit_from_wire",
    "unit_to_wire",
]

"""TCP coordinator that leases scenario units to a worker fleet.

The coordinator owns the unit queue.  Workers (``repro-bench worker``)
connect, request leases, execute units in their local sub-pools and stream
results back; drivers (``repro-bench run --backend queue --connect`` or a
remote ``QueueBackend``) connect to submit unit batches and receive the
merged results.  All traffic uses the length-prefixed JSON frames of
:mod:`repro.bench.exec.wire`.

Fault model
-----------

* **Worker death** (connection drop, missed heartbeats): every lease the
  worker held is requeued at the front of the queue.
* **Lease expiry**: a lease that outlives its unit budget plus grace is
  requeued even if the worker still heartbeats (a wedged unit that ignored
  its worker-side ``SIGALRM``).
* **Straggling leases**: a lease whose holder has gone silent for
  ``speculate_after_s`` (heartbeat-relative, long before the budget or the
  worker-drop timeout) is speculatively re-leased to the rest of the fleet
  *without* cancelling the original — whichever execution lands first wins
  the idempotent ledger, and determinism makes the race unobservable.
* **Retry budget**: each unit is granted at most ``max_attempts`` leases;
  past that, a synthetic non-ok :class:`UnitResult` is recorded so a
  poisonous unit cannot starve the run.
* **Duplicate delivery**: results are recorded idempotently per unit index
  — the first delivery wins, stale or duplicate deliveries are dropped.
  Units are deterministic (seed = f(grid index)), so re-executions produce
  bit-identical payloads and the merge order cannot change the outcome.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from collections import deque
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ...obs import get_run_logger
from ..registry import ScenarioUnit
from ..runner import UnitResult
from .base import effective_timeout, failed_result
from .wire import (
    WIRE_VERSION,
    WireError,
    recv_message,
    result_from_wire,
    result_to_wire,
    send_message,
    unit_from_wire,
    unit_to_wire,
)

#: Default coordinator port (``repro-bench serve`` / ``--backend queue``).
DEFAULT_PORT = 7781
#: Interval at which workers are asked to heartbeat.
DEFAULT_HEARTBEAT_S = 2.0
#: Extra slack on top of a unit's budget before its lease is presumed lost.
DEFAULT_LEASE_GRACE_S = 30.0
#: Leases granted per unit before the coordinator gives up on it.
DEFAULT_MAX_ATTEMPTS = 3

#: Structured run-log twin of the injectable ``log`` callable: every fleet
#: event also lands here at DEBUG, so ``--log-level debug --log-json`` yields
#: a machine-readable lease/requeue/join history without changing the
#: human-facing callback output.
_log = get_run_logger("bench.exec.coordinator")


class _Batch:
    """One submitted unit list and its (idempotent) result ledger."""

    def __init__(self, units: List[ScenarioUnit], timeout_s: Optional[float],
                 batch_id: int) -> None:
        self.batch_id = batch_id
        self.units = units
        self.timeout_s = timeout_s
        self.attempts = [0] * len(units)
        self.results: Dict[int, UnitResult] = {}
        self.out: "queue.Queue[Optional[Tuple[int, UnitResult]]]" = queue.Queue()
        self.remaining = len(units)
        self.aborted = False


class _Worker:
    """Coordinator-side view of one connected worker."""

    def __init__(self, worker_id: int, sock: socket.socket, jobs: int,
                 addr: Tuple[str, int]) -> None:
        self.worker_id = worker_id
        self.sock = sock
        self.jobs = jobs
        self.addr = addr
        self.last_seen = time.monotonic()
        self.joined_at = time.monotonic()
        self.lease_ids: set = set()
        #: Results this worker delivered (coordinator-side count).
        self.units_done = 0
        #: Wall-clock of the worker's most recent completed unit, as the
        #: worker reported it (heartbeat/result piggyback; None until then).
        self.last_wall_s: Optional[float] = None
        #: In-flight unit progress from the latest heartbeat piggyback:
        #: ``[{"unit": label, "lease": id, "running_s": s}, ...]``.
        self.inflight: List[Dict[str, object]] = []


class _Lease:
    def __init__(self, lease_id: int, batch: _Batch, index: int,
                 worker_id: int, deadline: float, attempt: int = 1) -> None:
        self.lease_id = lease_id
        self.batch = batch
        self.index = index
        self.worker_id = worker_id
        self.deadline = deadline
        self.attempt = attempt
        self.granted_at = time.monotonic()
        #: Set once the unit has been speculatively re-leased because this
        #: lease's holder went silent; prevents repeat speculation.
        self.speculated = False


class Coordinator:
    """Threaded TCP server distributing scenario units to workers.

    Use either embedded (``QueueBackend`` starts one inside the driving
    process) or standalone (``repro-bench serve``), where remote drivers
    submit batches over the same socket protocol.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        worker_timeout_s: Optional[float] = None,
        lease_grace_s: float = DEFAULT_LEASE_GRACE_S,
        speculate_after_s: Optional[float] = None,
        status_interval_s: float = 30.0,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if heartbeat_s <= 0 or lease_grace_s < 0:
            raise ValueError("heartbeat_s must be positive and lease_grace_s >= 0")
        self.max_attempts = max_attempts
        self.heartbeat_s = heartbeat_s
        self.worker_timeout_s = (
            worker_timeout_s if worker_timeout_s is not None else 5.0 * heartbeat_s
        )
        self.lease_grace_s = lease_grace_s
        # Straggler detection is heartbeat-relative: speculate well before
        # the worker-drop timeout, so a wedged-but-connected worker (SIGSTOP,
        # GC pause, swapping host) cannot stall the batch for its whole
        # budget.  First result wins; determinism makes the race harmless.
        self.speculate_after_s = (
            speculate_after_s if speculate_after_s is not None
            else 2.5 * heartbeat_s
        )
        if self.speculate_after_s <= 0:
            raise ValueError("speculate_after_s must be positive")
        #: Total speculative re-leases issued (introspection + tests).
        self.speculations = 0
        #: Leases returned to the queue (worker death / expiry), and units
        #: abandoned after exhausting their retry budget.
        self.requeues = 0
        self.exhausted = 0
        #: Results recorded into batch ledgers (includes synthesized ones).
        self.units_completed = 0
        #: Interval of the periodic structured status snapshot on the run
        #: log (0 disables); the live `status` wire verb is always served.
        self.status_interval_s = status_interval_s
        #: Worker-reported wall-clock per completed unit (count/total/last).
        self._unit_wall = {"count": 0, "total_s": 0.0, "last_s": None}
        self._log = log or (lambda message: None)
        self._listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listen.bind((host, port))
        self._listen.listen(64)
        self._lock = threading.Lock()
        self._pending: deque = deque()  # of (_Batch, index)
        self._leases: Dict[int, _Lease] = {}
        self._workers: Dict[int, _Worker] = {}
        self._batches: Dict[int, _Batch] = {}
        self._next_id = 0
        self._stopping = False
        self._threads: List[threading.Thread] = []
        self._started = False
        self._started_at = time.monotonic()
        self._last_status_emit = time.monotonic()

    # ------------------------------------------------------------------ lifecycle
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port is concrete even when bound to 0)."""
        return self._listen.getsockname()[:2]

    def start(self) -> "Coordinator":
        if self._started:
            return self
        self._started = True
        for target in (self._accept_loop, self._monitor_loop):
            thread = threading.Thread(target=target, daemon=True,
                                      name=f"repro-bench-{target.__name__}")
            thread.start()
            self._threads.append(thread)
        host, port = self.address
        self._log(f"coordinator listening on {host}:{port}")
        _log.debug("listening", host=host, port=port)
        return self

    def close(self) -> None:
        """Stop accepting, shut down workers, release every connection."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            workers = list(self._workers.values())
        try:
            self._listen.close()
        except OSError:
            pass
        for worker in workers:
            try:
                worker.sock.close()
            except OSError:
                pass

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ submission
    def submit_units(
        self, units: Iterable[ScenarioUnit], timeout_s: Optional[float] = None
    ) -> Iterator[Tuple[int, UnitResult]]:
        """Queue units for the fleet; yield ``(index, result)`` as they land."""
        batch_units = list(units)
        with self._lock:
            if self._stopping:
                raise RuntimeError("coordinator is closed")
            self._next_id += 1
            batch = _Batch(batch_units, timeout_s, self._next_id)
            self._batches[batch.batch_id] = batch
            self._pending.extend((batch, index) for index in range(len(batch_units)))
        if not batch_units:
            return
        waited_s = 0.0
        warn_at_s = 10.0
        try:
            while True:
                try:
                    item = batch.out.get(timeout=0.5)
                except queue.Empty:
                    # A batch with no fleet waits forever; say so instead of
                    # hanging silently (a worker that failed at startup is
                    # indistinguishable from a slow unit otherwise).
                    waited_s += 0.5
                    if waited_s >= warn_at_s and self.worker_count() == 0:
                        host, port = self.address
                        self._log(
                            f"no workers connected after {waited_s:.0f}s; "
                            f"attach with: repro-bench worker --connect "
                            f"{host}:{port}"
                        )
                        warn_at_s += 30.0
                    continue
                waited_s = 0.0
                warn_at_s = 10.0
                if item is None:
                    return
                yield item
        finally:
            self._abort_batch(batch)

    def _abort_batch(self, batch: _Batch) -> None:
        with self._lock:
            batch.aborted = True
            self._batches.pop(batch.batch_id, None)
            self._pending = deque(
                entry for entry in self._pending if entry[0] is not batch
            )

    # ------------------------------------------------------------------ ledger
    def _record(self, batch: _Batch, index: int, result: UnitResult) -> bool:
        """Idempotently record one unit result; returns False on duplicates."""
        with self._lock:
            if batch.aborted or index in batch.results:
                return False
            batch.results[index] = result
            batch.remaining -= 1
            self.units_completed += 1
            done = batch.remaining == 0
        batch.out.put((index, result))
        if done:
            batch.out.put(None)
        return True

    def _grant(self, worker: _Worker) -> Dict[str, object]:
        """Build the reply to one lease request."""
        with self._lock:
            if self._stopping:
                return {"type": "shutdown"}
            while self._pending:
                batch, index = self._pending.popleft()
                if batch.aborted or index in batch.results:
                    continue
                batch.attempts[index] += 1
                unit = batch.units[index]
                budget = effective_timeout(unit, batch.timeout_s)
                self._next_id += 1
                lease = _Lease(
                    lease_id=self._next_id, batch=batch, index=index,
                    worker_id=worker.worker_id,
                    deadline=time.monotonic() + budget + self.lease_grace_s,
                    attempt=batch.attempts[index],
                )
                self._leases[lease.lease_id] = lease
                worker.lease_ids.add(lease.lease_id)
                return {
                    "type": "unit",
                    "lease_id": lease.lease_id,
                    "timeout_s": budget,
                    "attempt": batch.attempts[index],
                    "unit": unit_to_wire(unit),
                }
            return {"type": "idle", "backoff_s": min(0.5, self.heartbeat_s / 2.0)}

    def _requeue(self, lease: _Lease, status: str, reason: str) -> None:
        """Return a lost lease's unit to the queue (or exhaust its budget)."""
        with self._lock:
            if self._leases.pop(lease.lease_id, None) is None:
                return  # already resolved (result landed or double requeue)
            worker = self._workers.get(lease.worker_id)
            if worker is not None:
                worker.lease_ids.discard(lease.lease_id)
            batch, index = lease.batch, lease.index
            if batch.aborted or index in batch.results:
                return
            exhausted = batch.attempts[index] >= self.max_attempts
            if exhausted:
                self.exhausted += 1
            else:
                self.requeues += 1
                self._pending.appendleft((batch, index))
        unit = batch.units[index]
        if exhausted:
            self._record(batch, index, failed_result(
                unit, status,
                f"{reason}; retry budget exhausted after "
                f"{batch.attempts[index]} attempt(s)",
            ))
            self._log(f"unit {unit.label} gave up: {reason}")
            _log.debug("unit_exhausted", unit=unit.label, reason=reason,
                       attempts=batch.attempts[index])
        else:
            self._log(f"unit {unit.label} requeued: {reason}")
            _log.debug("unit_requeued", unit=unit.label, reason=reason)

    # ------------------------------------------------------------------ server loops
    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                sock, addr = self._listen.accept()
            except OSError:
                return  # listener closed
            # Connection threads are daemons and never joined — don't retain
            # them, or a long-lived `serve` leaks one Thread per connection.
            threading.Thread(
                target=self._serve_connection, args=(sock, addr), daemon=True,
                name="repro-bench-conn",
            ).start()

    def _monitor_loop(self) -> None:
        while not self._stopping:
            time.sleep(min(0.25, self.heartbeat_s / 4.0))
            now = time.monotonic()
            with self._lock:
                silent = [
                    worker for worker in self._workers.values()
                    if now - worker.last_seen > self.worker_timeout_s
                ]
                expired = [
                    lease for lease in self._leases.values() if now > lease.deadline
                ]
                straggling: List[_Lease] = []
                for lease in self._leases.values():
                    if lease.speculated or now > lease.deadline:
                        continue
                    worker = self._workers.get(lease.worker_id)
                    if worker is None:
                        continue  # drop path requeues momentarily
                    idle_s = now - worker.last_seen
                    # Past worker_timeout_s the drop path owns the lease.
                    if not (self.speculate_after_s < idle_s <= self.worker_timeout_s):
                        continue
                    if lease.batch.aborted or lease.index in lease.batch.results:
                        continue
                    lease.speculated = True
                    self._pending.appendleft((lease.batch, lease.index))
                    self.speculations += 1
                    straggling.append(lease)
            for worker in silent:
                self._drop_worker(worker, "missed heartbeats")
            for lease in expired:
                self._requeue(
                    lease, "timeout",
                    f"lease {lease.lease_id} expired on worker {lease.worker_id}",
                )
            for lease in straggling:
                unit = lease.batch.units[lease.index]
                self._log(
                    f"worker {lease.worker_id} straggling on {unit.label}; "
                    f"speculatively re-leasing (first result wins)"
                )
                _log.debug("lease_speculated", unit=unit.label,
                           worker=lease.worker_id, lease=lease.lease_id)
            if (self.status_interval_s > 0
                    and now - self._last_status_emit >= self.status_interval_s):
                self._last_status_emit = now
                self._emit_status_snapshot()

    def _serve_connection(self, sock: socket.socket, addr: Tuple[str, int]) -> None:
        try:
            sock.settimeout(max(10.0, 2.0 * self.worker_timeout_s))
            hello = recv_message(sock)
            if hello.get("type") != "hello" or hello.get("wire_version") != WIRE_VERSION:
                send_message(sock, {
                    "type": "error",
                    "message": f"incompatible hello (wire version {WIRE_VERSION} "
                               f"required)",
                })
                sock.close()
                return
            role = hello.get("role")
            if role == "worker":
                self._serve_worker(sock, addr, int(hello.get("jobs", 1)))
            elif role == "driver":
                self._serve_driver(sock)
            elif role == "status":
                self._serve_status(sock)
            else:
                send_message(sock, {"type": "error",
                                    "message": f"unknown role {role!r}"})
                sock.close()
        except (WireError, OSError):
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ worker handling
    def _serve_worker(self, sock: socket.socket, addr: Tuple[str, int],
                      jobs: int) -> None:
        with self._lock:
            self._next_id += 1
            worker = _Worker(self._next_id, sock, jobs, addr)
            self._workers[worker.worker_id] = worker
        send_message(sock, {
            "type": "welcome",
            "worker_id": worker.worker_id,
            "heartbeat_s": self.heartbeat_s,
        })
        self._log(f"worker {worker.worker_id} joined from {addr[0]}:{addr[1]} "
                  f"(jobs={jobs})")
        _log.debug("worker_joined", worker=worker.worker_id,
                   host=addr[0], port=addr[1], jobs=jobs)
        try:
            while True:
                message = recv_message(sock)
                worker.last_seen = time.monotonic()
                kind = message.get("type")
                if kind == "lease":
                    send_message(sock, self._grant(worker))
                elif kind == "result":
                    self._handle_result(worker, message)
                elif kind == "heartbeat":
                    # last_seen is already refreshed; newer workers piggyback
                    # per-unit progress on the beat (older ones send bare
                    # heartbeats — every field is optional).
                    inflight = message.get("inflight")
                    if isinstance(inflight, list):
                        worker.inflight = [
                            dict(entry) for entry in inflight
                            if isinstance(entry, dict)
                        ]
                    last_wall = message.get("last_wall_s")
                    if last_wall is not None:
                        worker.last_wall_s = float(last_wall)
                elif kind == "goodbye":
                    break
        except (WireError, OSError):
            pass
        finally:
            self._drop_worker(worker, "connection closed")

    def _handle_result(self, worker: _Worker, message: Dict[str, object]) -> None:
        lease_id = int(message.get("lease_id", -1))
        wall_s = message.get("wall_s")
        with self._lock:
            lease = self._leases.pop(lease_id, None)
            if lease is not None:
                worker.lease_ids.discard(lease_id)
                worker.units_done += 1
                if wall_s is not None:
                    wall_s = float(wall_s)
                    worker.last_wall_s = wall_s
                    self._unit_wall["count"] += 1
                    self._unit_wall["total_s"] += wall_s
                    self._unit_wall["last_s"] = wall_s
        if lease is None:
            self._log(f"dropping stale result for lease {lease_id} "
                      f"from worker {worker.worker_id}")
            return  # expired/requeued lease: the fresh execution wins
        try:
            result = result_from_wire(message["result"])
        except (KeyError, TypeError, ValueError) as exc:
            self._requeue(lease, "failed", f"undecodable result ({exc})")
            return
        self._record(lease.batch, lease.index, result)

    def _drop_worker(self, worker: _Worker, reason: str) -> None:
        with self._lock:
            if self._workers.pop(worker.worker_id, None) is None:
                return
            leases = [self._leases[lease_id] for lease_id in worker.lease_ids
                      if lease_id in self._leases]
        if leases:
            self._log(f"worker {worker.worker_id} lost ({reason}); "
                      f"requeueing {len(leases)} lease(s)")
        else:
            self._log(f"worker {worker.worker_id} left ({reason})")
        _log.debug("worker_dropped", worker=worker.worker_id, reason=reason,
                   requeued=len(leases))
        for lease in leases:
            self._requeue(lease, "failed",
                          f"worker {worker.worker_id} died ({reason})")
        try:
            worker.sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------ driver handling
    def _serve_driver(self, sock: socket.socket) -> None:
        send_message(sock, {"type": "welcome"})
        try:
            while True:
                message = recv_message(sock)
                if message.get("type") != "submit":
                    continue
                units = [unit_from_wire(u) for u in message.get("units", [])]
                timeout_s = message.get("timeout_s")
                timeout_s = float(timeout_s) if timeout_s is not None else None
                self._log(f"driver submitted {len(units)} unit(s)")
                _log.debug("driver_submit", units=len(units))
                for index, result in self.submit_units(units, timeout_s):
                    send_message(sock, {
                        "type": "result", "index": index,
                        "result": result_to_wire(result),
                    })
                send_message(sock, {"type": "done"})
        except (WireError, OSError):
            pass  # driver went away; submit_units' finally aborts the batch
        finally:
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ status surface
    def _serve_status(self, sock: socket.socket) -> None:
        """Serve the ``status`` wire role: each ``{"type": "status"}`` frame
        gets one live snapshot back (``repro-bench status --watch`` keeps the
        connection open and re-requests)."""
        send_message(sock, {"type": "welcome"})
        try:
            while True:
                message = recv_message(sock)
                kind = message.get("type")
                if kind == "status":
                    send_message(sock, {"type": "status",
                                        "status": self.status_snapshot()})
                elif kind == "goodbye":
                    return
        except (WireError, OSError):
            pass  # observer went away; nothing to clean up
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def status_snapshot(self) -> Dict[str, object]:
        """A JSON-serializable live view of the fleet (the telemetry
        registry): queue depth, workers with heartbeat ages and in-flight
        progress, outstanding leases, batch ledgers and lifetime counters."""
        now = time.monotonic()
        with self._lock:
            workers = [
                {
                    "worker_id": worker.worker_id,
                    "host": worker.addr[0],
                    "port": worker.addr[1],
                    "jobs": worker.jobs,
                    "heartbeat_age_s": round(now - worker.last_seen, 3),
                    "uptime_s": round(now - worker.joined_at, 3),
                    "leases": len(worker.lease_ids),
                    "units_done": worker.units_done,
                    "last_wall_s": worker.last_wall_s,
                    "inflight": [dict(entry) for entry in worker.inflight],
                }
                for worker in self._workers.values()
            ]
            leases = [
                {
                    "lease_id": lease.lease_id,
                    "unit": lease.batch.units[lease.index].label,
                    "scenario_id": lease.batch.units[lease.index].scenario_id,
                    "worker_id": lease.worker_id,
                    "attempt": lease.attempt,
                    "age_s": round(now - lease.granted_at, 3),
                    "deadline_in_s": round(lease.deadline - now, 3),
                    "speculated": lease.speculated,
                }
                for lease in self._leases.values()
            ]
            batches = [
                {
                    "batch_id": batch.batch_id,
                    "units": len(batch.units),
                    "completed": len(batch.results),
                    "remaining": batch.remaining,
                }
                for batch in self._batches.values()
            ]
            counters = {
                "units_completed": self.units_completed,
                "requeues": self.requeues,
                "speculations": self.speculations,
                "units_exhausted": self.exhausted,
            }
            wall = dict(self._unit_wall)
            queue_depth = len(self._pending)
        wall_stats: Dict[str, object] = {
            "count": wall["count"],
            "mean_s": (round(wall["total_s"] / wall["count"], 3)
                       if wall["count"] else None),
            "last_s": wall["last_s"],
        }
        workers.sort(key=lambda w: w["worker_id"])
        leases.sort(key=lambda l: l["lease_id"])
        batches.sort(key=lambda b: b["batch_id"])
        return {
            "queue_depth": queue_depth,
            "workers": workers,
            "leases": leases,
            "batches": batches,
            "counters": counters,
            "unit_wall_s": wall_stats,
            "heartbeat_s": self.heartbeat_s,
            "uptime_s": round(now - self._started_at, 3),
        }

    def _emit_status_snapshot(self) -> None:
        """Periodic structured run-log twin of the live wire snapshot."""
        snapshot = self.status_snapshot()
        if not (snapshot["workers"] or snapshot["leases"]
                or snapshot["queue_depth"]):
            return  # an idle, worker-less coordinator stays quiet
        counters: Dict[str, int] = snapshot["counters"]
        _log.info(
            "status_snapshot",
            message=(
                f"status: queue={snapshot['queue_depth']} "
                f"leases={len(snapshot['leases'])} "
                f"workers={len(snapshot['workers'])} "
                f"completed={counters['units_completed']} "
                f"requeues={counters['requeues']} "
                f"speculations={counters['speculations']}"
            ),
            queue_depth=snapshot["queue_depth"],
            leases=len(snapshot["leases"]),
            workers=len(snapshot["workers"]),
            **counters,
        )

    # ------------------------------------------------------------------ introspection
    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)


class QueueBackend:
    """Distributed execution behind the :class:`ExecBackend` protocol.

    Two modes:

    * ``connect="host:port"`` — submit the units to an already-running
      standalone coordinator (``repro-bench serve``) as a remote driver.
    * otherwise — start an **embedded** coordinator bound to ``bind``
      (default ``127.0.0.1:0``) inside this process; workers point
      ``repro-bench worker --connect`` at it.  The coordinator shuts the
      fleet down when the run completes (workers exit on ``shutdown``).
    """

    concurrent = True

    def __init__(
        self,
        bind: Optional[str] = None,
        connect: Optional[str] = None,
        coordinator: Optional[Coordinator] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        lease_grace_s: float = DEFAULT_LEASE_GRACE_S,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if connect is not None and (bind is not None or coordinator is not None):
            raise ValueError("connect is mutually exclusive with bind/coordinator")
        self.connect = connect
        self.bind = bind
        self.max_attempts = max_attempts
        self.heartbeat_s = heartbeat_s
        self.lease_grace_s = lease_grace_s
        self._log = log or (lambda message: None)
        self._external = coordinator

    def submit(
        self, units: Iterable[ScenarioUnit], timeout_s: Optional[float] = None
    ) -> Iterator[Tuple[ScenarioUnit, UnitResult]]:
        all_units = list(units)
        if self.connect is not None:
            yield from self._submit_remote(all_units, timeout_s)
            return
        coordinator = self._external
        owned = coordinator is None
        if owned:
            host, port = parse_hostport(self.bind or "127.0.0.1:0")
            coordinator = Coordinator(
                host=host, port=port, max_attempts=self.max_attempts,
                heartbeat_s=self.heartbeat_s, lease_grace_s=self.lease_grace_s,
                log=self._log,
            ).start()
        try:
            for index, result in coordinator.submit_units(all_units, timeout_s):
                yield all_units[index], result
        finally:
            if owned:
                coordinator.close()

    def _submit_remote(
        self, all_units: List[ScenarioUnit], timeout_s: Optional[float]
    ) -> Iterator[Tuple[ScenarioUnit, UnitResult]]:
        from .worker import connect_with_retry  # shared dial-with-patience

        host, port = parse_hostport(self.connect)
        # Like workers, drivers may start before the coordinator: retry the
        # dial briefly instead of failing the whole run on a startup race.
        sock = connect_with_retry(host, port, timeout_s=30.0)
        try:
            sock.settimeout(None)
            send_message(sock, {"type": "hello", "role": "driver",
                                "wire_version": WIRE_VERSION})
            welcome = recv_message(sock)
            if welcome.get("type") != "welcome":
                raise WireError(
                    f"coordinator rejected the driver: "
                    f"{welcome.get('message', welcome.get('type'))}"
                )
            send_message(sock, {
                "type": "submit",
                "timeout_s": timeout_s,
                "units": [unit_to_wire(unit) for unit in all_units],
            })
            while True:
                message = recv_message(sock)
                kind = message.get("type")
                if kind == "done":
                    return
                if kind == "result":
                    index = int(message["index"])
                    yield all_units[index], result_from_wire(message["result"])
        finally:
            try:
                sock.close()
            except OSError:
                pass


def parse_hostport(spec: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """Parse ``HOST:PORT`` / ``:PORT`` / ``PORT`` into ``(host, port)``."""
    text = spec.strip()
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        host = host or default_host
    else:
        host, port_text = default_host, text
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid address {spec!r}; expected HOST:PORT") from None
    if not (0 <= port <= 65535):
        raise ValueError(f"invalid port in {spec!r}")
    return host, port

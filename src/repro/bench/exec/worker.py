"""Worker agent: leases units from a coordinator and executes them locally.

``repro-bench worker --connect HOST:PORT --jobs N`` runs this loop on any
machine with the repo installed.  The worker keeps up to ``jobs`` leases in
flight on a local ``ProcessPoolExecutor`` sub-pool (so one crashing unit
cannot take the agent down), streams results back as they complete, and
heartbeats at the interval the coordinator requests.  Unit budgets are
enforced exactly as in the single-host runner — ``execute_unit`` arms its
``SIGALRM`` inside the pool child, so the clock starts when the unit begins
executing; the coordinator's lease expiry is only the backstop for wedged
workers.

The agent is deliberately stateless: everything a unit needs travels in the
lease message, and results are keyed by lease id, so a worker that dies is
simply replaced by requeueing its leases.
"""

from __future__ import annotations

import os
import random
import socket
import time
import zlib
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import Callable, Dict, Optional, Tuple

from ...obs import get_run_logger
from ..runner import execute_unit
from .wire import (
    WIRE_VERSION,
    WireError,
    recv_message,
    result_to_wire,
    send_message,
    unit_from_wire,
)

#: How long ``connect_with_retry`` keeps knocking before giving up — covers
#: the common orchestration where workers start before the coordinator.
DEFAULT_CONNECT_TIMEOUT_S = 30.0

#: Structured run-log twin of the injectable ``log`` callable (DEBUG level,
#: so a default run stays quiet but ``--log-level debug --log-json`` yields
#: per-unit lease + wall-clock records).
_log = get_run_logger("bench.exec.worker")


def connect_with_retry(
    host: str, port: int, timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
    interval_s: float = 0.25, max_interval_s: float = 5.0,
) -> socket.socket:
    """Dial the coordinator with capped exponential backoff until ``timeout_s``.

    The delay doubles from ``interval_s`` up to ``max_interval_s`` with
    jitter in ``[0.5, 1.5)`` of the nominal delay, seeded from
    ``(host, port, pid)`` — deterministic for one agent, but a restarted
    fleet of workers de-synchronises instead of thundering-herding a
    coordinator that is still coming up.  Every attempt is recorded on the
    ``bench.exec.worker`` run log at DEBUG.
    """
    deadline = time.monotonic() + timeout_s
    rng = random.Random(zlib.crc32(f"{host}:{port}:{os.getpid()}".encode()))
    delay = interval_s
    attempt = 0
    while True:
        try:
            return socket.create_connection((host, port), timeout=5.0)
        except OSError as exc:
            attempt += 1
            now = time.monotonic()
            if now >= deadline:
                raise
            sleep_s = min(delay * (0.5 + rng.random()), deadline - now)
            _log.debug("connect_retry", host=host, port=port, attempt=attempt,
                       backoff_s=round(sleep_s, 3), error=str(exc))
            time.sleep(sleep_s)
            delay = min(delay * 2.0, max_interval_s)


def run_worker(
    host: str,
    port: int,
    jobs: int = 1,
    connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
    log: Optional[Callable[[str], None]] = None,
    max_units: Optional[int] = None,
) -> int:
    """Serve one coordinator until it shuts the fleet down.

    Returns a process exit code: 0 after an orderly shutdown (or when the
    coordinator goes away after this worker did useful work), 1 when the
    coordinator could never be reached or the local sub-pool broke.

    ``max_units`` caps how many units this worker executes before exiting
    (used by tests and chaos drills to force mid-run churn).
    """
    emit = log or (lambda message: None)
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    try:
        sock = connect_with_retry(host, port, connect_timeout_s)
    except OSError as exc:
        emit(f"could not reach coordinator at {host}:{port}: {exc}")
        return 1
    pool = ProcessPoolExecutor(max_workers=jobs)
    executed = 0
    exit_code = 0
    welcomed = False
    inflight: Dict[Future, Tuple[int, str, float]] = {}  # lease, label, granted-at
    try:
        sock.settimeout(30.0)
        send_message(sock, {
            "type": "hello", "role": "worker", "wire_version": WIRE_VERSION,
            "jobs": jobs,
        })
        welcome = recv_message(sock)
        if welcome.get("type") != "welcome":
            emit(f"coordinator rejected this worker: "
                 f"{welcome.get('message', welcome.get('type'))}")
            return 1
        welcomed = True
        heartbeat_s = float(welcome.get("heartbeat_s", 2.0))
        worker_id = welcome.get("worker_id")
        emit(f"worker {worker_id} serving {host}:{port} with {jobs} job slot(s)")
        last_beat = time.monotonic()
        backoff_until = 0.0
        last_wall_s: Optional[float] = None  # most recent unit wall-clock
        drained = False  # max_units reached; finish in-flight leases and leave
        while True:
            progressed = False
            # ---- stream back any finished leases
            for future in [f for f in inflight if f.done()]:
                lease_id, label, granted_at = inflight.pop(future)
                result = future.result()  # execute_unit never raises
                wall_s = time.monotonic() - granted_at
                send_message(sock, {
                    "type": "result", "lease_id": lease_id,
                    "result": result_to_wire(result),
                    "wall_s": round(wall_s, 3),
                })
                executed += 1
                progressed = True
                last_wall_s = round(wall_s, 3)
                emit(f"unit {label} done (lease {lease_id}, "
                     f"status {result.status}, {wall_s:.2f}s wall)")
                _log.debug("unit_done", unit=label, lease=lease_id,
                           status=result.status, wall_s=round(wall_s, 3))
            if max_units is not None and executed >= max_units:
                drained = True
            if drained and not inflight:
                send_message(sock, {"type": "goodbye"})
                emit(f"worker exiting after {executed} unit(s)")
                return 0
            # ---- ask for work while slots are free
            now = time.monotonic()
            if len(inflight) < jobs and now >= backoff_until and not drained:
                send_message(sock, {"type": "lease"})
                reply = recv_message(sock)
                kind = reply.get("type")
                if kind == "unit":
                    unit = unit_from_wire(reply["unit"])
                    budget = float(reply["timeout_s"])
                    future = pool.submit(execute_unit, unit, budget)
                    inflight[future] = (int(reply["lease_id"]), unit.label,
                                        time.monotonic())
                    _log.debug("lease_granted", unit=unit.label,
                               lease=int(reply["lease_id"]), budget_s=budget)
                    progressed = True
                elif kind == "idle":
                    backoff_until = now + float(reply.get("backoff_s", 0.25))
                elif kind == "shutdown":
                    emit(f"shutdown received after {executed} unit(s)")
                    return 0
                last_beat = time.monotonic()
            # ---- keep the lease-liveness signal flowing (with piggybacked
            # per-unit progress so the coordinator's status surface can show
            # what each worker is actually chewing on)
            if time.monotonic() - last_beat >= heartbeat_s:
                now = time.monotonic()
                send_message(sock, {
                    "type": "heartbeat",
                    "executed": executed,
                    "inflight": [
                        {"unit": label, "lease": lease_id,
                         "running_s": round(now - granted_at, 3)}
                        for lease_id, label, granted_at in inflight.values()
                    ],
                    "last_wall_s": last_wall_s,
                })
                last_beat = time.monotonic()
            if not progressed:
                time.sleep(0.05)
    except BrokenExecutor:
        # The sub-pool lost a child to a hard crash (segfault / OOM kill).
        # Exit without delivering results: the coordinator requeues our
        # leases, keeping the retry-budget path authoritative.
        emit("local worker pool broke; exiting so the coordinator requeues")
        exit_code = 1
    except (WireError, OSError):
        # Coordinator went away after a completed handshake.  An orderly end
        # of an embedded run looks the same as a crash from here, and an
        # idle-but-healthy agent (fleet larger than the grid) is not a
        # failure — only never reaching the coordinator at all is.
        emit(f"coordinator connection closed after {executed} unit(s)")
        exit_code = 0 if welcomed else 1
    finally:
        try:
            sock.close()
        except OSError:
            pass
        pool.shutdown(wait=False, cancel_futures=True)
    return exit_code

"""Execution backends: where scenario units actually run.

:class:`ExecBackend` is the small contract the matrix runner drives —
``submit(units) -> iterator of (unit, UnitResult)`` — so the same
:func:`repro.bench.runner.run_scenarios` front end can execute a grid
in-process (:class:`SerialBackend`), on a local process pool
(:class:`ProcessPoolBackend`) or across a worker fleet leased from a TCP
coordinator (:class:`repro.bench.exec.coordinator.QueueBackend`).

The determinism contract spans backends: every unit derives its seed from
its grid index, so for a fixed scenario the merged results are bit-identical
no matter which backend ran them or in what order they completed.  Backends
may yield results in any order; the runner regroups them per scenario.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, CancelledError, ProcessPoolExecutor, wait
from typing import Iterable, Iterator, List, Optional, Tuple

from ..registry import ScenarioUnit
from ..runner import UnitResult, execute_unit, execute_unit_profiled

try:  # pragma: no cover - Protocol is 3.8+; the repo supports >=3.9
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]


class ExecBackend(Protocol):
    """Contract every execution backend implements."""

    #: Whether units may execute concurrently (the runner uses this to keep
    #: per-scenario elapsed_s semantics identical to the historical runner).
    concurrent: bool

    def submit(
        self, units: Iterable[ScenarioUnit], timeout_s: Optional[float] = None
    ) -> Iterator[Tuple[ScenarioUnit, UnitResult]]:
        """Execute every unit and yield ``(unit, result)`` pairs as they
        complete.  ``timeout_s`` overrides each unit's own budget."""
        ...  # pragma: no cover - protocol stub


def effective_timeout(unit: ScenarioUnit, timeout_s: Optional[float]) -> float:
    """The per-unit budget: the run-level override, else the unit's own."""
    return timeout_s if timeout_s is not None else unit.timeout_s


def failed_result(unit: ScenarioUnit, status: str, error: str) -> UnitResult:
    """A synthesised non-ok result for a unit the backend could not finish."""
    return UnitResult(
        scenario_id=unit.scenario_id, system=unit.system,
        model_size=unit.model_size, total_gpus=unit.total_gpus,
        variant=unit.variant, seed=unit.seed, status=status, error=error,
    )


class SerialBackend:
    """In-process, in-order execution (optionally under cProfile)."""

    concurrent = False

    def __init__(self, profile_top: Optional[int] = None) -> None:
        if profile_top is not None and profile_top <= 0:
            raise ValueError("profile_top must be positive")
        self.profile_top = profile_top

    def submit(
        self, units: Iterable[ScenarioUnit], timeout_s: Optional[float] = None
    ) -> Iterator[Tuple[ScenarioUnit, UnitResult]]:
        for unit in units:
            budget = effective_timeout(unit, timeout_s)
            if self.profile_top is not None:
                yield unit, execute_unit_profiled(unit, budget, top=self.profile_top)
            else:
                yield unit, execute_unit(unit, budget)


class TracingSerialBackend(SerialBackend):
    """Serial execution with a :class:`~repro.obs.TraceRecorder` attached.

    Every unit runs under :func:`repro.obs.use_tracer` with its own recorder
    group (``scenario_id:label``), so one merged ``trace.json`` holds a
    Perfetto process per unit.  Because the tracer only observes, the yielded
    results are bit-identical to :class:`SerialBackend` — the property the
    ``--trace --compare --tolerance 0`` CI leg gates.

    After each unit completes, its recorded timeline is analyzed
    (:mod:`repro.obs.analysis`) and the curated derived metrics
    (``gen_bubble_frac``, ``critical_path_*_share``, ...) are attached to
    ``result.extras`` — never to ``result.metrics``, so the comparable
    nominal payload is untouched and the primary-metric gates see exactly
    what an untraced run produces.
    """

    def __init__(self, recorder, profile_top: Optional[int] = None) -> None:
        super().__init__(profile_top=profile_top)
        self.recorder = recorder

    def submit(
        self, units: Iterable[ScenarioUnit], timeout_s: Optional[float] = None
    ) -> Iterator[Tuple[ScenarioUnit, UnitResult]]:
        from ...obs import analyze_group, derived_metrics, use_tracer

        for unit in units:
            budget = effective_timeout(unit, timeout_s)
            group = f"{unit.scenario_id}:{unit.label}"
            self.recorder.set_group(group)
            with use_tracer(self.recorder):
                if self.profile_top is not None:
                    result = execute_unit_profiled(unit, budget, top=self.profile_top)
                else:
                    result = execute_unit(unit, budget)
            analysis = analyze_group(self.recorder, group)
            if analysis is not None:
                # Analytic executors record no timeline; derived_metrics is
                # then empty and the result stays extras-free.
                result.extras = derived_metrics(analysis)
            yield unit, result


class ProcessPoolBackend:
    """Local ``ProcessPoolExecutor`` fan-out (the historical ``--jobs N``).

    The budget proper is enforced worker-side (``SIGALRM`` in
    :func:`execute_unit`, where the clock starts when the unit actually
    runs); the parent keeps a generous per-future backstop for workers that
    die or hang outright — deliberately loose, because the executor flags
    futures as "running" while they are still queued behind other units.
    """

    concurrent = True

    def __init__(self, jobs: int) -> None:
        if jobs <= 0:
            raise ValueError("jobs must be positive")
        self.jobs = jobs

    def submit(
        self, units: Iterable[ScenarioUnit], timeout_s: Optional[float] = None
    ) -> Iterator[Tuple[ScenarioUnit, UnitResult]]:
        all_units: List[ScenarioUnit] = list(units)
        # No ``with`` block: a timed-out unit's worker is abandoned, and the
        # context manager's shutdown(wait=True) would block on it anyway.
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        pending = {}
        abandoned = False
        for unit in all_units:
            budget = effective_timeout(unit, timeout_s)
            pending[pool.submit(execute_unit, unit, budget)] = [
                unit, None, 2.0 * budget + 120.0,
            ]
        try:
            while pending:
                done, _ = wait(pending, timeout=1.0, return_when=FIRST_COMPLETED)
                now = time.perf_counter()
                for future in done:
                    unit, _started, _backstop = pending.pop(future)
                    try:
                        yield unit, future.result()
                    except (Exception, CancelledError):
                        yield unit, failed_result(
                            unit, "failed", traceback.format_exc(limit=8)
                        )
                for future, entry in list(pending.items()):
                    unit, started, backstop = entry
                    if started is None:
                        if future.running():
                            entry[1] = now
                        continue
                    if now - started <= backstop:
                        continue
                    # The worker missed even its SIGALRM budget: abandon it.
                    future.cancel()
                    abandoned = True
                    pending.pop(future)
                    yield unit, failed_result(
                        unit, "timeout",
                        f"unit exceeded the {backstop:.0f}s parent backstop",
                    )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
            if abandoned:
                # Every tracked unit has a result by now, so any process still
                # executing is a wedged worker that ignored its SIGALRM; kill
                # it or the interpreter's atexit hook would join it forever.
                for process in list(getattr(pool, "_processes", {}).values()):
                    if process.is_alive():
                        process.terminate()

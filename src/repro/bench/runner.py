"""Parallel matrix runner for the scenario registry.

:func:`run_scenarios` expands every selected :class:`ScenarioConfig` into its
(system × GPU scale × variant) units, executes them on a pluggable execution
backend (:mod:`repro.bench.exec`: in-process, local ``ProcessPoolExecutor``,
or a distributed coordinator + worker fleet) with per-unit timeouts, and
regroups the structured :class:`UnitResult`s into per-scenario
:class:`ScenarioResult`s.

Unit execution is fully deterministic for a fixed scenario seed: every unit
derives its own seed from the grid index, so results are bit-identical
between ``jobs=1``, ``jobs=N`` and any worker-fleet topology (the
harness-measured ``elapsed_s`` is kept outside the comparable payload).
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..experiments.placements import make_system_config
from .registry import ScenarioConfig, ScenarioUnit, overrides_dict

#: Per-kind primary metric used for summaries and regression comparison.
PRIMARY_METRICS: Dict[str, Tuple[str, bool]] = {
    "throughput": ("throughput_tok_s", True),
    "staleness_bound": ("throughput_tok_s", True),
    "convergence": ("final_reward", True),
    "repack_ablation": ("throughput_gain", True),
    "fault_injection": ("throughput_tok_s", True),
    "chaos": ("throughput_tok_s", True),
    "straggler": ("throughput_tok_s", True),
    "kvcache_lifecycle": ("mean_kvcache_utilization", True),
    "weight_sync": ("relay_speedup_vs_gpu_direct", True),
    "broadcast_latency": ("broadcast_s_at_max_scale", False),
}

@dataclass
class UnitResult:
    """Outcome of one scenario grid point."""

    scenario_id: str
    system: str
    model_size: str
    total_gpus: int
    variant: str
    seed: int
    status: str = "ok"  # ok | failed | timeout
    metrics: Dict[str, float] = field(default_factory=dict)
    error: str = ""
    #: Derived (trace-analytics) metrics — attached only when a traced run's
    #: recorder produced a timeline for this unit.  Kept out of ``metrics``
    #: (and out of ``as_dict`` when empty) so nominal untraced artifacts are
    #: byte-identical with or without analytics; ``compare`` gates these only
    #: via an explicit ``--derived-metric`` opt-in.
    extras: Dict[str, float] = field(default_factory=dict)
    #: Optional cProfile report (``--profile`` runs only); never persisted.
    profile_text: str = field(default="", compare=False, repr=False)
    #: Structured top-N hotspots (``--profile-json``); like ``profile_text``,
    #: excluded from ``as_dict`` so profiling data never reaches artifacts.
    profile_stats: List[Dict[str, object]] = field(
        default_factory=list, compare=False, repr=False
    )

    @property
    def key(self) -> Tuple[str, str, int, str]:
        return (self.scenario_id, self.system, self.total_gpus, self.variant)

    @property
    def label(self) -> str:
        parts = [self.system, f"{self.model_size}/{self.total_gpus}gpu"]
        if self.variant:
            parts.append(self.variant)
        return ":".join(parts)

    def as_dict(self) -> Dict[str, object]:
        payload = {
            "scenario_id": self.scenario_id,
            "system": self.system,
            "model_size": self.model_size,
            "total_gpus": self.total_gpus,
            "variant": self.variant,
            "seed": self.seed,
            "status": self.status,
            "metrics": dict(sorted(self.metrics.items())),
            "error": self.error,
        }
        if self.extras:
            payload["extras"] = dict(sorted(self.extras.items()))
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "UnitResult":
        return cls(
            scenario_id=str(payload["scenario_id"]),
            system=str(payload["system"]),
            model_size=str(payload["model_size"]),
            total_gpus=int(payload["total_gpus"]),
            variant=str(payload.get("variant", "")),
            seed=int(payload.get("seed", 0)),
            status=str(payload.get("status", "ok")),
            metrics=dict(payload.get("metrics", {})),
            error=str(payload.get("error", "")),
            extras=dict(payload.get("extras", {})),
        )


@dataclass
class ScenarioResult:
    """All unit results of one scenario, plus scenario-level aggregates."""

    scenario_id: str
    kind: str
    units: List[UnitResult] = field(default_factory=list)
    summary: Dict[str, object] = field(default_factory=dict)
    #: Harness wall-clock; informational only, excluded from comparisons.
    elapsed_s: float = 0.0

    @property
    def status(self) -> str:
        statuses = {u.status for u in self.units}
        if "failed" in statuses:
            return "failed"
        if "timeout" in statuses:
            return "timeout"
        return "ok"

    def comparable(self) -> Dict[str, object]:
        """The deterministic payload: everything except harness timing."""
        return {
            "scenario_id": self.scenario_id,
            "kind": self.kind,
            "units": [u.as_dict() for u in self.units],
            "summary": dict(sorted(self.summary.items())),
        }

    def as_dict(self) -> Dict[str, object]:
        payload = self.comparable()
        payload["status"] = self.status
        payload["elapsed_s"] = self.elapsed_s
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioResult":
        return cls(
            scenario_id=str(payload["scenario_id"]),
            kind=str(payload["kind"]),
            units=[UnitResult.from_dict(u) for u in payload.get("units", [])],
            summary=dict(payload.get("summary", {})),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
        )


# --------------------------------------------------------------------------- unit executors
def _build_config(unit: ScenarioUnit, config_overrides: Dict[str, object]) -> SystemConfig:
    config = make_system_config(
        unit.system, unit.model_size, unit.total_gpus, task_type=unit.task_type,
        seed=unit.seed, **config_overrides,
    )
    if unit.batch_scale < 1.0:
        config = config.scaled(unit.batch_scale)
    return replace(config, num_iterations=unit.iterations, warmup_iterations=unit.warmup)


def _run_throughput(unit: ScenarioUnit) -> Dict[str, float]:
    from ..experiments.throughput import measure_config

    config = _build_config(unit, overrides_dict(unit.overrides))
    point = measure_config(config)
    metrics: Dict[str, float] = {
        "throughput_tok_s": float(point.throughput),
        "iteration_time_s": float(point.iteration_time),
        "generation_bound": float(point.generation_bound),
    }
    metrics.update({k: float(v) for k, v in point.details.items()})
    return metrics


def _run_convergence(unit: ScenarioUnit) -> Dict[str, float]:
    from ..algorithms.convergence import run_convergence
    from ..algorithms.task import SyntheticReasoningTask
    from ..experiments.figures import figure13_profiles

    profiles = {
        p.name: p
        for p in figure13_profiles(unit.model_size, unit.total_gpus, seed=unit.base_seed)
    }
    profile = profiles[unit.system]
    # Identical task seed across units so the systems race on the same problem.
    task = SyntheticReasoningTask(seed=unit.base_seed)
    curve = run_convergence(
        profile, task=task, num_iterations=unit.iterations, seed=unit.base_seed
    )
    times = curve.times()
    return {
        "final_reward": float(curve.final_reward()),
        "iterations": float(len(curve.points)),
        "simulated_wall_clock_s": float(times[-1]) if times else 0.0,
    }


def _run_fault_injection(unit: ScenarioUnit) -> Dict[str, float]:
    from ..systems import FailureEvent, FailureInjector, FailureKind, LaminarSystem

    params = overrides_dict(unit.overrides)
    failure_kind = str(params.pop("failure_kind", FailureKind.ROLLOUT_MACHINE))
    failure_time = float(params.pop("failure_time", 60.0))
    failure_target = int(params.pop("failure_target", 0))
    reinit = bool(params.pop("reinit_succeeds", False))
    config = _build_config(unit, params)
    injector = FailureInjector()
    injector.add(
        FailureEvent(
            time=failure_time, kind=failure_kind, target=failure_target,
            reinit_succeeds=reinit,
        )
    )
    system = LaminarSystem(config, failure_injector=injector)
    result = system.run()
    records = system.manager.recovery_records
    return {
        "throughput_tok_s": float(result.throughput(unit.warmup)),
        "iterations_completed": float(len(result.iterations)),
        "simulated_wall_clock_s": float(result.wall_clock),
        "failures_handled": float(result.extras.get("failures_handled", 0.0)),
        "recovery_seconds": float(records[0].downtime) if records else 0.0,
        "trajectories_redirected": float(records[0].trajectories_redirected) if records else 0.0,
        "trajectories_lost": float(records[0].trajectories_lost) if records else 0.0,
        "training_continued": float(len(result.iterations) > 0),
    }


#: Chaos counters surfaced by the Laminar runtime only when non-zero; copied
#: into metrics when present so nominal runs keep their metric sets unchanged.
_CHAOS_EXTRAS = (
    "failures_handled",
    "stragglers_handled",
    "straggler_requeues",
    "preemption_warnings",
    "spot_preemptions",
    "network_events",
    "sync_retries",
    "retry_backoff_total",
)


def _rollout_machines(config: SystemConfig) -> int:
    from ..sim.cluster import GPUS_PER_MACHINE

    return max(2, config.rollout_gpus // GPUS_PER_MACHINE)


def _adversarial_system(unit: ScenarioUnit):
    """Laminar system + seeded fault plan for a chaos/straggler unit.

    The schedule derives entirely from ``unit.seed``, so the unit's metrics
    are as deterministic as any nominal unit — the bit-identity contract
    extends to adversarial runs.
    """
    from ..faults import FailurePlan
    from ..systems import LaminarSystem

    params = overrides_dict(unit.overrides)
    if unit.kind == "chaos":
        # Sized so the storm lands inside the measured run (~65 s simulated
        # for the 1/8-scale 7B grid), not after it.
        horizon = float(params.pop("chaos_horizon", 80.0))
        config = _build_config(unit, params)
        plan = FailurePlan.chaos(unit.seed, _rollout_machines(config), horizon)
    elif unit.kind == "straggler":
        persistent = bool(params.pop("persistent", False))
        count = int(params.pop("straggler_count", 2))
        factor_range = (
            float(params.pop("factor_min", 1.5)),
            float(params.pop("factor_max", 4.0)),
        )
        window = (
            float(params.pop("window_start", 10.0)),
            float(params.pop("window_end", 50.0)),
        )
        config = _build_config(unit, params)
        machines = _rollout_machines(config)
        plan = FailurePlan.stragglers(
            unit.seed, machines, window, count=min(count, machines),
            factor_range=factor_range, persistent=persistent,
        )
    else:  # pragma: no cover - guarded by _EXECUTORS / system_for_unit
        raise ValueError(f"not an adversarial kind: {unit.kind!r}")
    return LaminarSystem(config, failure_injector=plan.build_injector()), plan


def _run_adversarial(unit: ScenarioUnit) -> Dict[str, float]:
    system, plan = _adversarial_system(unit)
    result = system.run()
    metrics: Dict[str, float] = {
        "throughput_tok_s": float(result.throughput(unit.warmup)),
        "iterations_completed": float(len(result.iterations)),
        "simulated_wall_clock_s": float(result.wall_clock),
        "events_injected": float(len(plan.events)),
        "training_continued": float(len(result.iterations) > 0),
        "failures_handled": float(result.extras.get("failures_handled", 0.0)),
    }
    for key in _CHAOS_EXTRAS:
        if key in result.extras:
            metrics[key] = float(result.extras[key])
    return metrics


def _run_repack_ablation(unit: ScenarioUnit) -> Dict[str, float]:
    from ..experiments.generation_rate import replica_batch_cycle

    config = _build_config(unit, overrides_dict(unit.overrides))
    cycle = replica_batch_cycle(config, seed=unit.seed)
    without = cycle.rate_without_repack
    return {
        "generation_rate_with_repack": float(cycle.rate_with_repack),
        "generation_rate_without_repack": float(without),
        "throughput_gain": float(cycle.rate_with_repack / without) if without else float("inf"),
        "kvcache_util_with_repack": float(cycle.mean_kvcache_utilization_to_release),
        "kvcache_util_without_repack": float(cycle.mean_kvcache_utilization),
        "replica_cycle_time_s": float(cycle.full_duration),
        "replica_release_time_s": float(cycle.release_time),
    }


def _run_kvcache_lifecycle(unit: ScenarioUnit) -> Dict[str, float]:
    from ..experiments.generation_rate import KVCacheLifecycle, replica_batch_cycle

    config = _build_config(unit, overrides_dict(unit.overrides))
    cycle = replica_batch_cycle(config, seed=unit.seed)
    lifecycle = KVCacheLifecycle.from_profile(cycle)
    return {
        "mean_kvcache_utilization": float(cycle.mean_kvcache_utilization),
        "peak_kvcache_utilization": float(lifecycle.peak_utilization),
        "ramp_seconds": float(lifecycle.ramp_seconds),
        "plateau_fraction": float(lifecycle.plateau_fraction),
        "drain_seconds": float(lifecycle.drain_seconds),
        "cycle_seconds": float(cycle.full_duration),
        "release_fraction_of_cycle": (
            float(cycle.release_time / cycle.full_duration) if cycle.full_duration else 0.0
        ),
        "tokens_generated": float(cycle.total_tokens),
    }


def _run_weight_sync(unit: ScenarioUnit) -> Dict[str, float]:
    from ..systems.broadcast_model import broadcast_latency, rollout_wait_comparison
    from ..sim.cluster import GPUS_PER_MACHINE

    config = _build_config(unit, overrides_dict(unit.overrides))
    model = config.model()
    comparison = rollout_wait_comparison(
        model, config.rollout_gpus, config.rollout_tensor_parallel
    )
    gpu_direct = comparison["gpu_direct"]
    relay_mean = comparison["laminar_mean"]
    machines = max(1, config.rollout_gpus // GPUS_PER_MACHINE)
    return {
        "relay_mean_wait_s": float(relay_mean),
        "relay_best_wait_s": float(comparison["laminar_best"]),
        "gpu_direct_wait_s": float(gpu_direct),
        "relay_speedup_vs_gpu_direct": (
            float(gpu_direct / relay_mean) if relay_mean > 0 else float("inf")
        ),
        "chain_broadcast_s": float(broadcast_latency(model, machines)),
    }


def _run_broadcast_latency(unit: ScenarioUnit) -> Dict[str, float]:
    from ..systems.broadcast_model import (
        broadcast_breakdown,
        figure18_series,
        optimal_chunks,
    )
    from ..sim.network import gpu_direct_global_sync_time

    config = _build_config(unit, overrides_dict(unit.overrides))
    model = config.model()
    series = figure18_series(model)
    max_machines = max(series)
    breakdown = broadcast_breakdown(model, max_machines)
    gpu_direct = gpu_direct_global_sync_time(model.weight_bytes, max_machines)
    at_max = series[max_machines]
    metrics: Dict[str, float] = {
        f"broadcast_s_m{machines}": float(latency)
        for machines, latency in sorted(series.items())
    }
    metrics.update({
        "broadcast_s_at_max_scale": float(at_max),
        "max_scale_machines": float(max_machines),
        "optimal_chunks_at_max_scale": float(optimal_chunks(model, max_machines)),
        "bandwidth_term_s": float(breakdown.bandwidth_term),
        "latency_term_s": float(breakdown.latency_term),
        "pipeline_term_s": float(breakdown.pipeline_term),
        "gpu_direct_s_at_max_scale": float(gpu_direct),
        "speedup_vs_gpu_direct_at_max_scale": (
            float(gpu_direct / at_max) if at_max > 0 else float("inf")
        ),
    })
    return metrics


def system_for_unit(unit: ScenarioUnit):
    """Instantiate the registered system for one grid point.

    Unlike the kind-specific executors above (which may evaluate a unit
    analytically — e.g. the batch-cycle composition for ``laminar``
    throughput), this always builds the full discrete-event system, so a
    traced run produces a complete simulated timeline for every registered
    system.  Fault-injection units keep their failure schedule attached.
    """
    from ..systems import FailureEvent, FailureInjector, FailureKind, LaminarSystem, make_system

    params = overrides_dict(unit.overrides)
    if unit.kind == "fault_injection":
        failure_kind = str(params.pop("failure_kind", FailureKind.ROLLOUT_MACHINE))
        failure_time = float(params.pop("failure_time", 60.0))
        failure_target = int(params.pop("failure_target", 0))
        reinit = bool(params.pop("reinit_succeeds", False))
        config = _build_config(unit, params)
        injector = FailureInjector()
        injector.add(
            FailureEvent(
                time=failure_time, kind=failure_kind, target=failure_target,
                reinit_succeeds=reinit,
            )
        )
        return LaminarSystem(config, failure_injector=injector)
    if unit.kind in ("chaos", "straggler"):
        system, _plan = _adversarial_system(unit)
        return system
    params.pop("staleness_profile", None)  # convergence-only knob
    return make_system(_build_config(unit, params))


_EXECUTORS: Dict[str, Callable[[ScenarioUnit], Dict[str, float]]] = {
    "throughput": _run_throughput,
    "staleness_bound": _run_throughput,
    "convergence": _run_convergence,
    "fault_injection": _run_fault_injection,
    "chaos": _run_adversarial,
    "straggler": _run_adversarial,
    "repack_ablation": _run_repack_ablation,
    "kvcache_lifecycle": _run_kvcache_lifecycle,
    "weight_sync": _run_weight_sync,
    "broadcast_latency": _run_broadcast_latency,
}


class _UnitTimeout(Exception):
    """Raised inside a worker when its unit exceeds the time budget."""


def _raise_unit_timeout(signum, frame):
    raise _UnitTimeout()


def execute_unit(unit: ScenarioUnit, timeout_s: Optional[float] = None) -> UnitResult:
    """Run one grid point; never raises (errors become a failed UnitResult).

    ``timeout_s`` arms a ``SIGALRM``-based budget around the unit (in the
    parallel runner's worker processes the clock therefore starts when the
    unit actually begins executing, not while it waits in the queue).  On
    platforms without ``SIGALRM``, or off the main thread, the budget is not
    enforced.
    """
    result = UnitResult(
        scenario_id=unit.scenario_id,
        system=unit.system,
        model_size=unit.model_size,
        total_gpus=unit.total_gpus,
        variant=unit.variant,
        seed=unit.seed,
    )
    armed = (
        timeout_s is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if armed:
        previous = signal.signal(signal.SIGALRM, _raise_unit_timeout)
    try:
        if armed:
            # setitimer (not alarm): float precision, so sub-second budgets
            # fire instead of silently rounding up to one second.
            signal.setitimer(signal.ITIMER_REAL, max(timeout_s, 1e-6))
        result.metrics = _EXECUTORS[unit.kind](unit)
    except _UnitTimeout:
        result.status = "timeout"
        result.error = f"unit exceeded {timeout_s:g}s budget"
    except Exception:
        result.status = "failed"
        result.error = traceback.format_exc(limit=8)
    finally:
        if armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    return result


def execute_unit_profiled(
    unit: ScenarioUnit, timeout_s: Optional[float] = None, top: int = 25
) -> UnitResult:
    """Run one grid point under cProfile; attaches the top-``top`` cumulative
    report to ``result.profile_text`` (not persisted to artifacts)."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = execute_unit(unit, timeout_s)
    finally:
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    result.profile_text = stream.getvalue()
    rows = sorted(stats.stats.items(), key=lambda kv: kv[1][3], reverse=True)
    result.profile_stats = [
        {
            "function": f"{filename}:{line}:{func}",
            "calls": int(ncalls),
            "tottime_s": float(tottime),
            "cumtime_s": float(cumtime),
        }
        for (filename, line, func), (_cc, ncalls, tottime, cumtime, _callers)
        in rows[:top]
    ]
    return result


# --------------------------------------------------------------------------- aggregation
def summarise(kind: str, units: Sequence[UnitResult]) -> Dict[str, object]:
    """Scenario-level aggregates over the unit grid."""
    metric, _higher = PRIMARY_METRICS[kind]
    ok = [u for u in units if u.status == "ok" and metric in u.metrics]
    summary: Dict[str, object] = {
        "primary_metric": metric,
        "units_total": len(units),
        "units_ok": sum(1 for u in units if u.status == "ok"),
        "primary_by_unit": {u.label: u.metrics[metric] for u in ok},
    }
    if kind in ("throughput", "staleness_bound"):
        by_scale: Dict[int, Dict[str, float]] = {}
        for u in ok:
            by_scale.setdefault(u.total_gpus, {})[u.system] = u.metrics[metric]
        speedups: Dict[str, float] = {}
        winners: Dict[str, str] = {}
        for gpus, tputs in sorted(by_scale.items()):
            winners[str(gpus)] = max(tputs, key=tputs.get)
            if "laminar" in tputs and "verl" in tputs and tputs["verl"] > 0:
                speedups[str(gpus)] = tputs["laminar"] / tputs["verl"]
        if winners:
            summary["best_system_by_scale"] = winners
        if speedups:
            summary["laminar_speedup_vs_verl"] = speedups
    return summary


def _collect(scenarios: Sequence[ScenarioConfig], unit_results: Dict[Tuple, UnitResult],
             elapsed: Dict[str, float]) -> List[ScenarioResult]:
    results: List[ScenarioResult] = []
    for scenario in scenarios:
        # Grid-order regrouping; a system-filtered run executed only a subset
        # of the expansion.
        units = [unit_results[u.key] for u in scenario.expand()
                 if u.key in unit_results]
        results.append(
            ScenarioResult(
                scenario_id=scenario.id,
                kind=scenario.kind,
                units=units,
                summary=summarise(scenario.kind, units),
                elapsed_s=elapsed.get(scenario.id, 0.0),
            )
        )
    return results


def run_scenarios(
    scenarios: Sequence[ScenarioConfig],
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    progress: Optional[Callable[[UnitResult], None]] = None,
    profile_top: Optional[int] = None,
    backend: Optional[object] = None,
    systems: Optional[Iterable[str]] = None,
) -> List[ScenarioResult]:
    """Execute every unit of every scenario and regroup per scenario.

    Units run on an execution backend (:mod:`repro.bench.exec`): with no
    explicit ``backend``, ``jobs == 1`` implies the in-process
    ``SerialBackend`` and ``jobs > 1`` the local ``ProcessPoolBackend`` —
    the historical behaviour.  Passing a backend (e.g. a ``QueueBackend``
    leasing units to a remote worker fleet) overrides ``jobs`` entirely.
    Because every unit derives its seed from its grid index, the regrouped
    results are bit-identical across backends.

    Per-unit budgets are enforced where the unit executes (``SIGALRM`` in
    :func:`execute_unit`, so the clock starts at actual execution, not at
    submission) and over-budget units are reported with status
    ``"timeout"``; the distributed coordinator additionally bounds each
    lease by the same budget.  ``timeout_s`` overrides every scenario's own
    budget.

    ``profile_top`` runs every unit under cProfile (serially, regardless of
    ``jobs``) and attaches a top-N cumulative report to each result's
    ``profile_text`` — the hot-path locator for perf work.

    ``systems`` restricts execution to the named systems' grid points.  The
    filter drops units *after* grid expansion, so the surviving units keep
    their original grid indices — and therefore their seeds and metrics are
    bit-identical to a full-grid run of the same scenario.
    """
    from .exec import default_backend  # late import: exec builds on this module

    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if profile_top is not None and profile_top <= 0:
        raise ValueError("profile_top must be positive")
    if backend is None:
        backend = default_backend(jobs=jobs, profile_top=profile_top)
    elif profile_top is not None:
        raise ValueError("profile_top requires the default (serial) backend")
    keep_systems = set(systems) if systems is not None else None
    all_units: List[ScenarioUnit] = []
    for scenario in scenarios:
        for unit in scenario.expand():
            if keep_systems is None or unit.system in keep_systems:
                all_units.append(unit)

    unit_results: Dict[Tuple, UnitResult] = {}
    elapsed: Dict[str, float] = {}
    start_times: Dict[str, float] = {}

    def note(unit: ScenarioUnit, result: UnitResult) -> None:
        unit_results[unit.key] = result
        now = time.perf_counter()
        sid = unit.scenario_id
        start_times.setdefault(sid, now)
        elapsed[sid] = now - start_times[sid]
        if progress is not None:
            progress(result)

    # Scenario wall-clocks: a concurrent backend has every scenario "started"
    # the moment the batch is submitted, while a serial backend starts a
    # scenario's clock only when its first unit begins executing — identical
    # to the historical runner's accounting.
    serial_like = not getattr(backend, "concurrent", True)
    if serial_like:
        if all_units:
            start_times.setdefault(all_units[0].scenario_id, time.perf_counter())
    else:
        for unit in all_units:
            start_times.setdefault(unit.scenario_id, time.perf_counter())

    completed = 0
    for unit, result in backend.submit(all_units, timeout_s=timeout_s):
        note(unit, result)
        completed += 1
        if serial_like and completed < len(all_units):
            start_times.setdefault(
                all_units[completed].scenario_id, time.perf_counter()
            )
    return _collect(scenarios, unit_results, elapsed)

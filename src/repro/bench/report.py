"""Console presenters for scenario listings, run results and comparisons."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .compare import ComparisonReport
from .registry import ScenarioConfig
from .runner import PRIMARY_METRICS, ScenarioResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain fixed-width table; numbers are right-aligned."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    numeric = [
        all(_is_number(row[i]) for row in rows) if rows else False
        for i in range(len(headers))
    ]

    def line(values: Sequence[str]) -> str:
        out = []
        for i, value in enumerate(values):
            out.append(value.rjust(widths[i]) if numeric[i] else value.ljust(widths[i]))
        return "  ".join(out).rstrip()

    rule = "  ".join("-" * w for w in widths)
    return "\n".join([line(list(headers)), rule] + [line(row) for row in cells])


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)


def render_scenario_list(scenarios: Iterable[ScenarioConfig], verbose: bool = False) -> str:
    rows: List[List[object]] = []
    for s in scenarios:
        rows.append([
            s.id, s.kind, ",".join(s.systems), s.model_size, s.task_type,
            "x".join(str(g) for g in s.gpu_scales), len(s.expand()),
            ",".join(s.tags) or "-",
        ])
    table = format_table(
        ["scenario", "kind", "systems", "model", "task", "gpus", "units", "tags"], rows
    )
    if not verbose:
        return table
    details = [table, ""]
    for s in scenarios:
        details.append(f"{s.id}: {s.description}")
    return "\n".join(details)


def render_system_list(verbose: bool = False) -> str:
    """Registered systems with their declared capabilities
    (``repro-bench list --systems``)."""
    from ..systems.base import available_systems, get_system_class

    rows: List[List[object]] = []
    for name in available_systems():
        caps = get_system_class(name).capabilities
        rows.append([
            name,
            "continuous" if caps.continuous else "batch",
            "yes" if caps.colocated else "no",
            caps.weight_sync,
            caps.staleness,
            "yes" if caps.repack else "no",
            caps.placement_like or name,
            caps.throughput_method,
        ])
    table = format_table(
        ["system", "generation", "colocated", "weight-sync", "staleness",
         "repack", "placements", "throughput-eval"],
        rows,
    )
    if not verbose:
        return table
    details = [table, ""]
    for name in available_systems():
        details.append(f"{name}: {get_system_class(name).capabilities.description}")
    return "\n".join(details)


def render_results(results: Sequence[ScenarioResult]) -> str:
    """Per-unit primary metrics plus scenario-level summaries."""
    blocks: List[str] = []
    for result in results:
        metric, _ = PRIMARY_METRICS[result.kind]
        rows: List[List[object]] = []
        for unit in result.units:
            rows.append([
                unit.label,
                unit.status,
                unit.metrics.get(metric, float("nan")),
                unit.metrics.get("iteration_time_s", float("nan")),
            ])
        header = (
            f"=== {result.scenario_id} [{result.kind}] "
            f"status={result.status} elapsed={result.elapsed_s:.1f}s ==="
        )
        blocks.append(header)
        blocks.append(format_table(["unit", "status", metric, "iteration_time_s"], rows))
        speedups = result.summary.get("laminar_speedup_vs_verl")
        if speedups:
            pretty = ", ".join(f"{g} GPUs: {v:.2f}x" for g, v in sorted(speedups.items()))
            blocks.append(f"laminar speedup vs verl — {pretty}")
        failures = [u for u in result.units if u.status != "ok"]
        for unit in failures:
            first_line = unit.error.strip().splitlines()[-1] if unit.error else ""
            blocks.append(f"!! {unit.label}: {unit.status} {first_line}")
        blocks.append("")
    return "\n".join(blocks).rstrip()


def render_comparison(report: ComparisonReport) -> str:
    rows: List[List[object]] = []
    for v in report.verdicts:
        rows.append([
            v.scenario_id, v.unit_label, v.metric,
            v.baseline if v.baseline is not None else float("nan"),
            v.candidate if v.candidate is not None else float("nan"),
            v.delta,
            v.verdict,
        ])
    table = format_table(
        ["scenario", "unit", "metric", "baseline", "candidate", "delta", "verdict"], rows
    )
    counts = ", ".join(f"{k}: {n}" for k, n in sorted(report.counts().items()))
    outcome = (
        "no regression" if report.passed
        else f"REGRESSION ({len(report.regressions)} failing unit(s))"
    )
    return "\n".join([
        table,
        "",
        f"tolerance: {report.tolerance:.0%} | {counts}",
        f"result: {outcome}",
    ])


def render_status(status: Dict[str, object], address: str = "") -> str:
    """Render one coordinator ``status`` snapshot as fixed-width tables."""
    counters: Dict[str, object] = status.get("counters", {})
    wall: Dict[str, object] = status.get("unit_wall_s", {})
    title = f"coordinator {address}".rstrip()
    lines: List[str] = [
        f"{title} | up {float(status.get('uptime_s', 0.0)):.0f}s | "
        f"queue depth {status.get('queue_depth', 0)} | "
        f"heartbeat {float(status.get('heartbeat_s', 0.0)):.1f}s",
        f"completed {counters.get('units_completed', 0)} | "
        f"requeues {counters.get('requeues', 0)} | "
        f"speculations {counters.get('speculations', 0)} | "
        f"exhausted {counters.get('units_exhausted', 0)}",
    ]
    if wall.get("count"):
        mean_s = wall.get("mean_s")
        last_s = wall.get("last_s")
        lines.append(
            f"unit wall-clock: mean {mean_s:.3f}s over {wall['count']} unit(s)"
            + (f", last {last_s:.3f}s" if last_s is not None else "")
        )
    workers = status.get("workers", [])
    lines.append("")
    if workers:
        rows = [
            [
                w.get("worker_id"), f"{w.get('host')}:{w.get('port')}",
                w.get("jobs"), w.get("leases"), w.get("units_done"),
                float(w.get("heartbeat_age_s", 0.0)),
                w.get("last_wall_s") if w.get("last_wall_s") is not None
                else float("nan"),
                ", ".join(f"{e.get('unit')} ({e.get('running_s', 0.0)}s)"
                          for e in w.get("inflight", [])) or "-",
            ]
            for w in workers
        ]
        lines.append(format_table(
            ["worker", "address", "jobs", "leases", "done", "beat_age_s",
             "last_wall_s", "inflight"],
            rows,
        ))
    else:
        lines.append("no workers connected")
    leases = status.get("leases", [])
    if leases:
        rows = [
            [
                l.get("lease_id"), l.get("scenario_id"), l.get("unit"),
                l.get("worker_id"), l.get("attempt"),
                float(l.get("age_s", 0.0)), float(l.get("deadline_in_s", 0.0)),
                bool(l.get("speculated")),
            ]
            for l in leases
        ]
        lines.append("")
        lines.append(format_table(
            ["lease", "scenario", "unit", "worker", "attempt", "age_s",
             "deadline_in_s", "speculated"],
            rows,
        ))
    batches = status.get("batches", [])
    if batches:
        lines.append("")
        lines.append(format_table(
            ["batch", "units", "completed", "remaining"],
            [[b.get("batch_id"), b.get("units"), b.get("completed"),
              b.get("remaining")] for b in batches],
        ))
    return "\n".join(lines)

"""``repro-bench`` / ``python -m repro.bench`` command-line interface.

Workflow::

    repro-bench list                         # scenario catalog
    repro-bench list --systems               # registered systems + capabilities
    repro-bench run --scenario throughput_smoke --jobs 2 --export BENCH_smoke.json
    repro-bench run --scenario smoke --system laminar --system verl  # grid filter
    repro-bench run --scenario smoke --compare      # regression-gate vs stored artifact
    repro-bench run --scenario smoke --profile 20   # per-unit cProfile hot paths
    repro-bench compare --baseline BENCH_smoke.json # re-run + gate against an artifact
    repro-bench trend                               # sparkline history of BENCH_*.json
    repro-bench trend --bisect SCENARIO METRIC      # largest metric step -> commit
                                                    # range, tightened to one commit
                                                    # by midpoint re-runs in a checkout
    repro-bench analyze trace.json                  # critical-path + utilization
    repro-bench analyze trace.json --diff old.json  # attribution drift vs old trace

Distributed runs (any machine with the repo installed can serve units)::

    repro-bench serve --bind 0.0.0.0:7781           # standalone coordinator
    repro-bench worker --connect HOST:7781 --jobs 4 # worker agent(s)
    repro-bench run --scenario smoke --backend queue --connect HOST:7781
    repro-bench status --connect HOST:7781 --watch  # live fleet telemetry

    # or let `run` embed the coordinator and attach workers to it:
    repro-bench run --scenario smoke --backend queue --bind 0.0.0.0:7781

``run`` persists results to ``BENCH_<scenario>.json`` artifacts (or a single
``--export`` file) and, with ``--compare``, gates the fresh results against
the previously stored baseline before overwriting it.  Exit status is 0 on
success / no regression and 1 otherwise.
"""

from __future__ import annotations

import argparse
import fnmatch
import glob
import json
import os
import socket
import sys
import time
from typing import Dict, List, Optional, Sequence

from ..obs import (
    TraceRecorder,
    analyze_recorder,
    configure_logging,
    diff_analyses,
    get_run_logger,
    load_chrome_trace,
    render_analysis,
    render_diff,
    summarise_trace,
    use_tracer,
    write_chrome_trace,
)
from .compare import DEFAULT_TOLERANCE, compare_runs
from .exec import (
    BACKENDS,
    DEFAULT_PORT as _DEFAULT_PORT,
    WIRE_VERSION,
    Coordinator,
    QueueBackend,
    TracingSerialBackend,
    WireError,
    make_backend,
    parse_hostport,
    recv_message,
    run_worker,
    send_message,
)
from .registry import ScenarioConfig, all_scenarios, get_scenario, select_scenarios
from .report import (
    render_comparison,
    render_results,
    render_scenario_list,
    render_status,
    render_system_list,
)
from .runner import ScenarioResult, UnitResult, run_scenarios
from .store import (
    default_artifact_path,
    load_artifact,
    load_results,
    results_from_artifact,
    save_artifact,
    scenario_ids,
)

#: Status/progress output goes through the structured run log (``repro.*``
#: loggers) so ``--log-json`` machines it and ``--quiet`` silences it;
#: deliverables (tables, comparisons, artifact paths) stay plain ``print``.
_log = get_run_logger("bench.cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Scenario registry + parallel matrix benchmark runner for the "
                    "Laminar reproduction.",
    )
    # Logging flags live on a parent parser attached to every subcommand (not
    # the main parser too — argparse would then reset them to defaults after
    # the subparser runs).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--log-level", choices=("debug", "info", "warning", "error"),
                        default="info",
                        help="run-log verbosity (default: info)")
    common.add_argument("--log-json", action="store_true",
                        help="emit run-log lines as JSON objects (one per line)")
    common.add_argument("-q", "--quiet", action="store_true",
                        help="silence progress/status output (results, "
                             "comparisons and artifact paths still print)")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", parents=[common],
                              help="list registered scenarios (or systems)")
    list_cmd.add_argument("--tag", action="append", default=[],
                          help="only scenarios carrying this tag (repeatable)")
    list_cmd.add_argument("--systems", action="store_true",
                          help="list the registered systems and their "
                               "capabilities instead of the scenarios")
    list_cmd.add_argument("-v", "--verbose", action="store_true",
                          help="include scenario (or system) descriptions")

    run_cmd = sub.add_parser("run", parents=[common],
                             help="run scenarios and persist results")
    run_cmd.add_argument("--scenario", action="append", default=[], metavar="PATTERN",
                         help="scenario id, glob, substring or tag (repeatable; "
                              "default: 'smoke')")
    run_cmd.add_argument("--system", action="append", default=[], metavar="NAME",
                         help="restrict every selected scenario's grid to "
                              "these registered systems (repeatable)")
    run_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="parallel worker processes (default: 1)")
    run_cmd.add_argument("--backend", choices=BACKENDS, default=None,
                         help="execution backend (default: serial for --jobs 1, "
                              "process otherwise); 'queue' distributes units to "
                              "repro-bench worker agents")
    run_cmd.add_argument("--bind", metavar="HOST:PORT", default=None,
                         help="with --backend queue: embed a coordinator bound "
                              f"here (default: 127.0.0.1:{_DEFAULT_PORT})")
    run_cmd.add_argument("--connect", metavar="HOST:PORT", default=None,
                         help="with --backend queue: submit to an already-running "
                              "`repro-bench serve` coordinator instead")
    run_cmd.add_argument("--export", metavar="PATH",
                         help="write all results into one artifact at PATH "
                              "(default: one BENCH_<scenario>.json per scenario)")
    run_cmd.add_argument("--outdir", default=".", metavar="DIR",
                         help="directory for per-scenario artifacts (default: .)")
    run_cmd.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                         help="override every scenario's per-unit timeout")
    run_cmd.add_argument("--compare", action="store_true",
                         help="regression-gate against the stored baseline before "
                              "overwriting it")
    run_cmd.add_argument("--baseline", metavar="PATH",
                         help="baseline artifact for --compare (default: the "
                              "artifact paths the run would write to)")
    run_cmd.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                         help=f"relative regression tolerance (default: {DEFAULT_TOLERANCE})")
    run_cmd.add_argument("--no-save", action="store_true",
                         help="do not persist results")
    run_cmd.add_argument("--profile", nargs="?", const=25, default=None, type=int,
                         metavar="TOP",
                         help="run each unit under cProfile and print the top "
                              "TOP cumulative entries (forces --jobs 1; "
                              "default TOP: 25)")
    run_cmd.add_argument("--budget", type=float, default=None, metavar="SECONDS",
                         help="fail (exit 1) if the whole run's wall-clock "
                              "exceeds SECONDS — the CI engine-speed gate")
    run_cmd.add_argument("--trace", metavar="PATH", default=None,
                         help="attach a trace recorder to every unit (forces "
                              "the serial backend) and write a merged "
                              "Chrome-trace/Perfetto timeline to PATH; results "
                              "are bit-identical to an untraced run")
    run_cmd.add_argument("--profile-json", metavar="PATH", default=None,
                         help="write per-unit cProfile hotspots as machine-"
                              "readable JSON to PATH (implies --profile 25 "
                              "when --profile is absent; never merged into "
                              "BENCH artifacts)")
    run_cmd.add_argument("--derived-metric", action="append", default=[],
                         metavar="NAME", dest="derived_metric",
                         help="with --compare: also gate this trace-analytics "
                              "metric (UnitResult extras, e.g. "
                              "critical_path_gen_share); drift beyond "
                              "tolerance in either direction fails; pairs "
                              "lacking the metric are skipped (repeatable)")

    trace_cmd = sub.add_parser(
        "trace", parents=[common],
        help="run scenario units under a trace recorder and export a "
             "Perfetto-loadable Chrome-trace timeline (simulated time)")
    trace_cmd.add_argument("scenario", metavar="PATTERN",
                           help="scenario id, glob, substring or tag")
    trace_cmd.add_argument("--unit", action="append", type=int, default=[],
                           metavar="K",
                           help="grid index to trace within each selected "
                                "scenario (repeatable; default: 0)")
    trace_cmd.add_argument("--all-units", action="store_true",
                           help="trace every unit of each selected scenario")
    trace_cmd.add_argument("--system", action="append", default=[], metavar="NAME",
                           help="restrict to these registered systems "
                                "(repeatable)")
    trace_cmd.add_argument("-o", "--output", default="trace.json", metavar="PATH",
                           help="output trace file (default: trace.json)")

    cmp_cmd = sub.add_parser("compare", parents=[common],
                             help="gate a run against a baseline artifact")
    cmp_cmd.add_argument("--baseline", required=True, action="append", metavar="PATH",
                         help="baseline artifact(s) (repeatable; merged)")
    cmp_cmd.add_argument("--candidate", action="append", default=[], metavar="PATH",
                         help="candidate artifact(s); omit to re-run the baseline's "
                              "scenarios now")
    cmp_cmd.add_argument("--scenario", action="append", default=[], metavar="PATTERN",
                         help="restrict the comparison to matching scenarios")
    cmp_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="parallel workers when re-running (default: 1)")
    cmp_cmd.add_argument("--backend", choices=BACKENDS, default=None,
                         help="execution backend for the re-run; 'queue' "
                              "distributes units to repro-bench workers")
    cmp_cmd.add_argument("--bind", metavar="HOST:PORT", default=None,
                         help="with --backend queue: embed a coordinator bound "
                              f"here (default: 127.0.0.1:{_DEFAULT_PORT})")
    cmp_cmd.add_argument("--connect", metavar="HOST:PORT", default=None,
                         help="with --backend queue: submit the re-run to an "
                              "already-running `repro-bench serve` coordinator")
    cmp_cmd.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                         help=f"relative regression tolerance (default: {DEFAULT_TOLERANCE})")
    cmp_cmd.add_argument("--derived-metric", action="append", default=[],
                         metavar="NAME", dest="derived_metric",
                         help="also gate this trace-analytics metric "
                              "(UnitResult extras); drift beyond tolerance in "
                              "either direction fails; pairs lacking the "
                              "metric are skipped (repeatable)")

    analyze_cmd = sub.add_parser(
        "analyze", parents=[common],
        help="critical-path attribution, per-track utilization and span-"
             "family breakdown of an exported Chrome-trace file")
    analyze_cmd.add_argument("trace", metavar="TRACE",
                             help="Chrome-trace JSON written by `repro-bench "
                                  "trace` or `run --trace`")
    analyze_cmd.add_argument("--diff", metavar="OTHER", default=None,
                             help="second trace file; report attribution "
                                  "drift TRACE vs OTHER instead of absolutes")
    analyze_cmd.add_argument("--json", metavar="PATH", default=None,
                             dest="json_path",
                             help="also write the full analysis (or diff) as "
                                  "JSON to PATH ('-' for stdout)")
    analyze_cmd.add_argument("--top", type=int, default=8, metavar="N",
                             help="span families to show per unit "
                                  "(default: 8)")

    trend_cmd = sub.add_parser(
        "trend", parents=[common],
        help="per-scenario wall-clock + primary-metric history over "
             "merged artifact runs (sparklines)")
    trend_cmd.add_argument("artifacts", nargs="*", metavar="PATH",
                           help="artifact files (default: BENCH_*.json in the "
                                "current directory)")
    trend_cmd.add_argument("--scenario", action="append", default=[], metavar="PATTERN",
                           help="restrict to matching scenarios")
    trend_cmd.add_argument("--no-git-history", action="store_true",
                           help="only read the files on disk; skip prior "
                                "versions from git history")
    trend_cmd.add_argument("--max-revisions", type=int, default=50, metavar="N",
                           help="cap on historical versions per artifact "
                                "(default: 50)")
    trend_cmd.add_argument("--bisect", nargs=2, metavar=("SCENARIO", "METRIC"),
                           default=None,
                           help="report the largest run-to-run step of METRIC in "
                                "SCENARIO and the commit range that produced it "
                                "(METRIC may be 'elapsed_s' or any unit metric); "
                                "inside a git checkout, unit-metric ranges are "
                                "tightened to a single commit by re-running the "
                                "scenario at range midpoints in temporary "
                                "worktrees (elapsed_s is machine-dependent and "
                                "stays range-only)")

    serve_cmd = sub.add_parser(
        "serve", parents=[common],
        help="standalone coordinator: accepts repro-bench workers and "
             "remote `run --backend queue --connect` drivers")
    serve_cmd.add_argument("--bind", metavar="HOST:PORT",
                           default=f"127.0.0.1:{_DEFAULT_PORT}",
                           help=f"listen address (default: 127.0.0.1:{_DEFAULT_PORT})")
    serve_cmd.add_argument("--max-attempts", type=int, default=3, metavar="N",
                           help="lease grants per unit before giving up on it "
                                "(default: 3)")
    serve_cmd.add_argument("--heartbeat", type=float, default=2.0, metavar="SECONDS",
                           help="worker heartbeat interval (default: 2)")
    serve_cmd.add_argument("--lease-grace", type=float, default=30.0,
                           metavar="SECONDS",
                           help="slack past a unit's budget before its lease is "
                                "requeued (default: 30)")
    serve_cmd.add_argument("--worker-timeout", type=float, default=None,
                           metavar="SECONDS",
                           help="drop a worker whose heartbeats stop for this "
                                "long (default: 5x heartbeat; straggling "
                                "workers are speculatively re-leased at 2.5x "
                                "heartbeat either way)")
    serve_cmd.add_argument("--status-interval", type=float, default=30.0,
                           metavar="SECONDS",
                           help="emit a structured status snapshot on the run "
                                "log this often while the fleet is active "
                                "(0 disables; default: 30)")

    worker_cmd = sub.add_parser(
        "worker", parents=[common],
        help="worker agent: leases units from a coordinator and "
             "executes them in a local sub-pool")
    worker_cmd.add_argument("--connect", required=True, metavar="HOST:PORT",
                            help="coordinator address")
    worker_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="local sub-pool size / concurrent leases "
                                 "(default: 1)")
    worker_cmd.add_argument("--connect-timeout", type=float, default=30.0,
                            metavar="SECONDS",
                            help="keep retrying the initial connection this long "
                                 "(workers may start before the coordinator; "
                                 "default: 30)")
    worker_cmd.add_argument("--max-units", type=int, default=None, metavar="N",
                            help="exit after executing N units (chaos drills "
                                 "and tests)")

    status_cmd = sub.add_parser(
        "status", parents=[common],
        help="live fleet telemetry from a running coordinator (queue depth, "
             "workers, leases, counters)")
    status_cmd.add_argument("--connect", required=True, metavar="HOST:PORT",
                            help="coordinator address")
    status_cmd.add_argument("--watch", nargs="?", const=2.0, default=None,
                            type=float, metavar="SECONDS",
                            help="refresh every SECONDS instead of printing "
                                 "one snapshot (default interval: 2)")
    status_cmd.add_argument("--json", action="store_true", dest="as_json",
                            help="print each snapshot as one JSON object "
                                 "instead of tables")
    return parser


def _progress(unit: UnitResult) -> None:
    marker = "ok" if unit.status == "ok" else unit.status.upper()
    _log.info("unit_done", message=f"  [{marker}] {unit.scenario_id} {unit.label}",
              scenario=unit.scenario_id, unit=unit.label, status=unit.status)


def _baseline_paths(args: argparse.Namespace, scenarios: Sequence[ScenarioConfig]) -> List[str]:
    """Where ``run --compare`` finds its baseline: --baseline, --export, or the
    per-scenario default artifact locations."""
    if args.baseline:
        return [args.baseline]
    if args.export:
        return [args.export]
    return [default_artifact_path(s.id, args.outdir) for s in scenarios]


def _load_baseline(paths: Sequence[str]) -> List[ScenarioResult]:
    results: List[ScenarioResult] = []
    existing = [p for p in paths if os.path.exists(p)]
    if not existing:
        return results
    _, results = load_results(existing)
    return results


def cmd_list(args: argparse.Namespace) -> int:
    if args.systems:
        print(render_system_list(verbose=args.verbose))
        return 0
    scenarios = all_scenarios()
    if args.tag:
        scenarios = [s for s in scenarios if any(t in s.tags for t in args.tag)]
    print(render_scenario_list(scenarios, verbose=args.verbose))
    return 0


def _filter_systems(scenarios: List[ScenarioConfig],
                    systems: Sequence[str]) -> List[ScenarioConfig]:
    """Validate a ``--system`` selection and drop scenarios it cannot touch.

    Unknown names fail with the registered-names list; an empty selection
    overall is an error.  The scenarios themselves are returned unchanged —
    the *unit* filter happens inside :func:`run_scenarios` after grid
    expansion, so surviving units keep their original grid indices (and
    therefore their seeds: a filtered unit's metrics are bit-identical to the
    same unit in a full-grid run).
    """
    from repro.systems.base import SystemRegistryError, get_system_class

    for name in systems:
        try:
            get_system_class(name)
        except SystemRegistryError as exc:
            raise ValueError(str(exc)) from None
    keep = set(systems)
    filtered = [s for s in scenarios if keep.intersection(s.systems)]
    if not filtered:
        raise ValueError(
            "no selected scenario evaluates any of the requested systems: "
            + ", ".join(sorted(keep))
        )
    return filtered


def _run_backend(args: argparse.Namespace):
    """Resolve --backend/--bind/--connect into (backend, owned coordinator)."""
    profile = getattr(args, "profile", None)
    if args.backend is None:
        if args.bind or args.connect:
            raise ValueError("--bind/--connect require --backend queue")
        return None, None  # run_scenarios derives serial/process from --jobs
    if args.backend != "queue":
        if args.bind or args.connect:
            raise ValueError("--bind/--connect require --backend queue")
        return make_backend(args.backend, jobs=args.jobs,
                            profile_top=profile), None
    queue_log = lambda m: _log.info("queue", message=f"  [queue] {m}")  # noqa: E731
    if args.connect:
        if args.bind:
            raise ValueError("--bind and --connect are mutually exclusive")
        return make_backend("queue", connect=args.connect, log=queue_log), None
    # Embedded coordinator: start it before the run so the attach address is
    # printed while workers can still join.
    host, port = parse_hostport(args.bind or f"127.0.0.1:{_DEFAULT_PORT}")
    coordinator = Coordinator(host=host, port=port, log=queue_log).start()
    host, port = coordinator.address
    _log.info("coordinator_embedded",
              message=f"embedded coordinator on {host}:{port}; attach workers "
                      f"with: repro-bench worker --connect {host}:{port}",
              host=host, port=port)
    return QueueBackend(coordinator=coordinator), coordinator


def cmd_run(args: argparse.Namespace) -> int:
    if args.tolerance < 0:
        raise ValueError("--tolerance must be non-negative")
    if args.budget is not None and args.budget <= 0:
        raise ValueError("--budget must be positive")
    patterns = args.scenario or ["smoke"]
    scenarios = select_scenarios(patterns)
    if args.system:
        scenarios = _filter_systems(scenarios, args.system)
        if not args.no_save and not args.export:
            # Never clobber a committed full-grid BENCH_<id>.json with a
            # partial grid — the dropped units would silently stop gating.
            # An explicit --export destination remains allowed.
            _log.info("note", message="note: --system runs a partial grid; "
                      "results are not saved to the default artifact paths "
                      "(use --export to persist)")
            args.no_save = True
    _log.info("run_start",
              message=f"running {len(scenarios)} scenario(s): "
                      + ", ".join(s.id for s in scenarios),
              scenarios=[s.id for s in scenarios])
    if args.profile_json and args.profile is None:
        args.profile = 25
    if args.profile is not None:
        if args.backend not in (None, "serial"):
            raise ValueError("--profile requires the serial backend")
        if args.jobs > 1:
            _log.info("note", message="note: --profile collects in-process; "
                      "running with --jobs 1")
        if not args.no_save:
            # Profiling inflates the harness wall-clock, and elapsed_s is the
            # engine-speed signal `repro-bench trend` tracks — never let a
            # profiled run pollute the persisted artifacts.
            _log.info("note", message="note: --profile implies --no-save "
                      "(profiled elapsed_s is not comparable)")
            args.no_save = True
    recorder: Optional[TraceRecorder] = None
    if args.trace:
        if args.backend not in (None, "serial"):
            raise ValueError("--trace requires the serial backend (the "
                             "recorder lives in the driver process)")
        if args.jobs > 1:
            _log.info("note", message="note: --trace records in-process; "
                      "running with --jobs 1")
        recorder = TraceRecorder()

    baseline: List[ScenarioResult] = []
    if args.compare:
        # Only gate the scenarios this run executes; a baseline artifact may
        # hold results for others (e.g. a shared --export file).
        selected_ids = {s.id for s in scenarios}
        baseline = [r for r in _load_baseline(_baseline_paths(args, scenarios))
                    if r.scenario_id in selected_ids]
        if args.system:
            # A --system-restricted run must only be gated on the units it
            # actually executes.
            keep = set(args.system)
            for result in baseline:
                result.units = [u for u in result.units if u.system in keep]
        if not baseline:
            _log.info("note", message="note: no baseline artifact found; all "
                      "units will report 'no-baseline'")

    backend, coordinator = _run_backend(args)
    if recorder is not None:
        # The tracer only observes, so swapping the serial backend for its
        # tracing twin cannot change any result — the --compare --tolerance 0
        # CI leg exists to prove exactly that.
        backend = TracingSerialBackend(recorder, profile_top=args.profile)
    run_started = time.perf_counter()
    try:
        results = run_scenarios(
            scenarios, jobs=args.jobs, timeout_s=args.timeout, progress=_progress,
            # An explicit backend already embeds the profile setting.
            profile_top=args.profile if backend is None else None,
            backend=backend,
            systems=args.system or None,
        )
    finally:
        if coordinator is not None:
            coordinator.close()
    run_elapsed = time.perf_counter() - run_started
    print()
    print(render_results(results))
    if args.profile is not None:
        for result in results:
            for unit in result.units:
                if unit.profile_text:
                    print(f"\n--- profile: {unit.scenario_id} {unit.label} ---")
                    print(unit.profile_text.rstrip())
    if args.profile_json:
        hotspots: Dict[str, Dict[str, object]] = {}
        for result in results:
            for unit in result.units:
                if unit.profile_stats:
                    hotspots.setdefault(result.scenario_id, {})[unit.label] = (
                        unit.profile_stats
                    )
        with open(args.profile_json, "w", encoding="utf-8") as handle:
            json.dump({"profile": hotspots}, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.profile_json}")
    if recorder is not None:
        payload = write_chrome_trace(recorder, args.trace)
        print()
        print(summarise_trace(recorder))
        print(f"wrote {args.trace} ({len(payload['traceEvents'])} events)")

    exit_code = 0 if all(r.status == "ok" for r in results) else 1
    if args.budget is not None:
        verdict = "within" if run_elapsed <= args.budget else "EXCEEDED"
        print(f"\nwall-clock budget: {run_elapsed:.1f}s of {args.budget:.0f}s "
              f"({verdict})")
        if run_elapsed > args.budget:
            exit_code = 1
    if args.compare:
        report = compare_runs(results, baseline, tolerance=args.tolerance,
                              derived=args.derived_metric)
        print()
        print(render_comparison(report))
        if not report.passed:
            exit_code = 1
            if not args.no_save:
                # Never replace a healthy baseline with regressed results:
                # that would mask the regression on the next gated run.
                print("\nregression gate failed: results NOT persisted")
                return exit_code

    if not args.no_save:
        if args.export:
            save_artifact(results, args.export, configs=scenarios)
            print(f"\nwrote {args.export}")
        else:
            by_id: Dict[str, ScenarioConfig] = {s.id: s for s in scenarios}
            for result in results:
                path = default_artifact_path(result.scenario_id, args.outdir)
                save_artifact([result], path, configs=[by_id[result.scenario_id]])
                print(f"wrote {path}")
    return exit_code


def _unit_trace_path(output: str, scenario_id: str, grid_index: int,
                     unit) -> str:
    """Per-unit trace filename: the ``-o`` stem plus the unit's stable
    identity (scenario, pre-filter grid index, system, variant) so
    ``--all-units`` output never collides and sorts in grid order."""
    base, ext = os.path.splitext(output)
    parts = [base, scenario_id, f"u{grid_index:03d}", unit.system]
    if unit.variant:
        parts.append(unit.variant.replace(os.sep, "-"))
    return ".".join(parts) + (ext or ".json")


def cmd_trace(args: argparse.Namespace) -> int:
    from .runner import system_for_unit

    outdir = os.path.dirname(args.output) or "."
    if not os.path.isdir(outdir):
        # Fail before any unit runs, not after minutes of simulation.
        raise ValueError(f"output directory does not exist: {outdir!r}")
    scenarios = select_scenarios([args.scenario])
    if args.system:
        scenarios = _filter_systems(scenarios, args.system)
    # (scenario, pre-filter grid index, unit): indices stay stable under
    # --system filtering, so filenames are comparable across selections.
    selected: List = []
    for scenario in scenarios:
        units = list(enumerate(scenario.expand()))
        if args.system:
            keep = set(args.system)
            units = [(k, u) for k, u in units if u.system in keep]
        if args.all_units:
            chosen = units
        else:
            wanted = args.unit or [0]
            bad = sorted(k for k in wanted if not 0 <= k < len(units))
            if bad:
                raise ValueError(
                    f"scenario {scenario.id!r} has {len(units)} unit(s); "
                    f"--unit out of range: {', '.join(map(str, bad))}"
                )
            chosen = [units[k] for k in wanted]
        selected.extend((scenario.id, k, u) for k, u in chosen)

    def _trace_one(recorder: TraceRecorder, unit) -> None:
        _log.info("trace_unit",
                  message=f"tracing {unit.scenario_id} {unit.label}",
                  scenario=unit.scenario_id, unit=unit.label)
        recorder.set_group(f"{unit.scenario_id}:{unit.label}")
        with use_tracer(recorder):
            system_for_unit(unit).run()

    if args.all_units:
        # One file per unit, named for the unit — a merged file would make
        # the uploaded artifact a single undifferentiated blob.
        written: List[str] = []
        for scenario_id, grid_index, unit in selected:
            recorder = TraceRecorder()
            _trace_one(recorder, unit)
            path = _unit_trace_path(args.output, scenario_id, grid_index, unit)
            payload = write_chrome_trace(recorder, path)
            print(f"wrote {path} ({len(payload['traceEvents'])} events)")
            written.append(path)
        print(f"\n{len(written)} unit trace(s) written")
        return 0
    recorder = TraceRecorder()
    for _scenario_id, _grid_index, unit in selected:
        _trace_one(recorder, unit)
    payload = write_chrome_trace(recorder, args.output)
    print(summarise_trace(recorder))
    print(f"\nwrote {args.output} ({len(selected)} unit(s), "
          f"{len(payload['traceEvents'])} events)")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    if args.top <= 0:
        raise ValueError("--top must be positive")
    analysis = analyze_recorder(load_chrome_trace(args.trace))
    if not analysis.groups:
        print(f"error: no trace events found in {args.trace}", file=sys.stderr)
        return 1
    if args.diff:
        other = analyze_recorder(load_chrome_trace(args.diff))
        diff = diff_analyses(analysis, other)
        payload: Dict[str, object] = {
            "candidate": args.trace, "baseline": args.diff, "diff": diff,
        }
        print(render_diff(diff))
    else:
        payload = {"trace": args.trace, "analysis": analysis.as_dict()}
        print(render_analysis(analysis, top=args.top))
    if args.json_path:
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json_path == "-":
            print(text)
        else:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"\nwrote {args.json_path}")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    if args.watch is not None and args.watch <= 0:
        raise ValueError("--watch interval must be positive")
    host, port = parse_hostport(args.connect)
    try:
        sock = socket.create_connection((host, port), timeout=10.0)
    except OSError as exc:
        print(f"error: could not reach coordinator at {host}:{port}: {exc}",
              file=sys.stderr)
        return 1
    try:
        sock.settimeout(10.0)
        send_message(sock, {"type": "hello", "role": "status",
                            "wire_version": WIRE_VERSION})
        welcome = recv_message(sock)
        if welcome.get("type") != "welcome":
            print(f"error: coordinator rejected the status connection: "
                  f"{welcome.get('message', welcome.get('type'))}",
                  file=sys.stderr)
            return 1
        while True:
            send_message(sock, {"type": "status"})
            reply = recv_message(sock)
            if reply.get("type") != "status":
                print(f"error: unexpected reply {reply.get('type')!r}",
                      file=sys.stderr)
                return 1
            snapshot = reply.get("status", {})
            if args.as_json:
                print(json.dumps(snapshot, sort_keys=True))
            else:
                print(render_status(snapshot, address=f"{host}:{port}"))
            if args.watch is None:
                break
            print()
            time.sleep(args.watch)
        try:
            send_message(sock, {"type": "goodbye"})
        except OSError:
            pass
        return 0
    except (WireError, OSError) as exc:
        print(f"error: coordinator connection lost: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0
    finally:
        try:
            sock.close()
        except OSError:
            pass


def cmd_compare(args: argparse.Namespace) -> int:
    if args.tolerance < 0:
        raise ValueError("--tolerance must be non-negative")
    _, baseline = load_results(args.baseline)
    if args.scenario:
        keep = {s.id for s in select_scenarios(args.scenario)}
        baseline = [r for r in baseline if r.scenario_id in keep]
        if not baseline:
            print("error: no baseline scenarios match the given patterns",
                  file=sys.stderr)
            return 1

    if args.candidate:
        if args.backend or args.bind or args.connect:
            raise ValueError("--backend/--bind/--connect apply to compare "
                             "re-runs only (omit --candidate)")
        _, candidate = load_results(args.candidate)
        if args.scenario:
            keep = {r.scenario_id for r in baseline}
            candidate = [r for r in candidate if r.scenario_id in keep]
    else:
        configs: List[ScenarioConfig] = []
        for result in baseline:
            try:
                configs.append(get_scenario(result.scenario_id))
            except KeyError:
                _log.info("note", message=f"note: scenario "
                          f"{result.scenario_id!r} is no longer registered; "
                          f"skipping re-run")
        baseline = [r for r in baseline if r.scenario_id in {c.id for c in configs}]
        backend, coordinator = _run_backend(args)
        _log.info("rerun", message=f"re-running {len(configs)} scenario(s) "
                  f"from the baseline artifact", scenarios=len(configs))
        try:
            candidate = run_scenarios(configs, jobs=args.jobs, progress=_progress,
                                      backend=backend)
        finally:
            if coordinator is not None:
                coordinator.close()

    report = compare_runs(candidate, baseline, tolerance=args.tolerance,
                          derived=args.derived_metric)
    print()
    print(render_comparison(report))
    return 0 if report.passed else 1


def cmd_trend(args: argparse.Namespace) -> int:
    from .trend import collect_history, commits_between, largest_step, render_bisect, render_trend

    paths = args.artifacts or sorted(glob.glob("BENCH_*.json"))
    if not paths:
        print("error: no artifacts given and no BENCH_*.json found here",
              file=sys.stderr)
        return 1
    snapshots = collect_history(
        paths,
        include_git_history=not args.no_git_history,
        max_revisions=args.max_revisions,
    )
    if args.scenario:
        # Artifacts outlive the scenario registry: a renamed or retired
        # scenario still has committed history worth plotting.  Resolve each
        # pattern against the registry *and* the ids present in the collected
        # history; a pattern matching neither is noted and skipped rather
        # than failing the whole trend.
        history_ids = {r.scenario_id for s in snapshots for r in s.results}
        keep = set()
        for pattern in args.scenario:
            try:
                matched = {s.id for s in select_scenarios([pattern])}
            except KeyError:
                matched = set()
            matched |= {
                sid for sid in history_ids
                if sid == pattern or fnmatch.fnmatch(sid, pattern) or pattern in sid
            }
            if not matched:
                print(f"note: pattern {pattern!r} matches no registered or "
                      f"historical scenario; skipping")
                continue
            keep |= matched
        for snapshot in snapshots:
            snapshot.results = [r for r in snapshot.results if r.scenario_id in keep]
        snapshots = [s for s in snapshots if s.results]
        if not snapshots and not args.bisect:
            # A scenario with no committed artifact versions yet is a normal
            # state (freshly registered scenario), not a harness failure.
            names = ", ".join(sorted(keep)) if keep else ", ".join(args.scenario)
            print(f"no history: no committed artifact versions yet for {names}")
            return 0
    if args.bisect:
        from .trend import metric_series

        scenario_id, metric = args.bisect
        step = largest_step(snapshots, scenario_id, metric)
        if step is None:
            # A flat, fully-observed history has no step to bisect — that is
            # a healthy outcome, not missing data.
            observations = max(
                (sum(v is not None for v in values)
                 for values in metric_series(snapshots, scenario_id, metric).values()),
                default=0,
            )
            if observations >= 2:
                print(f"bisect: {metric} is flat across {observations} run(s) "
                      f"of {scenario_id}; no step to report")
                return 0
            print(render_bisect(None, []))
            return 1
        commits = (
            commits_between(step.from_rev, step.to_rev)
            if step.from_rev != step.to_rev else []
        )
        outcome = None
        if len(commits) > 1 and step.metric == "elapsed_s":
            # Historical elapsed_s values were recorded on whatever machine
            # produced the artifact; a re-run on this machine cannot be
            # classified against them, so the range is not tightened.
            _log.info("note", message="note: elapsed_s is harness wall-clock "
                      "(machine-dependent); skipping midpoint re-runs, "
                      "reporting the range only")
        if len(commits) > 1 and step.metric != "elapsed_s":
            # Inside a checkout (the range resolved), tighten the range to a
            # single commit by re-running the scenario at range midpoints.
            from .trend import bisect_commits, run_scenario_at_revision

            _log.info("bisect", message=f"bisecting {len(commits)} commits "
                      f"by re-running {scenario_id} at range midpoints...",
                      commits=len(commits), scenario=scenario_id)
            outcome = bisect_commits(
                step, commits,
                lambda revision: run_scenario_at_revision(
                    revision, scenario_id, step.series_label, metric
                ),
            )
        print(render_bisect(step, commits, outcome))
        return 0
    print(render_trend(snapshots))
    return 0 if snapshots else 1


def cmd_serve(args: argparse.Namespace) -> int:
    serve_log = get_run_logger("bench.serve")
    host, port = parse_hostport(args.bind)
    if args.status_interval < 0:
        raise ValueError("--status-interval must be non-negative")
    coordinator = Coordinator(
        host=host, port=port, max_attempts=args.max_attempts,
        heartbeat_s=args.heartbeat, lease_grace_s=args.lease_grace,
        worker_timeout_s=args.worker_timeout,
        status_interval_s=args.status_interval,
        log=lambda message: serve_log.info("coordinator", message=message),
    ).start()
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        serve_log.info("shutdown", message="shutting down")
        return 0
    finally:
        coordinator.close()


def cmd_worker(args: argparse.Namespace) -> int:
    worker_log = get_run_logger("bench.worker")
    if args.jobs <= 0:
        raise ValueError("--jobs must be positive")
    if args.max_units is not None and args.max_units <= 0:
        raise ValueError("--max-units must be positive")
    host, port = parse_hostport(args.connect)
    return run_worker(
        host, port, jobs=args.jobs, connect_timeout_s=args.connect_timeout,
        log=lambda message: worker_log.info("worker", message=message),
        max_units=args.max_units,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(
        level=getattr(args, "log_level", "info"),
        json_lines=getattr(args, "log_json", False),
        quiet=getattr(args, "quiet", False),
    )
    handlers = {"list": cmd_list, "run": cmd_run, "trace": cmd_trace,
                "analyze": cmd_analyze, "compare": cmd_compare,
                "trend": cmd_trend, "serve": cmd_serve,
                "worker": cmd_worker, "status": cmd_status}
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # e.g. `repro-bench list | head`
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except (KeyError, ValueError) as exc:  # bad pattern / config / artifact
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    except OSError as exc:  # unreadable/missing artifact or export path
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

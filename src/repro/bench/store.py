"""Persistence of benchmark results as ``BENCH_<scenario>.json`` artifacts.

An artifact is a single schema-versioned JSON document holding one or more
scenario results together with the scenario configs that produced them and
the git revision of the tree.  Artifacts from successive runs can be merged
(new scenario results replace old ones, everything else is kept), which is
how the repo accumulates its ``BENCH_*.json`` trajectory over time.
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .registry import ScenarioConfig
from .runner import ScenarioResult

#: Bump on any backwards-incompatible artifact layout change.
SCHEMA_VERSION = 1

ARTIFACT_KIND = "repro-bench-results"


def git_revision(cwd: Optional[str] = None) -> str:
    """Current git revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def default_artifact_path(scenario_id: str, outdir: str = ".") -> str:
    """Canonical per-scenario artifact location: ``BENCH_<scenario>.json``."""
    return os.path.join(outdir, f"BENCH_{scenario_id}.json")


def make_artifact(
    results: Sequence[ScenarioResult],
    configs: Sequence[ScenarioConfig] = (),
    git_rev: Optional[str] = None,
) -> Dict[str, object]:
    """Build the artifact document for a set of scenario results."""
    configs_by_id = {c.id: c for c in configs}
    scenarios: Dict[str, Dict[str, object]] = {}
    for result in sorted(results, key=lambda r: r.scenario_id):
        entry: Dict[str, object] = {"result": result.as_dict()}
        config = configs_by_id.get(result.scenario_id)
        if config is not None:
            entry["config"] = config.as_dict()
        scenarios[result.scenario_id] = entry
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": ARTIFACT_KIND,
        "git_rev": git_rev if git_rev is not None else git_revision(),
        "created_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "scenarios": scenarios,
    }


def save_artifact(
    results: Sequence[ScenarioResult],
    path: str,
    configs: Sequence[ScenarioConfig] = (),
    merge_existing: bool = True,
) -> Dict[str, object]:
    """Write (and by default merge into) the artifact at ``path``."""
    artifact = make_artifact(results, configs)
    if merge_existing and os.path.exists(path):
        try:
            artifact = merge_artifacts(load_artifact(path), artifact)
        except ValueError:
            pass  # unreadable/foreign file: overwrite with the fresh artifact
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return artifact


def load_artifact(path: str) -> Dict[str, object]:
    """Read and validate an artifact document."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("kind") != ARTIFACT_KIND:
        raise ValueError(f"{path}: not a {ARTIFACT_KIND} artifact")
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema version {version!r} is not supported "
            f"(expected {SCHEMA_VERSION})"
        )
    if not isinstance(payload.get("scenarios"), dict):
        raise ValueError(f"{path}: malformed artifact (missing scenarios map)")
    return payload


def merge_artifacts(base: Dict[str, object], update: Dict[str, object]) -> Dict[str, object]:
    """Overlay ``update`` onto ``base``: newer scenario entries win."""
    merged = dict(base)
    scenarios = dict(base.get("scenarios", {}))
    scenarios.update(update.get("scenarios", {}))
    merged["scenarios"] = scenarios
    for key in ("schema_version", "kind", "git_rev", "created_at"):
        if key in update:
            merged[key] = update[key]
    return merged


def results_from_artifact(artifact: Dict[str, object]) -> List[ScenarioResult]:
    """Reconstruct the scenario results stored in an artifact."""
    results = []
    for entry in artifact.get("scenarios", {}).values():
        results.append(ScenarioResult.from_dict(entry["result"]))
    return sorted(results, key=lambda r: r.scenario_id)


def scenario_ids(artifact: Dict[str, object]) -> List[str]:
    return sorted(artifact.get("scenarios", {}))


def load_results(paths: Iterable[str]) -> Tuple[Dict[str, object], List[ScenarioResult]]:
    """Load and merge several artifacts into one result set."""
    merged: Optional[Dict[str, object]] = None
    for path in paths:
        artifact = load_artifact(path)
        merged = artifact if merged is None else merge_artifacts(merged, artifact)
    if merged is None:
        raise ValueError("no artifact paths given")
    return merged, results_from_artifact(merged)

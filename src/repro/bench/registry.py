"""Scenario definitions — the canonical list of benchmark evaluations.

A :class:`ScenarioConfig` declaratively describes one benchmark scenario as a
grid of (system × GPU scale × variant) units over the paper's evaluation
settings.  The canonical :data:`SCENARIOS` registry covers throughput sweeps
(Fig 11/12), convergence (Fig 13), fault injection (Fig 15), the adversarial
chaos/straggler drills built on :mod:`repro.faults`, the repack ablation
(Fig 16 / Table 1), the staleness-bound sweep and multi-turn tool workloads.  The matrix runner in :mod:`repro.bench.runner` expands and
executes these grids; scenarios are resolved by exact id, glob pattern,
substring or tag via :func:`select_scenarios`.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from ..experiments.placements import SYSTEMS, placement_for
from ..systems.base import SystemRegistryError, get_system_class

#: Supported scenario kinds (each has an executor in ``repro.bench.runner``).
KINDS = (
    "throughput",
    "convergence",
    "fault_injection",
    "repack_ablation",
    "staleness_bound",
    "kvcache_lifecycle",
    "weight_sync",
    "broadcast_latency",
    "chaos",
    "straggler",
)

#: ``(key, value)`` pairs — hashable stand-in for a dict so the config stays frozen.
Overrides = Tuple[Tuple[str, object], ...]

#: ``(label, overrides)`` pairs; each variant adds one axis point to the grid.
Variants = Tuple[Tuple[str, Overrides], ...]


def overrides_dict(overrides: Overrides) -> Dict[str, object]:
    """Materialise an ``Overrides`` tuple as a plain dict."""
    return dict(overrides)


@dataclass(frozen=True)
class ScenarioConfig:
    """Declarative description of one benchmark scenario grid."""

    id: str
    description: str
    kind: str
    systems: Tuple[str, ...]
    model_size: str = "7B"
    task_type: str = "math"
    #: Total-GPU counts to evaluate (must have Table 2 placements).
    gpu_scales: Tuple[int, ...] = (16,)
    #: Extra grid axis: ``(label, overrides)`` per variant; empty means a
    #: single unlabelled variant.
    variants: Variants = ()
    #: Measured iterations per unit (GRPO iterations for convergence).
    iterations: int = 3
    warmup: int = 1
    #: Batch-scale factor passed to ``SystemConfig.scaled`` (1.0 = paper batch).
    batch_scale: float = 1.0
    seed: int = 0
    #: Per-unit wall-clock budget enforced by the parallel runner.
    timeout_s: float = 300.0
    tags: Tuple[str, ...] = ()
    #: ``SystemConfig`` field overrides applied to every unit of the grid.
    overrides: Overrides = ()

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("scenario id must be non-empty")
        if self.kind not in KINDS:
            raise ValueError(f"unknown scenario kind {self.kind!r}; known: {KINDS}")
        if not self.systems:
            raise ValueError("scenario needs at least one system")
        for system in self.systems:
            try:
                get_system_class(system)
            except SystemRegistryError as exc:
                raise ValueError(str(exc)) from None
        for gpus in self.gpu_scales:
            for system in self.systems:
                try:
                    placement_for(system, self.model_size, gpus)
                except KeyError:
                    raise ValueError(
                        f"scenario {self.id!r}: no Table 2 placement for "
                        f"({system}, {self.model_size}, {gpus})"
                    ) from None
        labels = [label for label, _ in self.variants]
        if len(labels) != len(set(labels)):
            raise ValueError(f"scenario {self.id!r}: duplicate variant labels")
        if not (0.0 < self.batch_scale <= 1.0):
            raise ValueError("batch_scale must be in (0, 1]")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if not (0 <= self.warmup < self.iterations):
            raise ValueError("warmup must be in [0, iterations)")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    # -- grid expansion ---------------------------------------------------------
    def expand(self) -> List["ScenarioUnit"]:
        """Expand the (system × GPU scale × variant) grid into runnable units."""
        variants: Variants = self.variants or (("", ()),)
        units: List[ScenarioUnit] = []
        index = 0
        for system in self.systems:
            for gpus in self.gpu_scales:
                for label, var_overrides in variants:
                    units.append(
                        ScenarioUnit(
                            scenario_id=self.id,
                            kind=self.kind,
                            system=system,
                            model_size=self.model_size,
                            task_type=self.task_type,
                            total_gpus=gpus,
                            variant=label,
                            iterations=self.iterations,
                            warmup=self.warmup,
                            batch_scale=self.batch_scale,
                            seed=self.seed + index,
                            base_seed=self.seed,
                            timeout_s=self.timeout_s,
                            overrides=tuple(self.overrides) + tuple(var_overrides),
                        )
                    )
                    index += 1
        return units

    def as_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "description": self.description,
            "kind": self.kind,
            "systems": list(self.systems),
            "model_size": self.model_size,
            "task_type": self.task_type,
            "gpu_scales": list(self.gpu_scales),
            "variants": [[label, [list(kv) for kv in ov]] for label, ov in self.variants],
            "iterations": self.iterations,
            "warmup": self.warmup,
            "batch_scale": self.batch_scale,
            "seed": self.seed,
            "timeout_s": self.timeout_s,
            "tags": list(self.tags),
            "overrides": [list(kv) for kv in self.overrides],
        }


@dataclass(frozen=True)
class ScenarioUnit:
    """One grid point of a scenario — the unit of (parallel) execution."""

    scenario_id: str
    kind: str
    system: str
    model_size: str
    task_type: str
    total_gpus: int
    variant: str
    iterations: int
    warmup: int
    batch_scale: float
    #: Per-unit seed (scenario seed + grid index) for independent sampling.
    seed: int
    #: Scenario-level seed, for kinds that must share a task across units
    #: (convergence compares systems on the identical synthetic task).
    base_seed: int
    timeout_s: float
    overrides: Overrides = ()

    @property
    def key(self) -> Tuple[str, str, int, str]:
        """Stable identity used to match units across runs in comparisons."""
        return (self.scenario_id, self.system, self.total_gpus, self.variant)

    @property
    def label(self) -> str:
        parts = [self.system, f"{self.model_size}/{self.total_gpus}gpu"]
        if self.variant:
            parts.append(self.variant)
        return ":".join(parts)


# --------------------------------------------------------------------------- catalog
def _staleness_variants(bounds: Iterable[int]) -> Variants:
    return tuple((f"k={k}", (("staleness_bound", k),)) for k in bounds)


SCENARIOS: Tuple[ScenarioConfig, ...] = (
    ScenarioConfig(
        id="throughput_smoke",
        description="Quick throughput sanity check: all five systems, 7B @ 16 GPUs, "
                    "1/8-scale batch. The CI smoke scenario.",
        kind="throughput",
        systems=SYSTEMS,
        model_size="7B",
        gpu_scales=(16,),
        iterations=3,
        warmup=1,
        batch_scale=0.125,
        timeout_s=120.0,
        tags=("smoke", "throughput"),
    ),
    ScenarioConfig(
        id="throughput_7b_math",
        description="Fig 11a throughput sweep (7B, math) at the smallest and "
                    "largest Table 2 scales.",
        kind="throughput",
        systems=SYSTEMS,
        model_size="7B",
        gpu_scales=(16, 256),
        batch_scale=0.25,
        tags=("throughput", "fig11"),
    ),
    ScenarioConfig(
        id="throughput_32b_math",
        description="Fig 11b throughput sweep (32B, math).",
        kind="throughput",
        systems=SYSTEMS,
        model_size="32B",
        gpu_scales=(32, 512),
        batch_scale=0.25,
        tags=("throughput", "fig11"),
    ),
    ScenarioConfig(
        id="throughput_72b_math",
        description="Fig 11c throughput sweep (72B, math).",
        kind="throughput",
        systems=SYSTEMS,
        model_size="72B",
        gpu_scales=(64, 1024),
        batch_scale=0.25,
        timeout_s=600.0,
        tags=("throughput", "fig11"),
    ),
    ScenarioConfig(
        id="throughput_7b_tool",
        description="Fig 12 multi-turn tool-calling throughput sweep (7B); AReaL "
                    "is omitted as in the paper.",
        kind="throughput",
        systems=("verl", "one_step", "stream_gen", "laminar"),
        model_size="7B",
        task_type="tool",
        gpu_scales=(16, 256),
        batch_scale=0.25,
        tags=("throughput", "tool", "fig12"),
    ),
    ScenarioConfig(
        id="tool_long_horizon",
        description="Long-horizon tool workload: 16 environment turns per "
                    "trajectory, Laminar vs stream generation.",
        kind="throughput",
        systems=("stream_gen", "laminar"),
        model_size="7B",
        task_type="tool",
        gpu_scales=(64,),
        batch_scale=0.25,
        overrides=(("max_tool_turns", 16),),
        tags=("tool",),
    ),
    ScenarioConfig(
        id="convergence_7b",
        description="Fig 13 reward-vs-wall-clock convergence of the synthetic "
                    "GRPO task under every system's staleness profile.",
        kind="convergence",
        systems=SYSTEMS,
        model_size="7B",
        gpu_scales=(32,),
        iterations=8,
        warmup=0,
        # ~65 s per unit uncontended; budget sized for jobs-wide CPU contention.
        timeout_s=600.0,
        tags=("convergence", "fig13"),
    ),
    ScenarioConfig(
        id="fault_injection",
        description="Fig 15 fault drill: rollout-machine, relay and trainer "
                    "failures injected mid-run into the Laminar simulator.",
        kind="fault_injection",
        systems=("laminar",),
        model_size="7B",
        gpu_scales=(64,),
        variants=(
            ("rollout_machine", (("failure_kind", "rollout_machine"),)),
            ("relay", (("failure_kind", "relay"),)),
            ("trainer", (("failure_kind", "trainer"),)),
        ),
        iterations=6,
        warmup=1,
        batch_scale=0.125,
        timeout_s=240.0,
        tags=("fault",),
    ),
    ScenarioConfig(
        id="chaos_7b",
        description="Adversarial-infrastructure drill: one seeded composition "
                    "of a correlated rack wave, a spot-preemption wave with "
                    "warning lead, a transient straggler and a degraded-network "
                    "window, injected into the Laminar simulator (7B, 64 GPUs). "
                    "Each variant is an independent storm seed.",
        kind="chaos",
        systems=("laminar",),
        model_size="7B",
        gpu_scales=(64,),
        variants=(
            ("storm_a", ()),
            ("storm_b", ()),
        ),
        iterations=6,
        warmup=1,
        batch_scale=0.125,
        timeout_s=240.0,
        tags=("chaos", "fault"),
    ),
    ScenarioConfig(
        id="straggler_7b",
        description="Straggler drill: seeded transient and persistent slowdown "
                    "multipliers on rollout machines; Laminar preempts and "
                    "requeues severe stragglers, waits out mild ones "
                    "(7B, 64 GPUs).",
        kind="straggler",
        systems=("laminar",),
        model_size="7B",
        gpu_scales=(64,),
        variants=(
            ("transient", ()),
            ("persistent", (("persistent", True),)),
            ("severe", (("factor_min", 2.5), ("factor_max", 4.0))),
        ),
        iterations=6,
        warmup=1,
        batch_scale=0.125,
        timeout_s=240.0,
        tags=("chaos", "fault", "straggler"),
    ),
    ScenarioConfig(
        id="repack_ablation_32b",
        description="Fig 16 / Table 1 repack ablation: per-replica generation "
                    "rate and KVCache utilisation with and without repack (32B).",
        kind="repack_ablation",
        systems=("laminar",),
        model_size="32B",
        gpu_scales=(128,),
        tags=("repack", "fig16", "smoke"),
    ),
    ScenarioConfig(
        id="kvcache_lifecycle_7b",
        description="Fig 9 KVCache lifecycle of one rollout replica over a prompt "
                    "batch: utilisation ramp, plateau near C_max, and drain, plus "
                    "the repack release point.",
        kind="kvcache_lifecycle",
        systems=("laminar",),
        model_size="7B",
        gpu_scales=(64,),
        iterations=1,
        warmup=0,
        timeout_s=120.0,
        tags=("kvcache", "fig9", "smoke"),
    ),
    ScenarioConfig(
        id="weight_sync_32b",
        description="Fig 14 rollout waiting time during weight sync: Laminar's "
                    "relay pull vs the blocking GPU-direct global sync (32B).",
        kind="weight_sync",
        systems=("laminar",),
        model_size="32B",
        gpu_scales=(128, 512),
        iterations=1,
        warmup=0,
        timeout_s=60.0,
        tags=("weight_sync", "fig14", "smoke"),
    ),
    ScenarioConfig(
        id="broadcast_latency",
        description="Fig 18 relay broadcast latency: chain-pipelined weight "
                    "broadcast time vs machine count (32B), with the Appendix D "
                    "term breakdown and the GPU-direct comparison.",
        kind="broadcast_latency",
        systems=("laminar",),
        model_size="32B",
        gpu_scales=(128,),
        iterations=1,
        warmup=0,
        timeout_s=60.0,
        tags=("broadcast", "fig18", "smoke"),
    ),
    ScenarioConfig(
        id="laminar_norepack",
        description="Fig 16 repack ablation as a registry variant: Laminar vs "
                    "the registered laminar_norepack system (32B, 128 GPUs), "
                    "cross-checked against the repack_ablation_32b gain.",
        kind="throughput",
        systems=("laminar", "laminar_norepack"),
        model_size="32B",
        gpu_scales=(128,),
        timeout_s=240.0,
        tags=("repack", "fig16", "variant", "smoke"),
    ),
    ScenarioConfig(
        id="semi_sync",
        description="Bounded-staleness barrier hybrid (registered semi_sync "
                    "system) vs the one-step pipeline: a new Fig 11-style "
                    "series, 7B @ 16 GPUs at 1/8-scale batch.",
        kind="throughput",
        systems=("one_step", "semi_sync"),
        model_size="7B",
        gpu_scales=(16,),
        iterations=3,
        warmup=1,
        batch_scale=0.125,
        timeout_s=240.0,
        tags=("throughput", "variant", "smoke"),
    ),
    ScenarioConfig(
        id="fleet_smoke",
        description="Fleet-engine smoke: the three barrier shapes (plain, "
                    "anchored, streamed) at 7B @ 256 GPUs on the fleet-stepped "
                    "path, 1/8-scale batch.",
        kind="throughput",
        systems=("verl", "one_step", "stream_gen"),
        model_size="7B",
        gpu_scales=(256,),
        iterations=2,
        warmup=1,
        batch_scale=0.125,
        timeout_s=120.0,
        tags=("smoke", "fleet", "throughput"),
    ),
    ScenarioConfig(
        id="datacenter_1k",
        description="Datacenter-scale fleet: 7B @ 4096 GPUs (1792-2048 rollout "
                    "replicas per system) at full paper batch — feasible only "
                    "on the fleet-stepped SoA engine.",
        kind="throughput",
        systems=("verl", "one_step", "stream_gen"),
        model_size="7B",
        gpu_scales=(4096,),
        iterations=3,
        warmup=1,
        batch_scale=1.0,
        timeout_s=600.0,
        tags=("fleet", "datacenter", "throughput"),
    ),
    ScenarioConfig(
        id="datacenter_4k",
        description="Full-fidelity datacenter fleet: 7B @ 8192 GPUs (3584-4096 "
                    "rollout replicas per system) at full paper batch — the "
                    "fused cross-replica stepping path carries every barrier.",
        kind="throughput",
        systems=("verl", "one_step", "stream_gen"),
        model_size="7B",
        gpu_scales=(8192,),
        iterations=3,
        warmup=1,
        batch_scale=1.0,
        timeout_s=1200.0,
        tags=("fleet", "datacenter", "throughput"),
    ),
    ScenarioConfig(
        id="staleness_bound_7b",
        description="Staleness-bound sweep: one-step pipelined baseline with "
                    "k ∈ {1, 2, 4, 8}.",
        kind="staleness_bound",
        systems=("one_step",),
        model_size="7B",
        gpu_scales=(32,),
        variants=_staleness_variants((1, 2, 4, 8)),
        batch_scale=0.25,
        tags=("staleness",),
    ),
)

#: Mutable view of the registry; :func:`register_scenario` extends it.
_REGISTRY: Dict[str, ScenarioConfig] = {s.id: s for s in SCENARIOS}

if len(_REGISTRY) != len(SCENARIOS):  # pragma: no cover - catalog invariant
    raise RuntimeError("duplicate scenario ids in the canonical catalog")


def all_scenarios() -> List[ScenarioConfig]:
    """Every registered scenario, in registration order."""
    return list(_REGISTRY.values())


def get_scenario(scenario_id: str) -> ScenarioConfig:
    """Exact-id lookup."""
    try:
        return _REGISTRY[scenario_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {scenario_id!r}; known: {known}") from None


def register_scenario(scenario: ScenarioConfig, replace_existing: bool = False) -> ScenarioConfig:
    """Add a scenario to the registry (used by downstream suites and tests)."""
    if scenario.id in _REGISTRY and not replace_existing:
        raise ValueError(f"scenario {scenario.id!r} is already registered")
    _REGISTRY[scenario.id] = scenario
    return scenario


def unregister_scenario(scenario_id: str) -> None:
    """Remove a non-canonical scenario (tests); canonical ids are restored."""
    _REGISTRY.pop(scenario_id, None)
    for scenario in SCENARIOS:
        if scenario.id == scenario_id:
            _REGISTRY[scenario_id] = scenario


def select_scenarios(patterns: Iterable[str]) -> List[ScenarioConfig]:
    """Resolve ids/globs/substrings/tags to scenarios, preserving catalog order.

    Each pattern matches, in order of preference: an exact scenario id, a
    glob over ids (``throughput_*``), a tag, or an id substring (so
    ``smoke`` selects every scenario tagged or named smoke).
    """
    selected: Dict[str, ScenarioConfig] = {}
    for pattern in patterns:
        matches: List[ScenarioConfig] = []
        if pattern in _REGISTRY:
            matches = [_REGISTRY[pattern]]
        else:
            matches = [s for s in _REGISTRY.values() if fnmatch.fnmatch(s.id, pattern)]
            if not matches:
                matches = [s for s in _REGISTRY.values() if pattern in s.tags]
            if not matches:
                matches = [s for s in _REGISTRY.values() if pattern in s.id]
        if not matches:
            known = ", ".join(sorted(_REGISTRY))
            raise KeyError(f"pattern {pattern!r} matches no scenario; known: {known}")
        for scenario in matches:
            selected[scenario.id] = scenario
    order = {sid: i for i, sid in enumerate(_REGISTRY)}
    return sorted(selected.values(), key=lambda s: order[s.id])

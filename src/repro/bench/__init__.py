"""Benchmark subsystem: scenario registry, matrix runner, persisted results.

* :mod:`repro.bench.registry` — declarative :class:`ScenarioConfig` grids and
  the canonical :data:`SCENARIOS` catalog.
* :mod:`repro.bench.runner` — parallel matrix execution with per-unit seeds
  and timeouts, returning structured :class:`ScenarioResult`\\ s.
* :mod:`repro.bench.exec` — pluggable execution backends: in-process serial,
  local process pool, and the distributed queue backend (TCP coordinator +
  ``repro-bench worker`` fleet with leases, heartbeats and requeue).
* :mod:`repro.bench.store` — schema-versioned ``BENCH_<scenario>.json``
  artifact persistence with load/merge of prior runs.
* :mod:`repro.bench.compare` — regression gating of a run against a stored
  baseline with configurable tolerance.
* :mod:`repro.bench.report` — console presenters.
* :mod:`repro.bench.trend` — sparkline history of the artifact trajectory
  (current files plus prior versions mined from git).
* :mod:`repro.bench.cli` — the ``repro-bench`` command-line front end.
"""

from .compare import (
    DEFAULT_TOLERANCE,
    ComparisonReport,
    UnitVerdict,
    compare_runs,
)
from .exec import (
    BACKENDS,
    Coordinator,
    ExecBackend,
    ProcessPoolBackend,
    QueueBackend,
    SerialBackend,
    make_backend,
    run_worker,
)
from .registry import (
    KINDS,
    SCENARIOS,
    ScenarioConfig,
    ScenarioUnit,
    all_scenarios,
    get_scenario,
    register_scenario,
    select_scenarios,
    unregister_scenario,
)
from .report import render_comparison, render_results, render_scenario_list
from .runner import (
    PRIMARY_METRICS,
    ScenarioResult,
    UnitResult,
    execute_unit,
    execute_unit_profiled,
    run_scenarios,
)
from .trend import RunSnapshot, collect_history, render_trend, sparkline
from .store import (
    SCHEMA_VERSION,
    default_artifact_path,
    load_artifact,
    load_results,
    make_artifact,
    merge_artifacts,
    results_from_artifact,
    save_artifact,
)

__all__ = [
    "BACKENDS",
    "Coordinator",
    "DEFAULT_TOLERANCE",
    "ComparisonReport",
    "ExecBackend",
    "ProcessPoolBackend",
    "QueueBackend",
    "SerialBackend",
    "UnitVerdict",
    "compare_runs",
    "make_backend",
    "run_worker",
    "KINDS",
    "SCENARIOS",
    "ScenarioConfig",
    "ScenarioUnit",
    "all_scenarios",
    "get_scenario",
    "register_scenario",
    "select_scenarios",
    "unregister_scenario",
    "render_comparison",
    "render_results",
    "render_scenario_list",
    "PRIMARY_METRICS",
    "ScenarioResult",
    "UnitResult",
    "execute_unit",
    "execute_unit_profiled",
    "run_scenarios",
    "RunSnapshot",
    "collect_history",
    "render_trend",
    "sparkline",
    "SCHEMA_VERSION",
    "default_artifact_path",
    "load_artifact",
    "load_results",
    "make_artifact",
    "merge_artifacts",
    "results_from_artifact",
    "save_artifact",
]

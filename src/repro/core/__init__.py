"""Laminar core: relays, repack, staleness, fault tolerance, the full system."""

from .broadcast_model import (
    BroadcastBreakdown,
    broadcast_breakdown,
    broadcast_latency,
    figure18_series,
    optimal_broadcast_latency,
    optimal_chunks,
    rollout_wait_comparison,
    storage_vs_relay,
)
from .fault_tolerance import (
    FailureEvent,
    FailureInjector,
    FailureKind,
    RecoveryModel,
    RecoveryRecord,
)
from .laminar import LaminarSystem
from .relay import PullRecord, RelayService, WeightPublication
from .repack import (
    RepackExecutor,
    RepackPlan,
    RepackStats,
    ReplicaSnapshot,
    best_fit_consolidation,
    group_by_version,
    plan_repack,
)
from .rollout_manager import RolloutManager
from .staleness import StalenessSample, StalenessTracker

__all__ = [
    "BroadcastBreakdown",
    "broadcast_breakdown",
    "broadcast_latency",
    "figure18_series",
    "optimal_broadcast_latency",
    "optimal_chunks",
    "rollout_wait_comparison",
    "storage_vs_relay",
    "FailureEvent",
    "FailureInjector",
    "FailureKind",
    "RecoveryModel",
    "RecoveryRecord",
    "LaminarSystem",
    "PullRecord",
    "RelayService",
    "WeightPublication",
    "RepackExecutor",
    "RepackPlan",
    "RepackStats",
    "ReplicaSnapshot",
    "best_fit_consolidation",
    "group_by_version",
    "plan_repack",
    "RolloutManager",
    "StalenessSample",
    "StalenessTracker",
]

"""Laminar: trajectory-level asynchronous RL post-training (§3-§6).

:class:`LaminarSystem` wires the full architecture together and simulates it
in continuous time:

* every rollout replica generates its own prompt batch independently and, on
  completion (or when released by the repack mechanism), pulls the newest
  weights from its colocated relay worker and starts the next batch;
* completed trajectories flow through the partial-response pool into the
  experience buffer, where the fully decoupled trainer samples global batches
  whenever enough data is available;
* after every model update the trainer pushes the weights to the master relay
  and keeps training, while the chain-pipelined broadcast distributes them in
  the background;
* the rollout manager runs the periodic + post-update repack checks and the
  heartbeat-based failover.

The simulation advances all replicas in lock-step rounds whose length is the
minimum of the repack-check interval and the time to the next trainer/failure
event, so trainer events land at exact timestamps while per-trajectory
completion times stay exact inside each round (see
:class:`repro.rollout.generation.ReplicaGenerationState`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import SystemConfig
from ..data.experience_buffer import ExperienceBuffer
from ..data.partial_response_pool import PartialResponsePool
from ..metrics.results import StageBreakdown, SystemRunResult
from ..metrics.timeline import EventCounterSeries, TimeSeries
from ..rollout.environment import SimulatedEnvironment, TrajectoryFactory
from ..rollout.generation import ReplicaGenerationState, SequenceState
from ..rollout.replica_config import RolloutReplicaConfig
from ..trainer.trainer import Trainer
from ..types import Trajectory
from ..workload.datasets import PromptDataset
from .fault_tolerance import FailureEvent, FailureInjector, FailureKind, RecoveryModel
from .relay import RelayService
from .rollout_manager import RolloutManager
from .staleness import StalenessTracker


@dataclass
class _TrainerState:
    """Trainer-side bookkeeping between simulation rounds."""

    busy: bool = False
    finish_time: float = math.inf
    pending_batch: list = field(default_factory=list)
    last_update_completion: float = 0.0
    iteration_start: float = 0.0
    compute_time: float = 0.0
    #: Earliest time a new iteration may start (checkpoint restore after a
    #: trainer failure while idle).
    ready_time: float = 0.0


@dataclass
class _PendingRecovery:
    time: float
    machine_id: int
    weight_version_hint: int


class LaminarSystem:
    """End-to-end simulator of the Laminar architecture."""

    name = "laminar"

    #: Stop admitting new prompt batches once buffered + in-flight trajectories
    #: exceed this many global batches (keeps the trainer/rollout pipeline in
    #: balance, as the experience-buffer eviction policy would in production).
    run_ahead_batches: float = 3.0
    #: Safety cap on simulated time (seconds).
    max_sim_time: float = 2.0e6

    def __init__(
        self,
        config: SystemConfig,
        failure_injector: Optional[FailureInjector] = None,
        recovery: Optional[RecoveryModel] = None,
    ) -> None:
        if config.rollout_gpus <= 0:
            raise ValueError("Laminar requires a disaggregated placement (rollout_gpus > 0)")
        self.config = config
        self.model = config.model()
        self.task = config.task()
        self.dataset = PromptDataset(self.task, seed=config.seed)
        self.factory = TrajectoryFactory(self.task, seed=config.seed + 1)
        self.environment = SimulatedEnvironment(self.task, seed=config.seed + 2)
        self.rng = np.random.default_rng(config.seed + 3)
        self.trainer = Trainer(
            model=self.model,
            parallel=config.trainer_parallel,
            config=config.trainer_config(),
        )
        self.buffer = ExperienceBuffer(seed=config.seed + 4)
        self.partial_pool = PartialResponsePool()
        self.staleness = StalenessTracker()
        self.replica_config = RolloutReplicaConfig(
            model=self.model,
            tensor_parallel=config.rollout_tensor_parallel,
            gpu=config.gpu,
            max_concurrency=config.max_concurrency_per_replica,
        )
        self.decode_model = self.replica_config.decode_model()
        self.recovery = recovery or RecoveryModel()
        self.failures = failure_injector or FailureInjector(recovery=self.recovery)
        self.failures.recovery = self.recovery

        # Rollout machines and replicas.
        gpus_per_machine = 8
        self.num_rollout_machines = max(1, config.rollout_gpus // gpus_per_machine)
        replicas_per_machine = max(
            1, min(gpus_per_machine, config.rollout_gpus) // config.rollout_tensor_parallel
        )
        self.replicas: Dict[int, ReplicaGenerationState] = {}
        self.replica_machine: Dict[int, int] = {}
        self._next_replica_id = 0
        total_replicas = config.num_rollout_replicas()
        for machine in range(self.num_rollout_machines):
            for _ in range(replicas_per_machine):
                if len(self.replicas) >= total_replicas:
                    break
                self._create_replica(machine_id=machine, weight_version=0)

        self.relay = RelayService(
            model=self.model,
            rollout_machine_ids=list(range(self.num_rollout_machines)),
            rollout_tensor_parallel=config.rollout_tensor_parallel,
        )
        batch_bound = self.decode_model.batch_bound_for_latency_slack(
            context_length=int(self.task.length_dist.mean()) + 512, slack=2.0
        )
        self.manager = RolloutManager(
            c_max=self.replica_config.kvcache_config().c_max,
            batch_bound=max(8, batch_bound),
            repack_interval=config.repack_interval,
            recovery=self.recovery,
        )
        self._trainer_state = _TrainerState()
        self._pending_recoveries: List[_PendingRecovery] = []
        self._per_replica_batch = self._compute_per_replica_batch()
        # Observability.
        self.generation_tokens = EventCounterSeries(name="generation_tokens")
        self.training_tokens = EventCounterSeries(name="training_tokens")
        self.kvcache_series: Dict[int, TimeSeries] = {}
        self._failure_happened = False

    # ------------------------------------------------------------------ setup helpers
    def _create_replica(self, machine_id: int, weight_version: int) -> ReplicaGenerationState:
        replica = ReplicaGenerationState(
            replica_id=self._next_replica_id,
            decode_model=self.decode_model,
            kvcache_config=self.replica_config.kvcache_config(),
            max_concurrency=self.config.max_concurrency_per_replica,
            weight_version=weight_version,
        )
        self.replicas[self._next_replica_id] = replica
        self.replica_machine[self._next_replica_id] = machine_id
        self._next_replica_id += 1
        return replica

    def _compute_per_replica_batch(self) -> int:
        """Per-replica prompt batch: saturate the KVCache with a waiting queue."""
        kv_tokens = self.replica_config.kvcache_config().total_tokens
        mean_reserved = self.task.length_dist.mean() + 512.0
        capacity = max(1, int(kv_tokens / mean_reserved))
        return int(min(self.config.max_concurrency_per_replica, max(capacity * 1.5, 8)))

    def _run_ahead_budget(self) -> int:
        in_flight = sum(r.num_sequences for r in self.replicas.values())
        # The cap must never starve the natural pipeline: every replica can
        # always hold (a bit more than) one of its own prompt batches.
        pipeline_floor = int(1.25 * len(self.replicas) * self._per_replica_batch)
        cap = max(int(self.run_ahead_batches * self.config.global_batch_size), pipeline_floor)
        return max(0, cap - in_flight - len(self.buffer))

    # ------------------------------------------------------------------ replica intake
    def _refill_idle_replicas(self, now: float) -> None:
        for replica in self.replicas.values():
            if not replica.is_idle:
                continue
            budget = self._run_ahead_budget()
            if budget <= 0:
                continue
            count = min(self._per_replica_batch, budget)
            # Pull the newest weights from the colocated relay (any time, PCIe).
            machine_id = self.replica_machine[replica.replica_id]
            pull = self.relay.pull_latency(machine_id, now, replica.replica_id)
            version = pull.version
            replica.set_weight_version(max(replica.weight_version, version))
            replica.inject_stall(pull.wait_time, busy=True)
            prompts = self.dataset.sample_batch(
                max(1, -(-count // self.task.group_size)), self.rng
            )[:count]
            states = self.factory.make(prompts, weight_version=replica.weight_version,
                                       start_time=now)
            replica.add_sequences(states)
            for state in states:
                self.partial_pool.register(state.trajectory, replica.replica_id)

    # ------------------------------------------------------------------ completions
    def _handle_completions(self, completed: List[Trajectory]) -> None:
        actor_version = self.trainer.weight_version
        for trajectory in completed:
            if trajectory.traj_id in self.partial_pool:
                self.partial_pool.complete(trajectory.traj_id)
            reward = self.environment.score(trajectory)
            self.buffer.write(trajectory, reward, actor_version)
            self.staleness.record(trajectory, actor_version)

    # ------------------------------------------------------------------ trainer
    def _trainer_try_start(self, now: float) -> None:
        state = self._trainer_state
        if state.busy:
            return
        if now + 1e-9 < state.ready_time:
            return
        if not self.buffer.can_sample(self.config.global_batch_size):
            return
        batch = self.buffer.sample(self.config.global_batch_size)
        tokens = sum(exp.tokens for exp in batch)
        state.pending_batch = batch
        state.iteration_start = state.last_update_completion
        state.busy = True
        state.compute_time = self.trainer.iteration_compute_time(tokens)
        state.finish_time = now + state.compute_time

    def _trainer_maybe_finish(self, now: float) -> Optional[float]:
        """If the trainer's current iteration ends at ``now``, publish weights.

        Returns the actor stall charged, or ``None`` if nothing finished.
        """
        state = self._trainer_state
        if not state.busy or now + 1e-9 < state.finish_time:
            return None
        publication = self.relay.publish(self.trainer.weight_version + 1, now)
        completion = now + publication.actor_stall
        record = self.trainer.record_iteration(
            state.pending_batch, state.iteration_start, completion
        )
        self.training_tokens.record(completion, record.tokens_trained)
        self._result.iterations.append(record)
        self._result.breakdowns.append(
            StageBreakdown(
                generation_time=max(0.0, record.duration - state.compute_time),
                training_time=state.compute_time,
                weight_sync_time=publication.actor_stall,
            )
        )
        self._result.staleness_samples.extend(exp.staleness for exp in state.pending_batch)
        state.pending_batch = []
        state.busy = False
        state.finish_time = math.inf
        state.last_update_completion = completion
        # §5.1: a repack is also triggered right after each trainer update.
        released, overhead = self.manager.maybe_repack(self.replicas, now, force=True)
        self._charge_repack_overhead(released, overhead)
        return publication.actor_stall

    # ------------------------------------------------------------------ repack / failures
    def _charge_repack_overhead(self, released: List[int], overhead: float) -> None:
        if overhead <= 0:
            return
        destinations = [r for r in self.replicas.values() if not r.is_idle]
        if destinations:
            share = overhead / len(destinations)
            for replica in destinations:
                replica.inject_stall(share, busy=True)

    def _handle_failures(self, now: float) -> None:
        for event in self.failures.due(now):
            if event.kind == FailureKind.ROLLOUT_MACHINE:
                self._failure_happened = True
                failed_ids = [
                    rid for rid, machine in self.replica_machine.items()
                    if machine == event.target and rid in self.replicas
                ]
                self.manager.handle_machine_failure(
                    event, failed_ids, self.replicas, self.partial_pool, now
                )
                for rid in failed_ids:
                    self.replica_machine.pop(rid, None)
                repair = self.relay.fail_machine(event.target)
                # Relay chain rebuild is sub-second and does not block rollouts.
                del repair
                recovery_at = event.time + self.recovery.rollout_recovery_time(event)
                self._pending_recoveries.append(
                    _PendingRecovery(
                        time=recovery_at,
                        machine_id=event.target,
                        weight_version_hint=self.trainer.weight_version,
                    )
                )
            elif event.kind == FailureKind.RELAY:
                self.relay.fail_machine(event.target)
                self._pending_recoveries.append(
                    _PendingRecovery(
                        time=event.time + self.recovery.relay_recovery_time(),
                        machine_id=event.target,
                        weight_version_hint=self.trainer.weight_version,
                    )
                )
            elif event.kind == FailureKind.TRAINER:
                # The trainer restarts from its checkpoint; rollouts keep going.
                # The restore time is charged whether the trainer was mid-
                # iteration (its completion slips) or idle (it may not start a
                # new iteration until the restore finishes).
                state = self._trainer_state
                restore = self.recovery.trainer_recovery_time()
                if state.busy:
                    state.finish_time += restore
                else:
                    state.ready_time = max(state.ready_time, now + restore)

    def _handle_recoveries(self, now: float) -> None:
        ready = [r for r in self._pending_recoveries if r.time <= now]
        self._pending_recoveries = [r for r in self._pending_recoveries if r.time > now]
        for recovery in ready:
            self.relay.recover_machine(recovery.machine_id, now)
            replicas_per_machine = max(
                1, 8 // self.config.rollout_tensor_parallel
            )
            for _ in range(replicas_per_machine):
                if len(self.replicas) >= self.config.num_rollout_replicas():
                    break
                replica = self._create_replica(recovery.machine_id, self.trainer.weight_version)
                replica.clock = now

    # ------------------------------------------------------------------ main loop
    def run(self, num_iterations: Optional[int] = None) -> SystemRunResult:
        num_iterations = num_iterations or self.config.num_iterations
        self._result = self.new_result()
        now = 0.0
        tokens_before = {rid: 0 for rid in self.replicas}
        self._refill_idle_replicas(now)

        while len(self.trainer.iterations) < num_iterations and now < self.max_sim_time:
            self._trainer_try_start(now)
            # Next boundary: repack check, trainer completion, or failure.
            boundaries = [now + self.manager.repack_interval]
            if self._trainer_state.busy:
                boundaries.append(self._trainer_state.finish_time)
            elif self._trainer_state.ready_time > now:
                boundaries.append(self._trainer_state.ready_time)
            next_failure = self.failures.next_failure_time()
            if next_failure is not None:
                boundaries.append(next_failure)
            if self._pending_recoveries:
                boundaries.append(min(r.time for r in self._pending_recoveries))
            target = max(now + 1e-3, min(boundaries))
            dt = target - now

            # Advance every replica by dt (aligned clocks) and collect completions.
            completed: List[Trajectory] = []
            round_tokens = 0
            for rid, replica in list(self.replicas.items()):
                completed.extend(replica.advance(dt))
                generated = replica.stats.tokens_generated
                round_tokens += generated - tokens_before.get(rid, 0)
                tokens_before[rid] = generated
            now = target
            self.generation_tokens.record(now, round_tokens)
            self._handle_completions(completed)

            # Record KVCache utilisation traces (Fig 9) for a few replicas.
            for rid in list(self.replicas)[:4]:
                series = self.kvcache_series.setdefault(rid, TimeSeries(name=f"kvcache_{rid}"))
                series.record(now, self.replicas[rid].kvcache_utilization)

            # Failures / recoveries due at this boundary.
            self._handle_failures(now)
            self._handle_recoveries(now)

            # Trainer completion, if this boundary is its finish time.
            self._trainer_maybe_finish(now)
            self._trainer_try_start(now)

            # Periodic repack check (§5.1).
            released, overhead = self.manager.maybe_repack(self.replicas, now)
            self._charge_repack_overhead(released, overhead)

            # Released or naturally-finished replicas pull weights and refill.
            self._refill_idle_replicas(now)
            tokens_before = {rid: r.stats.tokens_generated for rid, r in self.replicas.items()}

        self._finalise(now)
        return self._result

    # ------------------------------------------------------------------ results
    def new_result(self) -> SystemRunResult:
        return SystemRunResult(
            system=self.name,
            model=self.config.model_size,
            task=self.config.task_type,
            total_gpus=self.config.total_gpus,
            trainer_gpus=self.config.trainer_gpus,
            rollout_gpus=self.config.rollout_gpus,
        )

    def _finalise(self, now: float) -> None:
        result = self._result
        result.wall_clock = now
        stats = self.manager.repack_stats
        result.extras.update(
            {
                "repacks": float(stats.num_repacks),
                "replicas_released": float(stats.replicas_released),
                "trajectories_moved": float(stats.trajectories_moved),
                "repack_overhead_total": stats.total_overhead,
                "repack_overhead_mean": stats.mean_overhead(),
                "relay_mean_pull_wait": self.relay.mean_pull_wait(),
                "relay_best_pull_wait": self.relay.best_pull_wait(),
                "actor_stall_total": self.relay.total_actor_stall(),
                "max_inherent_staleness": float(self.staleness.max_staleness()),
                "mean_inherent_staleness": self.staleness.mean_staleness(),
                "failures_handled": float(len(self.manager.recovery_records)),
            }
        )

    # -- convenience accessors ---------------------------------------------------
    @property
    def result(self) -> SystemRunResult:
        return self._result

    def generation_rate_series(self, bucket: float = 60.0) -> TimeSeries:
        return self.generation_tokens.rate_series(bucket)

    def mean_kvcache_utilization(self) -> float:
        series = list(self.kvcache_series.values())
        if not series:
            return 0.0
        values = [v for s in series for v in s.values]
        return float(np.mean(values)) if values else 0.0

"""Laminar: trajectory-level asynchronous RL post-training (§3-§6).

:class:`LaminarSystem` wires the full architecture together and simulates it
in continuous time on the discrete-event engine (:mod:`repro.sim.engine`),
driven by :class:`repro.runtime.laminar_runtime.LaminarRuntime`:

* every rollout replica runs as its own driver process: it generates its
  prompt batch independently and, on completion (or when released by the
  repack mechanism), pulls the newest weights from its colocated relay worker
  and starts the next batch;
* completed trajectories flow through the partial-response pool into the
  experience buffer, where the fully decoupled trainer process samples global
  batches the instant enough data is available;
* after every model update the trainer pushes the weights to the master relay
  and keeps training, while the chain-pipelined broadcast distributes them in
  the background;
* the rollout-manager process runs the periodic + post-update repack checks,
  and the failure process applies injected outages at their exact timestamps.

Simulated time jumps from event to event (trajectory completions, trainer
updates, repack checks, failures), so trainer/failure/repack timestamps are
exact rather than aligned to simulation rounds.  This module holds the
*policy* — placement, refill, failover, accounting; the DES *mechanism*
(processes, interrupts, barriers) lives in :mod:`repro.runtime`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..config import SystemConfig
from ..data.partial_response_pool import PartialResponsePool
from ..metrics.results import SystemRunResult
from ..metrics.timeline import EventCounterSeries, TimeSeries
from ..rollout.generation import ReplicaGenerationState
from ..runtime.components import CompletionPipeline, RelayWeightSync
from ..runtime.laminar_runtime import LaminarRuntime
from ..runtime.workload import WorkloadBundle
from ..sim.cluster import GPUS_PER_MACHINE
from ..types import Trajectory
from .fault_tolerance import FailureEvent, FailureInjector, RecoveryModel
from .rollout_manager import RolloutManager
from .staleness import StalenessTracker


class LaminarSystem:
    """End-to-end simulator of the Laminar architecture."""

    name = "laminar"

    #: Stop admitting new prompt batches once buffered + in-flight trajectories
    #: exceed this many global batches (keeps the trainer/rollout pipeline in
    #: balance, as the experience-buffer eviction policy would in production).
    run_ahead_batches: float = 3.0
    #: Safety cap on simulated time (seconds).
    max_sim_time: float = 2.0e6

    def __init__(
        self,
        config: SystemConfig,
        failure_injector: Optional[FailureInjector] = None,
        recovery: Optional[RecoveryModel] = None,
    ) -> None:
        if config.rollout_gpus <= 0:
            raise ValueError("Laminar requires a disaggregated placement (rollout_gpus > 0)")
        self.config = config
        self.workload = WorkloadBundle.from_config(config)
        self.model = self.workload.model
        self.task = self.workload.task
        self.dataset = self.workload.dataset
        self.factory = self.workload.factory
        self.environment = self.workload.environment
        self.rng = self.workload.rng
        self.trainer = self.workload.trainer
        self.buffer = self.workload.buffer
        self.replica_config = self.workload.replica_config
        self.decode_model = self.workload.decode_model
        self.partial_pool = PartialResponsePool()
        self.staleness = StalenessTracker()
        self.pipeline = CompletionPipeline(
            environment=self.environment,
            buffer=self.buffer,
            staleness=self.staleness,
            partial_pool=self.partial_pool,
        )
        self.recovery = recovery or RecoveryModel()
        self.failures = failure_injector or FailureInjector(recovery=self.recovery)
        self.failures.recovery = self.recovery

        # Rollout machines and replicas.
        self.num_rollout_machines = max(1, config.rollout_gpus // GPUS_PER_MACHINE)
        self.replicas: Dict[int, ReplicaGenerationState] = {}
        self.replica_machine: Dict[int, int] = {}
        self._next_replica_id = 0
        total_replicas = config.num_rollout_replicas()
        for machine in range(self.num_rollout_machines):
            for _ in range(self._replicas_per_machine()):
                if len(self.replicas) >= total_replicas:
                    break
                self._create_replica(machine_id=machine, weight_version=0)

        self.weight_sync = RelayWeightSync.from_config(config, self.model)
        self.relay = self.weight_sync.relay
        batch_bound = self.decode_model.batch_bound_for_latency_slack(
            context_length=int(self.task.length_dist.mean()) + 512, slack=2.0
        )
        self.manager = RolloutManager(
            c_max=self.replica_config.kvcache_config().c_max,
            batch_bound=max(8, batch_bound),
            repack_interval=config.repack_interval,
            recovery=self.recovery,
        )
        self._per_replica_batch = self._compute_per_replica_batch()
        # Observability.
        self.generation_tokens = EventCounterSeries(name="generation_tokens")
        self.training_tokens = EventCounterSeries(name="training_tokens")
        self.kvcache_series: Dict[int, TimeSeries] = {}
        self._failure_happened = False

    # ------------------------------------------------------------------ setup helpers
    def _replicas_per_machine(self) -> int:
        """Rollout replicas hosted per machine.

        A machine hosts one replica per tensor-parallel group of its GPUs, but
        never more GPUs than the configuration actually allocates to rollouts
        (``rollout_gpus < 8`` means a partially-populated machine).  Initial
        placement and failure recovery must agree on this number — recovery
        used to recompute it without the ``rollout_gpus`` clamp, so a
        recovered machine could come back hosting more replicas than it
        originally did.
        """
        gpus_on_machine = min(GPUS_PER_MACHINE, self.config.rollout_gpus)
        return max(1, gpus_on_machine // self.config.rollout_tensor_parallel)

    def _create_replica(self, machine_id: int, weight_version: int) -> ReplicaGenerationState:
        replica = self.workload.make_replica(self._next_replica_id, weight_version)
        self.replicas[self._next_replica_id] = replica
        self.replica_machine[self._next_replica_id] = machine_id
        self._next_replica_id += 1
        return replica

    def _compute_per_replica_batch(self) -> int:
        """Per-replica prompt batch: saturate the KVCache with a waiting queue."""
        kv_tokens = self.replica_config.kvcache_config().total_tokens
        mean_reserved = self.task.length_dist.mean() + 512.0
        capacity = max(1, int(kv_tokens / mean_reserved))
        return int(min(self.config.max_concurrency_per_replica, max(capacity * 1.5, 8)))

    def _run_ahead_budget(self) -> int:
        in_flight = sum(r.num_sequences for r in self.replicas.values())
        # The cap must never starve the natural pipeline: every replica can
        # always hold (a bit more than) one of its own prompt batches.
        pipeline_floor = int(1.25 * len(self.replicas) * self._per_replica_batch)
        cap = max(int(self.run_ahead_batches * self.config.global_batch_size), pipeline_floor)
        return max(0, cap - in_flight - len(self.buffer))

    # ------------------------------------------------------------------ replica intake
    def _refill_replica(self, replica: ReplicaGenerationState, now: float) -> bool:
        """Give an idle replica a fresh prompt batch with the newest weights.

        Returns False when the run-ahead budget is exhausted (the replica's
        driver then sleeps until the trainer consumes a batch).
        """
        budget = self._run_ahead_budget()
        if budget <= 0:
            return False
        count = min(self._per_replica_batch, budget)
        # Pull the newest weights from the colocated relay (any time, PCIe).
        machine_id = self.replica_machine[replica.replica_id]
        pull = self.weight_sync.pull(machine_id, now, replica.replica_id)
        replica.set_weight_version(max(replica.weight_version, pull.version))
        replica.inject_stall(pull.wait_time, busy=True)
        prompts = self.dataset.sample_batch(
            max(1, -(-count // self.task.group_size)), self.rng
        )[:count]
        states = self.factory.make(prompts, weight_version=replica.weight_version,
                                   start_time=now)
        replica.add_sequences(states)
        for state in states:
            self.partial_pool.register(state.trajectory, replica.replica_id)
        return True

    # ------------------------------------------------------------------ completions
    def _handle_completions(self, completed: List[Trajectory]) -> None:
        self.pipeline.process(completed, self.trainer.weight_version)

    # ------------------------------------------------------------------ repack / failures
    def _charge_repack_overhead(self, released: List[int], overhead: float) -> None:
        if overhead <= 0:
            return
        destinations = [r for r in self.replicas.values() if not r.is_idle]
        if destinations:
            share = overhead / len(destinations)
            for replica in destinations:
                replica.inject_stall(share, busy=True)

    def _apply_rollout_failure(self, event: FailureEvent, now: float) -> float:
        """Fail a rollout machine; returns the time its replacement is up."""
        self._failure_happened = True
        failed_ids = [
            rid for rid, machine in self.replica_machine.items()
            if machine == event.target and rid in self.replicas
        ]
        self.manager.handle_machine_failure(
            event, failed_ids, self.replicas, self.partial_pool, now
        )
        for rid in failed_ids:
            self.replica_machine.pop(rid, None)
        # Relay chain rebuild is sub-second and does not block rollouts.
        self.relay.fail_machine(event.target)
        return event.time + self.recovery.rollout_recovery_time(event)

    def _recover_machine(self, machine_id: int, now: float) -> List[ReplicaGenerationState]:
        """Re-admit a machine: catch up its relay, then re-host its replicas."""
        self.relay.recover_machine(machine_id, now)
        created: List[ReplicaGenerationState] = []
        for _ in range(self._replicas_per_machine()):
            if len(self.replicas) >= self.config.num_rollout_replicas():
                break
            replica = self._create_replica(machine_id, self.trainer.weight_version)
            replica.clock = now
            created.append(replica)
        return created

    # ------------------------------------------------------------------ main loop
    def run(self, num_iterations: Optional[int] = None) -> SystemRunResult:
        """Simulate ``num_iterations`` trainer updates on the event engine."""
        num_iterations = num_iterations or self.config.num_iterations
        self._result = self.new_result()
        runtime = LaminarRuntime(self)
        final_time = runtime.run(num_iterations)
        self._finalise(final_time)
        return self._result

    # ------------------------------------------------------------------ results
    def new_result(self) -> SystemRunResult:
        return SystemRunResult(
            system=self.name,
            model=self.config.model_size,
            task=self.config.task_type,
            total_gpus=self.config.total_gpus,
            trainer_gpus=self.config.trainer_gpus,
            rollout_gpus=self.config.rollout_gpus,
        )

    def record_kvcache_sample(self, replica_id: int, time: float, utilization: float) -> None:
        """KVCache utilisation observer (Fig 9), fed by the manager process."""
        series = self.kvcache_series.setdefault(
            replica_id, TimeSeries(name=f"kvcache_{replica_id}")
        )
        series.record(time, utilization)

    def _finalise(self, now: float) -> None:
        result = self._result
        result.wall_clock = now
        stats = self.manager.repack_stats
        result.extras.update(
            {
                "repacks": float(stats.num_repacks),
                "replicas_released": float(stats.replicas_released),
                "trajectories_moved": float(stats.trajectories_moved),
                "repack_overhead_total": stats.total_overhead,
                "repack_overhead_mean": stats.mean_overhead(),
                "relay_mean_pull_wait": self.relay.mean_pull_wait(),
                "relay_best_pull_wait": self.relay.best_pull_wait(),
                "actor_stall_total": self.relay.total_actor_stall(),
                "max_inherent_staleness": float(self.staleness.max_staleness()),
                "mean_inherent_staleness": self.staleness.mean_staleness(),
                "failures_handled": float(len(self.manager.recovery_records)),
            }
        )

    # -- convenience accessors ---------------------------------------------------
    @property
    def result(self) -> SystemRunResult:
        return self._result

    def generation_rate_series(self, bucket: float = 60.0) -> TimeSeries:
        return self.generation_tokens.rate_series(bucket)

    def mean_kvcache_utilization(self) -> float:
        series = list(self.kvcache_series.values())
        if not series:
            return 0.0
        values = [v for s in series for v in s.values]
        return float(np.mean(values)) if values else 0.0

"""Deterministic tracing primitives: the ``Tracer`` protocol and recorder.

The observability layer's contract is the repo's own determinism contract:
**tracing on is bit-identical to tracing off**.  Tracers therefore only
*observe* — they never consume RNG draws, schedule events or mutate any
simulation state — and every instrumentation site in the hot paths guards on
:attr:`Tracer.enabled` so the default :class:`NullTracer` costs one attribute
load per boundary, not per event.

Times are *simulated* seconds (the event-engine clock).  Spans are recorded
complete — the instrumentation sites all know the exact begin and end of the
phase they describe, so there is no begin/end pairing state to keep and no
ordering ambiguity at equal timestamps.

The active tracer is a module-global stack: :func:`current_tracer` returns
the top, :func:`use_tracer` pushes a recorder for the duration of a ``with``
block, and :class:`~repro.sim.engine.Environment` captures the active tracer
at construction so every process on that environment reports to the same
recorder without threading it through each call signature.

This module imports nothing from the rest of ``repro`` (the event engine
imports *it*, not the other way around).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "CounterSample",
    "Instant",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceRecorder",
    "Tracer",
    "current_tracer",
    "use_tracer",
]


class NullTracer:
    """Zero-overhead default tracer: every hook is a no-op.

    Hot paths guard on :attr:`enabled`, so with the null tracer active the
    per-event cost of the observability layer is a single attribute load at
    phase boundaries and *nothing* inside the vectorized decode loop.
    """

    enabled: bool = False

    def set_group(self, label: str) -> None:
        """Select the group (Perfetto process) subsequent events belong to."""

    def span(self, track: str, name: str, begin: float, end: float,
             args: Optional[Dict[str, object]] = None) -> None:
        """Record one complete span ``[begin, end]`` on ``track``."""

    def instant(self, track: str, name: str, ts: float,
                args: Optional[Dict[str, object]] = None) -> None:
        """Record a point event at ``ts`` on ``track``."""

    def counter(self, track: str, name: str, ts: float, value: float) -> None:
        """Record one counter sample."""

    def counter_batch(self, track: str, name: str,
                      samples: Iterable[Tuple[float, float]]) -> None:
        """Record many ``(ts, value)`` counter samples at once (batched
        flush of the SoA decode loop's sample buffer)."""


#: Alias for type hints: anything satisfying the tracer protocol.
Tracer = NullTracer

#: The process-wide default tracer (shared, stateless, always disabled).
NULL_TRACER = NullTracer()


@dataclass(frozen=True)
class Span:
    """One complete simulated-time span on a track."""

    group: str
    track: str
    name: str
    begin: float
    end: float
    args: Optional[Dict[str, object]] = None

    @property
    def duration(self) -> float:
        return self.end - self.begin


@dataclass(frozen=True)
class Instant:
    """A point event (failure, recovery, staleness report)."""

    group: str
    track: str
    name: str
    ts: float
    args: Optional[Dict[str, object]] = None


@dataclass(frozen=True)
class CounterSample:
    """One sample of a monotone or gauge counter (tokens, KV utilisation)."""

    group: str
    track: str
    name: str
    ts: float
    value: float


class TraceRecorder(NullTracer):
    """In-memory tracer: collects spans, instants and counter samples.

    Events carry a *group* label (one group per benchmark unit / run) so a
    single recorder can hold the traces of many units; the exporter maps
    groups to Perfetto processes and tracks to threads.
    """

    enabled = True

    def __init__(self, group: str = "run") -> None:
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.counters: List[CounterSample] = []
        self._group = str(group)

    # -- recording ----------------------------------------------------------
    @property
    def group(self) -> str:
        return self._group

    def set_group(self, label: str) -> None:
        self._group = str(label)

    def span(self, track: str, name: str, begin: float, end: float,
             args: Optional[Dict[str, object]] = None) -> None:
        if end < begin:
            raise ValueError(
                f"span {name!r} on {track!r} ends before it begins "
                f"({end} < {begin})"
            )
        self.spans.append(
            Span(self._group, track, name, float(begin), float(end),
                 dict(args) if args else None)
        )

    def instant(self, track: str, name: str, ts: float,
                args: Optional[Dict[str, object]] = None) -> None:
        self.instants.append(
            Instant(self._group, track, name, float(ts),
                    dict(args) if args else None)
        )

    def counter(self, track: str, name: str, ts: float, value: float) -> None:
        self.counters.append(
            CounterSample(self._group, track, name, float(ts), float(value))
        )

    def counter_batch(self, track: str, name: str,
                      samples: Iterable[Tuple[float, float]]) -> None:
        group = self._group
        self.counters.extend(
            CounterSample(group, track, name, float(ts), float(value))
            for ts, value in samples
        )

    # -- introspection ------------------------------------------------------
    def num_events(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)

    def groups(self) -> List[str]:
        """Group labels in first-appearance order."""
        seen: Dict[str, None] = {}
        for event in (*self.spans, *self.instants, *self.counters):
            seen.setdefault(event.group, None)
        return list(seen)

    def tracks(self, group: Optional[str] = None) -> List[Tuple[str, str]]:
        """``(group, track)`` pairs in first-appearance order."""
        seen: Dict[Tuple[str, str], None] = {}
        for event in (*self.spans, *self.instants, *self.counters):
            if group is None or event.group == group:
                seen.setdefault((event.group, event.track), None)
        return list(seen)

    def span_names(self, group: Optional[str] = None) -> List[str]:
        """Distinct span names (first-appearance order), optionally per group."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            if group is None or span.group == group:
                seen.setdefault(span.name, None)
        return list(seen)

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self.counters.clear()


# --------------------------------------------------------------------------- active tracer
_ACTIVE: List[NullTracer] = [NULL_TRACER]


def current_tracer() -> NullTracer:
    """The tracer new :class:`~repro.sim.engine.Environment` objects attach."""
    return _ACTIVE[-1]


@contextmanager
def use_tracer(tracer: NullTracer) -> Iterator[NullTracer]:
    """Scope ``tracer`` as the active tracer for the ``with`` block."""
    _ACTIVE.append(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.pop()

"""``repro.obs``: deterministic trace + telemetry layer.

Two complementary surfaces:

* **Simulated time** (:mod:`.trace`, :mod:`.export`) — a :class:`Tracer`
  protocol with a zero-overhead :class:`NullTracer` default, a
  :class:`TraceRecorder` collecting spans / instants / counter samples from
  the instrumented engine, harness and systems, and a Chrome-trace-event
  exporter producing Perfetto-loadable ``trace.json`` timelines plus text
  summaries.  Contract: tracing on is **bit-identical** to tracing off.

* **Wall-clock time** (:mod:`.runlog`) — structured :mod:`logging`-based run
  logs for the CLI and the distributed coordinator/worker fleet, with
  human-readable or JSON-lines console output.

* **Analysis** (:mod:`.analysis`) — critical-path attribution over recorded
  timelines: per-iteration phase attribution, per-track busy/idle/overlap
  tables, top-k span-family ranking and the curated derived-metric subset
  (``gen_bubble_frac``, ``sync_frac``, ``critical_path_*_share``) the bench
  layer attaches to traced results.

This package deliberately imports nothing from the rest of ``repro`` so the
event engine can attach the active tracer without an import cycle.
"""

from .analysis import (
    DERIVED_METRIC_KEYS,
    GroupAnalysis,
    TraceAnalysis,
    analyze_group,
    analyze_recorder,
    derived_metrics,
    diff_analyses,
    load_chrome_trace,
    render_analysis,
    render_diff,
)
from .export import chrome_trace, summarise_trace, write_chrome_trace
from .runlog import RunLogger, configure_logging, get_run_logger
from .trace import (
    NULL_TRACER,
    CounterSample,
    Instant,
    NullTracer,
    Span,
    TraceRecorder,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "CounterSample",
    "DERIVED_METRIC_KEYS",
    "GroupAnalysis",
    "Instant",
    "NULL_TRACER",
    "NullTracer",
    "RunLogger",
    "Span",
    "TraceAnalysis",
    "TraceRecorder",
    "Tracer",
    "analyze_group",
    "analyze_recorder",
    "chrome_trace",
    "configure_logging",
    "current_tracer",
    "derived_metrics",
    "diff_analyses",
    "get_run_logger",
    "load_chrome_trace",
    "render_analysis",
    "render_diff",
    "summarise_trace",
    "use_tracer",
    "write_chrome_trace",
]

"""Structured run logging for the real-time side (CLI, coordinator, workers).

Simulated time is traced (:mod:`repro.obs.trace`); *wall-clock* events —
scenario progress, worker joins, lease grants, requeues — are logged through
the stdlib :mod:`logging` machinery under the ``repro`` logger namespace.

Every record carries an ``event`` slug plus structured ``fields``.  The
default console formatter renders a human-readable line (so ``repro-bench``
output looks exactly like its historical prints), while ``--log-json``
switches the handler to one JSON object per line for machine consumption.
``configure_logging`` is idempotent: it replaces handlers it installed
earlier, so repeated CLI invocations in one process (tests) never stack
duplicate handlers.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Dict, Optional, TextIO

__all__ = ["RunLogger", "configure_logging", "get_run_logger"]

ROOT = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: level, logger, event, message, fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, object] = {
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": getattr(record, "event", None) or record.getMessage(),
            "message": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload["fields"] = fields
        return json.dumps(payload, sort_keys=True, default=str)


class HumanFormatter(logging.Formatter):
    """Message-only console rendering (call sites craft the full line)."""

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        if record.levelno >= logging.WARNING:
            return f"{record.levelname.lower()}: {message}"
        return message


class _StdoutHandler(logging.StreamHandler):
    """StreamHandler that resolves ``sys.stdout`` at *emit* time.

    Binding the stream at construction goes stale when stdout is swapped
    (pytest's capsys, redirects); resolving per record always writes to the
    current stdout.
    """

    @property
    def stream(self) -> TextIO:
        return sys.stdout

    @stream.setter
    def stream(self, value: TextIO) -> None:
        pass  # always dynamic


class RunLogger:
    """Thin wrapper pairing an ``event`` slug with key=value fields."""

    def __init__(self, name: str) -> None:
        self.logger = logging.getLogger(name)

    def debug(self, event: str, message: Optional[str] = None, **fields) -> None:
        self._log(logging.DEBUG, event, message, fields)

    def info(self, event: str, message: Optional[str] = None, **fields) -> None:
        self._log(logging.INFO, event, message, fields)

    def warning(self, event: str, message: Optional[str] = None, **fields) -> None:
        self._log(logging.WARNING, event, message, fields)

    def error(self, event: str, message: Optional[str] = None, **fields) -> None:
        self._log(logging.ERROR, event, message, fields)

    def _log(self, level: int, event: str, message: Optional[str],
             fields: Dict[str, object]) -> None:
        if not self.logger.isEnabledFor(level):
            return
        if message is None:
            rendered = " ".join(f"{k}={v}" for k, v in fields.items())
            message = f"{event} {rendered}".strip()
        self.logger.log(level, message, extra={"event": event, "fields": fields})


def get_run_logger(name: str) -> RunLogger:
    """A :class:`RunLogger` under the ``repro`` namespace."""
    if name != ROOT and not name.startswith(ROOT + "."):
        name = f"{ROOT}.{name}"
    return RunLogger(name)


def configure_logging(
    level: str = "info",
    json_lines: bool = False,
    quiet: bool = False,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """Install (or replace) the console handler on the ``repro`` logger.

    ``quiet`` raises the console threshold to WARNING — progress and status
    records stay recorded (other handlers still see them) but the console
    only shows problems.  ``stream`` pins the handler to a specific stream
    (tests); the default follows ``sys.stdout`` dynamically.
    """
    logger = logging.getLogger(ROOT)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_runlog", False):
            logger.removeHandler(handler)
    handler: logging.Handler
    handler = _StdoutHandler() if stream is None else logging.StreamHandler(stream)
    handler._repro_runlog = True  # type: ignore[attr-defined]
    handler.setFormatter(JsonLineFormatter() if json_lines else HumanFormatter())
    if quiet:
        handler.setLevel(logging.WARNING)
    logger.addHandler(handler)
    logger.setLevel(_LEVELS.get(level, logging.INFO))
    logger.propagate = False
    return logger

"""Chrome-trace-event export and text summaries for :class:`TraceRecorder`.

The exporter emits the JSON object format of the Chrome Trace Event spec —
the dialect `Perfetto <https://ui.perfetto.dev>`_ loads directly: recorder
*groups* become processes (``pid`` + ``process_name`` metadata), *tracks*
become named threads (``tid`` + ``thread_name`` metadata), spans are complete
``"X"`` events, instants are ``"i"`` events and counter samples are ``"C"``
events.  Timestamps are simulated seconds scaled to microseconds, so one
trace-viewer millisecond is one simulated millisecond.

Complete events (rather than ``B``/``E`` pairs) are deliberate: the
instrumentation sites know both endpoints of every phase, and complete events
carry no begin/end matching state — ties at equal timestamps cannot
mis-nest.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .trace import TraceRecorder

__all__ = ["chrome_trace", "summarise_trace", "write_chrome_trace"]

#: Simulated seconds -> trace microseconds.
_TIME_SCALE = 1e6

#: Well-known tracks first, then replicas, machines, everything else.
_TRACK_PRIORITY = {"trainer": 0, "sync": 1, "manager": 2, "rollout": 3}


def _track_sort_index(track: str, fallback: int) -> int:
    if track in _TRACK_PRIORITY:
        return _TRACK_PRIORITY[track]
    prefix, _, suffix = track.rpartition("-")
    if suffix.isdigit():
        base = {"replica": 100, "machine": 100000}.get(prefix, 200000)
        return base + int(suffix)
    return 300000 + fallback


def chrome_trace(recorder: TraceRecorder) -> Dict[str, object]:
    """Render the recorder as a Chrome-trace JSON object (Perfetto-loadable)."""
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    events: List[Dict[str, object]] = []

    def pid_of(group: str) -> int:
        pid = pids.get(group)
        if pid is None:
            pid = pids[group] = len(pids) + 1
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": group},
            })
        return pid

    def tid_of(group: str, track: str) -> int:
        key = (group, track)
        tid = tids.get(key)
        if tid is None:
            pid = pid_of(group)
            tid = tids[key] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": track},
            })
            events.append({
                "name": "thread_sort_index", "ph": "M", "pid": pid, "tid": tid,
                "args": {"sort_index": _track_sort_index(track, tid)},
            })
        return tid

    for span in recorder.spans:
        event: Dict[str, object] = {
            "name": span.name, "cat": "sim", "ph": "X",
            "ts": span.begin * _TIME_SCALE,
            "dur": (span.end - span.begin) * _TIME_SCALE,
            "pid": pid_of(span.group), "tid": tid_of(span.group, span.track),
        }
        if span.args:
            event["args"] = span.args
        events.append(event)
    for instant in recorder.instants:
        event = {
            "name": instant.name, "cat": "sim", "ph": "i", "s": "t",
            "ts": instant.ts * _TIME_SCALE,
            "pid": pid_of(instant.group),
            "tid": tid_of(instant.group, instant.track),
        }
        if instant.args:
            event["args"] = instant.args
        events.append(event)
    for sample in recorder.counters:
        events.append({
            "name": f"{sample.track}:{sample.name}", "cat": "sim", "ph": "C",
            "ts": sample.ts * _TIME_SCALE,
            "pid": pid_of(sample.group), "tid": 0,
            "args": {"value": sample.value},
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "clock": "simulated seconds (1 trace ms = 1 simulated ms)",
            "groups": len(pids),
            "tracks": len(tids),
        },
    }


def _json_default(value: object) -> object:
    # Span args flow straight from instrumentation sites, where token sums
    # and staleness values are often numpy scalars; ``.item()`` unwraps them
    # to native Python numbers.
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def write_chrome_trace(recorder: TraceRecorder, path: str) -> Dict[str, object]:
    """Write the Chrome-trace JSON to ``path``; returns the payload."""
    payload = chrome_trace(recorder)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=None, separators=(",", ":"),
                  default=_json_default)
        handle.write("\n")
    return payload


# --------------------------------------------------------------------------- summary
def _busy_time(intervals: List[Tuple[float, float]]) -> float:
    """Length of the union of the (possibly overlapping) span intervals."""
    busy = 0.0
    end = float("-inf")
    for begin, stop in sorted(intervals):
        if stop > end:
            busy += stop - max(begin, end)
            end = stop
    return busy


def summarise_trace(recorder: TraceRecorder) -> str:
    """Per-track text summary: span counts and busy/idle simulated time.

    "Busy" is the union of a track's span intervals; "idle" is the rest of
    the group's overall trace window — the text equivalent of eyeballing the
    Perfetto timeline for bubbles.
    """
    if recorder.num_events() == 0:
        return "trace summary: empty"
    lines = [
        f"trace summary: {len(recorder.groups())} group(s), "
        f"{len(recorder.tracks())} track(s), {recorder.num_events()} event(s)"
    ]
    for group in recorder.groups():
        stamps = [t for s in recorder.spans if s.group == group
                  for t in (s.begin, s.end)]
        stamps += [i.ts for i in recorder.instants if i.group == group]
        stamps += [c.ts for c in recorder.counters if c.group == group]
        window = (max(stamps) - min(stamps)) if stamps else 0.0
        lines.append(f"[{group}] window={window:.3f}s")
        for _, track in recorder.tracks(group):
            spans = [s for s in recorder.spans
                     if s.group == group and s.track == track]
            instants = [i for i in recorder.instants
                        if i.group == group and i.track == track]
            busy = _busy_time([(s.begin, s.end) for s in spans])
            parts = [f"  {track:<16} spans={len(spans):<4}"]
            if spans:
                parts.append(f"busy={busy:.3f}s idle={max(0.0, window - busy):.3f}s")
            if instants:
                names: Dict[str, int] = {}
                for instant in instants:
                    names[instant.name] = names.get(instant.name, 0) + 1
                rendered = ", ".join(f"{k}×{v}" for k, v in names.items())
                parts.append(f"instants: {rendered}")
            lines.append(" ".join(parts))
        counters: Dict[str, int] = {}
        for sample in recorder.counters:
            if sample.group == group:
                key = f"{sample.track}:{sample.name}"
                counters[key] = counters.get(key, 0) + 1
        if counters:
            lines.append(f"  counters: {len(counters)} series, "
                         f"{sum(counters.values())} sample(s)")
    return "\n".join(lines)

"""Trace analytics: critical-path attribution over recorded span timelines.

PR 6 made the simulator's phase structure *recordable* (spans, instants,
counters); this module makes it *interpretable*.  Given a
:class:`~repro.obs.trace.TraceRecorder` — or a Chrome-trace JSON file written
by :func:`~repro.obs.export.write_chrome_trace`, reloaded via
:func:`load_chrome_trace` — it computes, per recorder group:

* **Per-iteration critical paths** — each ``iteration`` span is swept as a
  window and every elementary time segment inside it is attributed to the
  highest-priority *phase family* active there (``training`` >
  ``weight_sync`` > ``repack`` > ``recovery`` > ``generation``; uncovered
  time is ``other``).  The priority order encodes the systems' dependency
  structure: when the trainer computes or syncs weights, that work bounds the
  iteration regardless of concurrent generation; only time where nothing on
  the trainer-side path runs is generation-bound (the Fig. 10 "GPU bubble").
  Shares sum to exactly 1.0 per window, so they aggregate into an exhaustive
  end-to-end attribution.
* **Per-track busy/idle/overlap tables** — the union of each track's span
  intervals against the group window, plus how much of that busy time
  overlaps other tracks (pipelining visible as data, not just pixels).
* **Top-k span-family attribution** — total and union ("busy") time per span
  name, ranked.
* **Derived metrics** (:func:`derived_metrics`) — the curated scalar subset
  (``gen_bubble_frac``, ``sync_frac``, ``critical_path_*_share``) that the
  bench layer attaches to traced :class:`~repro.bench.runner.UnitResult`
  extras so ``trend`` can mine them and ``compare`` can gate them.

Everything here *reads* recorded data — analysis can never perturb a run, so
the bit-identity contract (tracing on == tracing off) extends to analytics
for free.  Like the rest of ``repro.obs``, this module imports nothing from
the rest of ``repro``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .export import chrome_trace  # noqa: F401  (re-export convenience for tests)
from .trace import TraceRecorder

__all__ = [
    "DERIVED_METRIC_KEYS",
    "PHASE_PRIORITY",
    "SPAN_FAMILIES",
    "FamilyUsage",
    "GroupAnalysis",
    "IterationPath",
    "TraceAnalysis",
    "TrackUsage",
    "analyze_group",
    "analyze_recorder",
    "derived_metrics",
    "diff_analyses",
    "load_chrome_trace",
    "render_analysis",
    "render_diff",
]

#: Simulated seconds -> trace microseconds (mirror of ``export._TIME_SCALE``).
_TIME_SCALE = 1e6

#: Critical-path phases, highest priority first.  A segment covered by
#: several phases is attributed to the earliest entry: trainer-side work
#: (training, weight sync) bounds the iteration whenever it runs; repack and
#: recovery are manager-side serialization; generation only bounds the
#: iteration when nothing upstream of it is active.
PHASE_PRIORITY: Tuple[str, ...] = (
    "training", "weight_sync", "repack", "recovery", "generation",
)

#: Label for window time no phase family covers.
OTHER_PHASE = "other"

#: Span name -> phase family.  ``iteration`` spans are windows, not phases,
#: and deliberately absent.  Names outside this table (system-specific
#: details) fall through to ``other``.
SPAN_FAMILIES: Dict[str, str] = {
    "training": "training",
    "weight_sync": "weight_sync",
    "weight_pull": "weight_sync",
    "repack": "repack",
    "recovery": "recovery",
    "generation": "generation",
    "generate": "generation",
}

#: Phase -> derived-metric key for its critical-path share.
_SHARE_KEYS: Dict[str, str] = {
    "generation": "critical_path_gen_share",
    "training": "critical_path_train_share",
    "weight_sync": "critical_path_sync_share",
    "repack": "critical_path_repack_share",
    "recovery": "critical_path_recovery_share",
    OTHER_PHASE: "critical_path_other_share",
}

#: Every metric key :func:`derived_metrics` may emit — the contract the
#: ROADMAP records and ``compare --derived-metric`` gates against.
DERIVED_METRIC_KEYS: Tuple[str, ...] = (
    "gen_bubble_frac",
    "sync_frac",
    "critical_path_gen_share",
    "critical_path_train_share",
    "critical_path_sync_share",
    "critical_path_repack_share",
    "critical_path_recovery_share",
    "critical_path_other_share",
)


# --------------------------------------------------------------------------- intervals
Interval = Tuple[float, float]


def _merge(intervals: Sequence[Interval]) -> List[Interval]:
    """Sorted union of possibly-overlapping intervals (zero-length dropped)."""
    merged: List[Interval] = []
    for begin, end in sorted(intervals):
        if end <= begin:
            continue
        if merged and begin <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((begin, end))
    return merged


def _total(merged: Sequence[Interval]) -> float:
    return sum(end - begin for begin, end in merged)


def _clip(merged: Sequence[Interval], lo: float, hi: float) -> List[Interval]:
    """Intersect a merged union with the window ``[lo, hi]``."""
    out: List[Interval] = []
    for begin, end in merged:
        if end <= lo:
            continue
        if begin >= hi:
            break
        out.append((max(begin, lo), min(end, hi)))
    return out


def _intersect(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Intersection of two merged unions (two-pointer sweep)."""
    out: List[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            out.append((lo, hi))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


def _covered_regions(unions: Sequence[Sequence[Interval]],
                     at_least: int) -> List[Interval]:
    """Regions where at least ``at_least`` of the given unions are active."""
    boundaries: List[Tuple[float, int]] = []
    for union in unions:
        for begin, end in union:
            boundaries.append((begin, 1))
            boundaries.append((end, -1))
    boundaries.sort()
    out: List[Interval] = []
    depth = 0
    start: Optional[float] = None
    for ts, delta in boundaries:
        before = depth
        depth += delta
        if before < at_least <= depth:
            start = ts
        elif before >= at_least > depth and start is not None:
            if ts > start:
                out.append((start, ts))
            start = None
    return _merge(out)


# --------------------------------------------------------------------------- results
@dataclass
class IterationPath:
    """Critical-path attribution of one iteration window."""

    index: int
    begin: float
    end: float
    #: Attributed seconds per phase (``other`` included); sums to duration.
    seconds: Dict[str, float] = field(default_factory=dict)
    #: ``seconds`` normalized by the window duration; sums to 1.0.
    shares: Dict[str, float] = field(default_factory=dict)
    #: The phase with the largest attributed share (what bounds this window).
    bound: str = OTHER_PHASE

    @property
    def duration(self) -> float:
        return self.end - self.begin

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "begin_s": self.begin,
            "end_s": self.end,
            "duration_s": self.duration,
            "seconds": dict(sorted(self.seconds.items())),
            "shares": dict(sorted(self.shares.items())),
            "bound": self.bound,
        }


@dataclass
class TrackUsage:
    """Busy/idle/overlap accounting for one track within its group window."""

    track: str
    spans: int
    busy_s: float
    idle_s: float
    #: Portion of ``busy_s`` during which at least one *other* track in the
    #: group was also busy — the visible pipelining/overlap.
    overlap_s: float
    utilization: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "track": self.track,
            "spans": self.spans,
            "busy_s": self.busy_s,
            "idle_s": self.idle_s,
            "overlap_s": self.overlap_s,
            "utilization": self.utilization,
        }


@dataclass
class FamilyUsage:
    """Aggregate time attribution for one span name across the group."""

    name: str
    count: int
    #: Sum of span durations (double-counts overlapping replicas).
    total_s: float
    #: Union of span intervals (wall coverage).
    busy_s: float
    #: ``busy_s`` over the group window duration.
    window_share: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "busy_s": self.busy_s,
            "window_share": self.window_share,
        }


@dataclass
class GroupAnalysis:
    """Full analysis of one recorder group (one benchmark unit / run)."""

    group: str
    begin: float
    end: float
    tracks: List[TrackUsage] = field(default_factory=list)
    families: List[FamilyUsage] = field(default_factory=list)
    iterations: List[IterationPath] = field(default_factory=list)
    #: Attributed seconds per phase summed over all iteration windows.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: ``phase_seconds`` normalized so the values sum to exactly 1.0.
    phase_shares: Dict[str, float] = field(default_factory=dict)
    #: Union seconds per phase over the whole group window (overlap-free —
    #: ``weight_sync`` + ``weight_pull`` or many-replica ``generate`` spans
    #: count wall coverage once).
    phase_busy_s: Dict[str, float] = field(default_factory=dict)
    derived: Dict[str, float] = field(default_factory=dict)
    counter_series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    instant_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.begin

    @property
    def bound(self) -> str:
        if not self.phase_shares:
            return OTHER_PHASE
        return max(self.phase_shares, key=lambda k: (self.phase_shares[k], k))

    def as_dict(self) -> Dict[str, object]:
        return {
            "group": self.group,
            "begin_s": self.begin,
            "end_s": self.end,
            "duration_s": self.duration,
            "bound": self.bound,
            "phase_seconds": dict(sorted(self.phase_seconds.items())),
            "phase_shares": dict(sorted(self.phase_shares.items())),
            "phase_busy_s": dict(sorted(self.phase_busy_s.items())),
            "derived": dict(sorted(self.derived.items())),
            "tracks": [t.as_dict() for t in self.tracks],
            "families": [f.as_dict() for f in self.families],
            "iterations": [i.as_dict() for i in self.iterations],
            "counter_series": {k: dict(sorted(v.items()))
                               for k, v in sorted(self.counter_series.items())},
            "instant_counts": dict(sorted(self.instant_counts.items())),
        }


@dataclass
class TraceAnalysis:
    """Analyses of every group in a recorder, in first-appearance order."""

    groups: List[GroupAnalysis] = field(default_factory=list)

    def group(self, name: str) -> Optional[GroupAnalysis]:
        for analysis in self.groups:
            if analysis.group == name:
                return analysis
        return None

    def as_dict(self) -> Dict[str, object]:
        return {"groups": {g.group: g.as_dict() for g in self.groups}}


# --------------------------------------------------------------------------- loading
def load_chrome_trace(source) -> TraceRecorder:
    """Rebuild a :class:`TraceRecorder` from a Chrome-trace JSON file or
    payload (the inverse of :func:`~repro.obs.export.write_chrome_trace`).

    Process/thread metadata events restore the group and track names;
    complete ``"X"`` events become spans, ``"i"`` events instants and ``"C"``
    events counter samples (the exporter names counters ``track:name``).
    Timestamps come back through the microsecond scaling, so they are equal
    to the recorded values up to one float rounding step — analysis results
    on a reloaded trace match the in-memory recorder to the same precision.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = source
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("not a Chrome-trace payload: missing traceEvents list")

    group_of: Dict[int, str] = {}
    track_of: Dict[Tuple[int, int], str] = {}
    for event in events:
        if event.get("ph") != "M":
            continue
        if event.get("name") == "process_name":
            group_of[int(event["pid"])] = str(event["args"]["name"])
        elif event.get("name") == "thread_name":
            track_of[(int(event["pid"]), int(event["tid"]))] = (
                str(event["args"]["name"])
            )

    recorder = TraceRecorder()
    for event in events:
        phase = event.get("ph")
        if phase == "M":
            continue
        pid = int(event.get("pid", 0))
        group = group_of.get(pid, f"pid-{pid}")
        recorder.set_group(group)
        args = event.get("args")
        if phase == "X":
            track = track_of.get((pid, int(event["tid"])), "unknown")
            begin = float(event["ts"]) / _TIME_SCALE
            duration = float(event.get("dur", 0.0)) / _TIME_SCALE
            recorder.span(track, str(event["name"]), begin, begin + duration,
                          args=args)
        elif phase == "i":
            track = track_of.get((pid, int(event["tid"])), "unknown")
            recorder.instant(track, str(event["name"]),
                             float(event["ts"]) / _TIME_SCALE, args=args)
        elif phase == "C":
            name = str(event["name"])
            track, _, counter = name.partition(":")
            if not counter:
                track, counter = "counters", name
            value = float((args or {}).get("value", 0.0))
            recorder.counter(track, counter, float(event["ts"]) / _TIME_SCALE,
                             value)
    return recorder


# --------------------------------------------------------------------------- analysis
def _attribute_window(
    begin: float, end: float,
    phase_unions: Dict[str, List[Interval]],
) -> Dict[str, float]:
    """Attribute every elementary segment of ``[begin, end]`` to the highest-
    priority phase active there; uncovered time is ``other``.  The returned
    seconds sum to exactly ``end - begin``."""
    clipped = {phase: _clip(union, begin, end)
               for phase, union in phase_unions.items()}
    boundaries = {begin, end}
    for union in clipped.values():
        for lo, hi in union:
            boundaries.add(lo)
            boundaries.add(hi)
    points = sorted(boundaries)
    cursors = {phase: 0 for phase in clipped}
    seconds = {phase: 0.0 for phase in PHASE_PRIORITY}
    seconds[OTHER_PHASE] = 0.0
    for lo, hi in zip(points, points[1:]):
        if hi <= lo:
            continue
        mid = (lo + hi) / 2.0
        owner = OTHER_PHASE
        for phase in PHASE_PRIORITY:
            union = clipped.get(phase)
            if not union:
                continue
            k = cursors[phase]
            while k < len(union) and union[k][1] <= mid:
                k += 1
            cursors[phase] = k
            if k < len(union) and union[k][0] <= mid < union[k][1]:
                owner = phase
                break
        seconds[owner] += hi - lo
    # Re-anchor the residue so the attribution is exhaustive by construction
    # (float summation of segment lengths can drift a few ulps).
    drift = (end - begin) - sum(seconds.values())
    seconds[OTHER_PHASE] += drift
    return seconds


def analyze_group(recorder: TraceRecorder, group: str) -> Optional[GroupAnalysis]:
    """Analyze one recorder group; ``None`` when the group has no events."""
    spans = [s for s in recorder.spans if s.group == group]
    instants = [i for i in recorder.instants if i.group == group]
    counters = [c for c in recorder.counters if c.group == group]
    if not spans and not instants and not counters:
        return None

    stamps = [t for s in spans for t in (s.begin, s.end)]
    stamps += [i.ts for i in instants]
    stamps += [c.ts for c in counters]
    begin, end = min(stamps), max(stamps)
    analysis = GroupAnalysis(group=group, begin=begin, end=end)
    duration = analysis.duration

    # ---- per-track busy/idle/overlap
    track_order: Dict[str, None] = {}
    for span in spans:
        track_order.setdefault(span.track, None)
    track_unions = {
        track: _merge([(s.begin, s.end) for s in spans if s.track == track])
        for track in track_order
    }
    overlap_region = _covered_regions(list(track_unions.values()), at_least=2)
    for track in track_order:
        union = track_unions[track]
        busy = _total(union)
        analysis.tracks.append(TrackUsage(
            track=track,
            spans=sum(1 for s in spans if s.track == track),
            busy_s=busy,
            idle_s=max(0.0, duration - busy),
            overlap_s=_total(_intersect(union, overlap_region)),
            utilization=(busy / duration) if duration > 0 else 0.0,
        ))

    # ---- span-family attribution (by span name, ranked by coverage)
    name_order: Dict[str, None] = {}
    for span in spans:
        name_order.setdefault(span.name, None)
    for name in name_order:
        intervals = [(s.begin, s.end) for s in spans if s.name == name]
        busy = _total(_merge(intervals))
        analysis.families.append(FamilyUsage(
            name=name,
            count=len(intervals),
            total_s=sum(hi - lo for lo, hi in intervals),
            busy_s=busy,
            window_share=(busy / duration) if duration > 0 else 0.0,
        ))
    analysis.families.sort(key=lambda f: (-f.busy_s, f.name))

    # ---- per-iteration critical paths
    phase_unions: Dict[str, List[Interval]] = {p: [] for p in PHASE_PRIORITY}
    for span in spans:
        phase = SPAN_FAMILIES.get(span.name)
        if phase is not None:
            phase_unions[phase].append((span.begin, span.end))
    phase_unions = {p: _merge(v) for p, v in phase_unions.items()}
    analysis.phase_busy_s = {p: _total(v) for p, v in phase_unions.items()}
    windows = sorted(
        [(s.begin, s.end) for s in spans if s.name == "iteration" and s.end > s.begin]
    )
    if not windows and duration > 0 and spans:
        # Groups without explicit iteration spans (single-phase traces) are
        # attributed over their whole window.
        windows = [(begin, end)]
    total_seconds = {phase: 0.0 for phase in PHASE_PRIORITY}
    total_seconds[OTHER_PHASE] = 0.0
    for index, (lo, hi) in enumerate(windows):
        seconds = _attribute_window(lo, hi, phase_unions)
        length = hi - lo
        shares = {phase: (value / length if length > 0 else 0.0)
                  for phase, value in seconds.items()}
        bound = max(seconds, key=lambda k: (seconds[k], k))
        analysis.iterations.append(IterationPath(
            index=index, begin=lo, end=hi,
            seconds=seconds, shares=shares, bound=bound,
        ))
        for phase, value in seconds.items():
            total_seconds[phase] += value
    attributed = sum(total_seconds.values())
    analysis.phase_seconds = total_seconds
    if attributed > 0:
        shares = {p: v / attributed for p, v in total_seconds.items()}
        # Pin the share vector to an exact unit sum (the gate CI asserts it).
        drift = 1.0 - sum(shares.values())
        shares[OTHER_PHASE] += drift
        analysis.phase_shares = shares

    # ---- counters + instants
    for sample in counters:
        key = f"{sample.track}:{sample.name}"
        series = analysis.counter_series.get(key)
        if series is None:
            series = analysis.counter_series[key] = {
                "samples": 0.0, "min": sample.value, "max": sample.value,
                "last": sample.value,
            }
        series["samples"] += 1.0
        series["min"] = min(series["min"], sample.value)
        series["max"] = max(series["max"], sample.value)
        series["last"] = sample.value
    for instant in instants:
        analysis.instant_counts[instant.name] = (
            analysis.instant_counts.get(instant.name, 0) + 1
        )

    analysis.derived = derived_metrics(analysis)
    return analysis


def analyze_recorder(recorder: TraceRecorder) -> TraceAnalysis:
    """Analyze every group of the recorder (first-appearance order)."""
    analysis = TraceAnalysis()
    for group in recorder.groups():
        group_analysis = analyze_group(recorder, group)
        if group_analysis is not None:
            analysis.groups.append(group_analysis)
    return analysis


def derived_metrics(analysis: GroupAnalysis) -> Dict[str, float]:
    """The curated scalar subset attached to traced ``UnitResult`` extras.

    Empty when the group has no critical-path attribution (no spans) — the
    bench layer attaches these only when tracing is on, and only for units
    that produced a simulated timeline.
    """
    if not analysis.phase_shares or analysis.duration <= 0:
        return {}
    # Unions, not per-family sums: weight_sync/weight_pull (and the per-
    # replica generate spans) overlap, and the fractions are wall coverage.
    gen_busy = analysis.phase_busy_s.get("generation", 0.0)
    sync_busy = analysis.phase_busy_s.get("weight_sync", 0.0)
    metrics = {
        "sync_frac": min(1.0, sync_busy / analysis.duration),
    }
    if any(SPAN_FAMILIES.get(f.name) == "generation" for f in analysis.families):
        # Only meaningful for systems that record generation spans at all —
        # Laminar's continuous generation is deliberately off-span (token
        # counters carry it), so a bubble fraction there would be a
        # tautological 1.0, not a measurement.
        metrics["gen_bubble_frac"] = max(0.0, 1.0 - gen_busy / analysis.duration)
    for phase, key in _SHARE_KEYS.items():
        metrics[key] = analysis.phase_shares.get(phase, 0.0)
    return metrics


# --------------------------------------------------------------------------- rendering
def _fmt_share(value: float) -> str:
    return f"{value:6.1%}"


def render_analysis(analysis: TraceAnalysis, top: int = 8) -> str:
    """Human-readable critical-path report for every analyzed group."""
    if not analysis.groups:
        return "trace analysis: no events"
    lines: List[str] = []
    for g in analysis.groups:
        lines.append(f"[{g.group}] window={g.duration:.3f}s "
                     f"iterations={len(g.iterations)} bound={g.bound}")
        if g.phase_shares:
            ordered = [*PHASE_PRIORITY, OTHER_PHASE]
            lines.append("  critical path: " + "  ".join(
                f"{phase}={_fmt_share(g.phase_shares.get(phase, 0.0)).strip()}"
                for phase in ordered
            ))
        if g.derived:
            scalars = [k for k in ("gen_bubble_frac", "sync_frac")
                       if k in g.derived]
            lines.append("  derived: " + "  ".join(
                f"{k}={g.derived[k]:.3f}" for k in scalars
            ))
        if g.tracks:
            lines.append("  track             spans    busy_s    idle_s  "
                         "overlap_s   util")
            for t in g.tracks:
                lines.append(
                    f"  {t.track:<16} {t.spans:>6}  {t.busy_s:>8.3f}  "
                    f"{t.idle_s:>8.3f}  {t.overlap_s:>9.3f}  {_fmt_share(t.utilization)}"
                )
        if g.families:
            shown = g.families[:top]
            lines.append(f"  top span families ({len(shown)} of "
                         f"{len(g.families)}):")
            for f in shown:
                lines.append(
                    f"    {f.name:<16} n={f.count:<5} total={f.total_s:>9.3f}s "
                    f"busy={f.busy_s:>9.3f}s share={_fmt_share(f.window_share)}"
                )
        if g.instant_counts:
            rendered = ", ".join(f"{k}×{v}" for k, v in
                                 sorted(g.instant_counts.items()))
            lines.append(f"  instants: {rendered}")
        if g.counter_series:
            lines.append(f"  counters: {len(g.counter_series)} series, "
                         f"{int(sum(s['samples'] for s in g.counter_series.values()))} "
                         f"sample(s)")
    return "\n".join(lines)


def diff_analyses(candidate: TraceAnalysis,
                  baseline: TraceAnalysis) -> Dict[str, object]:
    """Structured per-group deltas of the phase shares and derived metrics.

    Groups are matched by label; groups present on only one side are listed
    (a grid change is itself a finding, not an error).
    """
    cand = {g.group: g for g in candidate.groups}
    base = {g.group: g for g in baseline.groups}
    diff: Dict[str, object] = {
        "only_in_candidate": sorted(set(cand) - set(base)),
        "only_in_baseline": sorted(set(base) - set(cand)),
        "groups": {},
    }
    for group in sorted(set(cand) & set(base)):
        c, b = cand[group], base[group]
        phases = sorted(set(c.phase_shares) | set(b.phase_shares))
        metrics = sorted(set(c.derived) | set(b.derived))
        diff["groups"][group] = {
            "duration_delta_s": c.duration - b.duration,
            "phase_share_delta": {
                p: c.phase_shares.get(p, 0.0) - b.phase_shares.get(p, 0.0)
                for p in phases
            },
            "derived_delta": {
                m: c.derived.get(m, 0.0) - b.derived.get(m, 0.0)
                for m in metrics
            },
        }
    return diff


def render_diff(diff: Dict[str, object]) -> str:
    """Text rendering of :func:`diff_analyses` output."""
    lines: List[str] = ["trace diff (candidate - baseline):"]
    for side in ("only_in_candidate", "only_in_baseline"):
        names = diff.get(side) or []
        if names:
            lines.append(f"  {side.replace('_', ' ')}: " + ", ".join(names))
    groups: Dict[str, Dict[str, object]] = diff.get("groups", {})
    if not groups:
        lines.append("  no common groups")
        return "\n".join(lines)
    for group, payload in groups.items():
        lines.append(f"  [{group}] duration {payload['duration_delta_s']:+.3f}s")
        shares = payload.get("phase_share_delta", {})
        moved = {p: d for p, d in shares.items() if abs(d) >= 0.0005}
        if moved:
            lines.append("    phase shares: " + "  ".join(
                f"{p}{d:+.1%}" for p, d in sorted(
                    moved.items(), key=lambda kv: -abs(kv[1]))
            ))
        else:
            lines.append("    phase shares: unchanged (<0.05% movement)")
        derived = payload.get("derived_delta", {})
        moved = {m: d for m, d in derived.items() if abs(d) >= 0.0005}
        if moved:
            lines.append("    derived: " + "  ".join(
                f"{m}{d:+.3f}" for m, d in sorted(moved.items())
            ))
    return "\n".join(lines)

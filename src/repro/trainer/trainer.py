"""Actor trainer: mini-batch update loop, weight versioning, checkpointing.

The trainer samples a global batch from the experience buffer, runs the
configured number of mini-batch optimizer steps (16 in §8), bumps the actor
weight version, and publishes the new weights (to the master relay in Laminar,
or via a blocking global synchronization in the baselines).  Both the
iteration-level baseline simulators and the Laminar DES use this class so that
training costs are identical across systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..data.experience_buffer import ExperienceBuffer
from ..llm.model_spec import ModelSpec
from ..llm.parallelism import ParallelConfig
from ..llm.training_model import TrainingModel
from ..types import Experience


@dataclass(frozen=True)
class TrainerConfig:
    """Hyperparameters of the training stage relevant to system behaviour."""

    global_batch_size: int = 8192
    num_minibatches: int = 16
    checkpoint_interval_iterations: int = 5
    checkpoint_write_time: float = 20.0
    #: Time to restore a trainer from its latest checkpoint after a failure.
    checkpoint_restore_time: float = 120.0

    def __post_init__(self) -> None:
        if self.global_batch_size <= 0:
            raise ValueError("global_batch_size must be positive")
        if self.num_minibatches <= 0:
            raise ValueError("num_minibatches must be positive")
        if self.global_batch_size % self.num_minibatches != 0:
            raise ValueError("global_batch_size must be divisible by num_minibatches")


@dataclass
class IterationRecord:
    """Timing and data statistics of one completed RL training iteration."""

    iteration: int
    start_time: float
    end_time: float
    tokens_trained: int
    trajectories: int
    mean_reward: float
    mean_staleness: float
    max_staleness: int
    weight_version: int

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.tokens_trained / self.duration


class Trainer:
    """Stateful actor trainer shared by all simulated systems."""

    def __init__(
        self,
        model: ModelSpec,
        parallel: ParallelConfig,
        config: Optional[TrainerConfig] = None,
        training_model: Optional[TrainingModel] = None,
    ) -> None:
        self.model = model
        self.parallel = parallel
        self.config = config or TrainerConfig()
        self.training_model = training_model or TrainingModel(model=model, config=parallel)
        self.weight_version = 0
        self.iterations: List[IterationRecord] = []
        self.last_checkpoint_version = 0
        self.checkpoints_written = 0

    # -- cost queries -------------------------------------------------------------
    def minibatch_time(self, tokens_in_minibatch: float) -> float:
        return self.training_model.minibatch_step_time(tokens_in_minibatch)

    def iteration_compute_time(self, total_tokens: float) -> float:
        """Pure training-stage time for one iteration over ``total_tokens``."""
        return self.training_model.iteration_time(
            total_tokens, self.config.num_minibatches
        )

    @property
    def minibatch_size(self) -> int:
        return self.config.global_batch_size // self.config.num_minibatches

    # -- state transitions -----------------------------------------------------------
    def record_iteration(
        self,
        batch: Sequence[Experience],
        start_time: float,
        end_time: float,
    ) -> IterationRecord:
        """Account a finished iteration and bump the weight version."""
        if not batch:
            raise ValueError("cannot record an iteration over an empty batch")
        self.weight_version += 1
        staleness = [exp.trajectory.inherent_staleness(self.weight_version) for exp in batch]
        record = IterationRecord(
            iteration=len(self.iterations) + 1,
            start_time=start_time,
            end_time=end_time,
            tokens_trained=sum(exp.tokens for exp in batch),
            trajectories=len(batch),
            mean_reward=sum(exp.reward for exp in batch) / len(batch),
            mean_staleness=sum(staleness) / len(staleness),
            max_staleness=max(staleness),
            weight_version=self.weight_version,
        )
        self.iterations.append(record)
        if record.iteration % self.config.checkpoint_interval_iterations == 0:
            self.last_checkpoint_version = self.weight_version
            self.checkpoints_written += 1
        return record

    def train_from_buffer(
        self, buffer: ExperienceBuffer, start_time: float
    ) -> IterationRecord:
        """Sample one global batch from ``buffer`` and account the iteration."""
        batch = buffer.sample(self.config.global_batch_size)
        tokens = sum(exp.tokens for exp in batch)
        end_time = start_time + self.iteration_compute_time(tokens)
        return self.record_iteration(batch, start_time, end_time)

    # -- summaries ---------------------------------------------------------------------
    def mean_iteration_duration(self, warmup: int = 0) -> float:
        records = self.iterations[warmup:]
        if not records:
            return 0.0
        return sum(r.duration for r in records) / len(records)

    def total_tokens_trained(self) -> int:
        return sum(r.tokens_trained for r in self.iterations)

"""Trainer module: actor update loop, weight versioning, iteration records."""

from .trainer import IterationRecord, Trainer, TrainerConfig

__all__ = ["IterationRecord", "Trainer", "TrainerConfig"]

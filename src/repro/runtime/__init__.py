"""Shared runtime layer: one workload, one engine, five orchestrations.

``repro.runtime`` is the layer between the discrete-event engine
(:mod:`repro.sim.engine`) and the systems (:mod:`repro.core`,
:mod:`repro.baselines`).  It provides:

* :class:`WorkloadBundle` — identically-seeded construction of the shared
  workload objects (dataset, factory, environment, decode model, trainer,
  buffer) so every system replays the exact same workload;
* :class:`CompletionPipeline` and the weight-sync components
  (:class:`GlobalWeightSync`, :class:`RelayWeightSync`) — the per-completion
  and per-update plumbing shared across systems;
* the DES harness (:func:`drain_replica`, :func:`generation_barrier`,
  :func:`replica_driver`, :class:`ReplicaFleet`) — replicas as engine
  processes, with ``AllOf`` joins for the baselines' barriers and
  interruptible drivers for the continuous systems;
* :class:`LaminarRuntime` — the event-driven Laminar main loop (trainer,
  rollout-manager, failure/recovery and per-replica driver processes).
"""

from .components import CompletionPipeline, GlobalWeightSync, RelayWeightSync
from .harness import (
    GenerationOutcome,
    ReplicaFleet,
    drain_replica,
    generation_barrier,
    replica_driver,
)
from .laminar_runtime import LaminarRuntime
from .workload import WorkloadBundle

__all__ = [
    "CompletionPipeline",
    "GenerationOutcome",
    "GlobalWeightSync",
    "LaminarRuntime",
    "RelayWeightSync",
    "ReplicaFleet",
    "WorkloadBundle",
    "drain_replica",
    "generation_barrier",
    "replica_driver",
]

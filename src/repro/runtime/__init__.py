"""Shared runtime layer: one workload, one engine, every orchestration.

``repro.runtime`` is the layer between the discrete-event engine
(:mod:`repro.sim.engine`) and the registered systems
(:mod:`repro.systems`).  It provides:

* :class:`WorkloadBundle` — identically-seeded construction of the shared
  workload objects (dataset, factory, environment, decode model, trainer,
  buffer) so every system replays the exact same workload;
* :class:`CompletionPipeline` and the weight-sync components
  (:class:`GlobalWeightSync`, :class:`RelayWeightSync`) — the per-completion
  and per-update plumbing shared across systems;
* the DES harness — replicas as engine processes: plain and anchored drains
  (:func:`drain_replica`, :func:`drain_replica_anchored`) joined by the
  ``AllOf`` :func:`generation_barrier` for the batch-synchronous systems,
  and interruptible drivers (:func:`replica_driver`, :class:`ReplicaFleet`)
  for the continuous ones;
* the fleet stepping layer (:mod:`repro.runtime.fleet`) — the default
  execution mode: one engine process per scenario drives every replica off a
  packed :class:`FleetState` SoA block with bit-identical event times
  (:func:`fleet_generation_barrier`, :class:`FleetStepper`); the per-replica
  process shape remains available via ``stepping("process")`` as the
  equivalence-test reference.
"""

from .components import CompletionPipeline, GlobalWeightSync, RelayWeightSync
from .fleet import (
    FleetState,
    FleetStepper,
    fleet_generation_barrier,
    set_stepping_mode,
    stepping,
    stepping_mode,
)
from .harness import (
    EventBox,
    GenerationOutcome,
    ReplicaFleet,
    drain_replica,
    drain_replica_anchored,
    generation_barrier,
    replica_driver,
)
from .workload import WorkloadBundle

__all__ = [
    "CompletionPipeline",
    "EventBox",
    "FleetState",
    "FleetStepper",
    "GenerationOutcome",
    "GlobalWeightSync",
    "RelayWeightSync",
    "ReplicaFleet",
    "WorkloadBundle",
    "drain_replica",
    "drain_replica_anchored",
    "fleet_generation_barrier",
    "generation_barrier",
    "replica_driver",
    "set_stepping_mode",
    "stepping",
    "stepping_mode",
]

"""Shared runtime layer: one workload, one engine, every orchestration.

``repro.runtime`` is the layer between the discrete-event engine
(:mod:`repro.sim.engine`) and the registered systems
(:mod:`repro.systems`).  It provides:

* :class:`WorkloadBundle` — identically-seeded construction of the shared
  workload objects (dataset, factory, environment, decode model, trainer,
  buffer) so every system replays the exact same workload;
* :class:`CompletionPipeline` and the weight-sync components
  (:class:`GlobalWeightSync`, :class:`RelayWeightSync`) — the per-completion
  and per-update plumbing shared across systems;
* the DES harness — replicas as engine processes: plain and anchored drains
  (:func:`drain_replica`, :func:`drain_replica_anchored`) joined by the
  ``AllOf`` :func:`generation_barrier` for the batch-synchronous systems,
  and interruptible drivers (:func:`replica_driver`, :class:`ReplicaFleet`)
  for the continuous ones.
"""

from .components import CompletionPipeline, GlobalWeightSync, RelayWeightSync
from .harness import (
    EventBox,
    GenerationOutcome,
    ReplicaFleet,
    drain_replica,
    drain_replica_anchored,
    generation_barrier,
    replica_driver,
)
from .workload import WorkloadBundle

__all__ = [
    "CompletionPipeline",
    "EventBox",
    "GenerationOutcome",
    "GlobalWeightSync",
    "RelayWeightSync",
    "ReplicaFleet",
    "WorkloadBundle",
    "drain_replica",
    "drain_replica_anchored",
    "generation_barrier",
    "replica_driver",
]

"""Event-driven execution of the Laminar architecture on ``sim.engine``.

:class:`LaminarRuntime` owns the simulation environment and expresses the
Laminar control flow as four kinds of processes:

* one **replica driver** per rollout replica (:func:`replica_driver`): sleeps
  until the replica's own next internal event ("when is your next event?" —
  the question :class:`ReplicaGenerationState` was designed to answer), pulls
  the newest weights from the colocated relay and refills with fresh prompts
  whenever the replica goes idle;
* a **trainer process**: waits for the experience buffer to hold a global
  batch, computes for the exact iteration time, publishes the new weights to
  the master relay, and triggers the post-update repack (§5.1);
* a **rollout-manager process**: the periodic repack check and the KVCache
  utilisation observers (Fig 9), on the configured check interval;
* a **failure process** plus one **recovery process** per outage (§3.3):
  failures land at their exact injected timestamps; a trainer failure
  interrupts the trainer process with the checkpoint-restore time as the
  interrupt cause.

Repack pulls and stall injections mutate replicas under their sleeping
drivers; the runtime interrupts the affected drivers
(:meth:`Process.interrupt`) so they recompute their next event.  The repack
path broadcasts a ``touch`` to *every* driver (sources were emptied,
destinations grew, and the shared migration stall moved all the clocks) —
that is affordable because the engine's next-event reductions are cached
against its per-replica mutation counter, so drivers whose replica was not
actually mutated re-derive their event in O(1) instead of re-scanning their
decode batch.  All policy (what to refill, how to score, who hosts which
replica) stays on :class:`~repro.core.laminar.LaminarSystem`; this module is
pure mechanism.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from ..metrics.results import StageBreakdown
from ..rollout.generation import ReplicaGenerationState
from ..sim.engine import Environment, Interrupt
from ..types import Trajectory
from .harness import ReplicaFleet, _EPS

if TYPE_CHECKING:  # pragma: no cover - the runtime layer sits below repro.core
    from ..core.fault_tolerance import FailureEvent


class LaminarRuntime(ReplicaFleet):
    """Discrete-event main loop for one :class:`LaminarSystem` run."""

    def __init__(self, system) -> None:
        super().__init__(Environment())
        self.system = system
        self._num_iterations = 0
        self._trainer_ready = 0.0
        self._last_completion = 0.0
        self._tokens_seen = {rid: 0 for rid in system.replicas}
        self._trainer_process = None
        self._done = self.env.event()

    # ------------------------------------------------------------------ entry point
    def run(self, num_iterations: int) -> float:
        """Simulate until ``num_iterations`` trainer updates (or the time cap)."""
        env, system = self.env, self.system
        self._num_iterations = num_iterations
        for replica_id in list(system.replicas):
            self.spawn(replica_id)
        self._trainer_process = env.process(self._trainer(), name="trainer")
        env.process(self._manager(), name="rollout-manager")
        env.process(self._failures(), name="failure-injector")
        env.run(until=env.any_of([self._done, env.timeout(system.max_sim_time)]))
        return env.now

    # ------------------------------------------------------------------ fleet hooks
    def replica(self, replica_id: int) -> Optional[ReplicaGenerationState]:
        return self.system.replicas.get(replica_id)

    def refill(self, replica: ReplicaGenerationState) -> None:
        self.system._refill_replica(replica, self.env.now)

    def on_advance(self, replica: ReplicaGenerationState, completed: List[Trajectory]) -> None:
        system = self.system
        generated = replica.stats.tokens_generated
        delta = generated - self._tokens_seen.get(replica.replica_id, 0)
        self._tokens_seen[replica.replica_id] = generated
        if delta > 0:
            system.generation_tokens.record(self.env.now, delta)
        if completed:
            system._handle_completions(completed)
            if system.buffer.can_sample(system.config.global_batch_size):
                self.notify_data()

    # ------------------------------------------------------------------ trainer
    def _trainer(self):
        env, system = self.env, self.system
        batch_size = system.config.global_batch_size
        while len(system.trainer.iterations) < self._num_iterations:
            # Idle phase: wait out any checkpoint restore, then wait for data.
            while True:
                wait = self._trainer_ready - env.now
                if wait > _EPS:
                    try:
                        yield env.timeout(wait)
                    except Interrupt as interrupt:
                        self._restore_while_idle(float(interrupt.cause))
                    continue
                if system.buffer.can_sample(batch_size):
                    break
                try:
                    yield self.data_event()
                except Interrupt as interrupt:
                    self._restore_while_idle(float(interrupt.cause))
            batch = system.buffer.sample(batch_size)
            self.notify_refill()  # run-ahead budget freed
            tokens = sum(exp.tokens for exp in batch)
            compute = system.trainer.iteration_compute_time(tokens)
            finish = env.now + compute
            while finish - env.now > _EPS:
                try:
                    yield env.timeout(finish - env.now)
                except Interrupt as interrupt:
                    # Trainer failure mid-iteration: the restore slips the
                    # completion of the current update (§3.3).
                    finish += float(interrupt.cause)
            # Bring every replica up to the update instant before the version
            # bump: trajectories that completed during the training window are
            # scored with the pre-update actor version (as in the round loop,
            # which advanced and scored all replicas before the trainer check).
            for replica in list(system.replicas.values()):
                self.catch_up(replica)
            # Publish to the master relay; the actor stalls only for the push.
            publication = system.weight_sync.publish(system.trainer.weight_version + 1, env.now)
            completion = env.now + publication.actor_stall
            record = system.trainer.record_iteration(batch, self._last_completion, completion)
            system.training_tokens.record(completion, record.tokens_trained)
            result = system._result
            result.iterations.append(record)
            result.breakdowns.append(
                StageBreakdown(
                    generation_time=max(0.0, record.duration - compute),
                    training_time=compute,
                    weight_sync_time=publication.actor_stall,
                )
            )
            result.staleness_samples.extend(exp.staleness for exp in batch)
            self._last_completion = completion
            # §5.1: a repack is also triggered right after each trainer update.
            self._repack(force=True)
        if not self._done.triggered:
            self._done.succeed()

    def _restore_while_idle(self, restore: float) -> None:
        self._trainer_ready = max(self._trainer_ready, self.env.now + restore)

    # ------------------------------------------------------------------ repack / manager
    def _repack(self, force: bool) -> None:
        env, system = self.env, self.system
        if not force and not system.manager.due_for_check(env.now):
            return
        for replica in list(system.replicas.values()):
            self.catch_up(replica)
        released, overhead = system.manager.maybe_repack(system.replicas, env.now, force=force)
        system._charge_repack_overhead(released, overhead)
        if released:
            # Sources were emptied and destinations grew (plus the shared
            # migration stall): every sleeping driver must recompute.
            self.touch()
            self.notify_refill()

    def _manager(self):
        env, system = self.env, self.system
        while True:
            yield env.timeout(system.manager.repack_interval)
            self._repack(force=False)
            self._observe_kvcache()

    def _observe_kvcache(self) -> None:
        system = self.system
        for replica_id in list(system.replicas)[:4]:
            replica = system.replicas[replica_id]
            system.record_kvcache_sample(replica_id, self.env.now, replica.kvcache_utilization)

    # ------------------------------------------------------------------ failures
    def _failures(self):
        env, system = self.env, self.system
        while True:
            next_time = system.failures.next_failure_time()
            if next_time is None:
                return
            if next_time - env.now > _EPS:
                yield env.timeout(next_time - env.now)
            for event in system.failures.due(env.now):
                self._apply_failure(event)

    def _apply_failure(self, event: "FailureEvent") -> None:
        from ..core.fault_tolerance import FailureKind  # deferred: below repro.core

        env, system = self.env, self.system
        if event.kind == FailureKind.ROLLOUT_MACHINE:
            # Bring every replica up to the failure instant so the streamed
            # tokens in the partial response pool are exact, then fail over.
            for replica in list(system.replicas.values()):
                self.catch_up(replica)
            recovery_at = system._apply_rollout_failure(event, env.now)
            env.process(
                self._recovery(recovery_at, event.target),
                name=f"recover-machine-{event.target}",
            )
            self.touch()
            self.notify_refill()
        elif event.kind == FailureKind.RELAY:
            system.relay.fail_machine(event.target)
            env.process(
                self._recovery(event.time + system.recovery.relay_recovery_time(), event.target),
                name=f"recover-relay-{event.target}",
            )
        elif event.kind == FailureKind.TRAINER:
            # The trainer restarts from its checkpoint; rollouts keep going.
            # Mid-iteration the completion slips; while idle the next
            # iteration may not start until the restore finishes.
            restore = system.recovery.trainer_recovery_time()
            if self._trainer_process is not None and self._trainer_process.is_alive:
                self._trainer_process.interrupt(cause=restore)

    def _recovery(self, at: float, machine_id: int):
        env, system = self.env, self.system
        if at - env.now > _EPS:
            yield env.timeout(at - env.now)
        for replica in system._recover_machine(machine_id, env.now):
            self._tokens_seen.setdefault(replica.replica_id, 0)
            self.spawn(replica.replica_id)
        self.notify_refill()

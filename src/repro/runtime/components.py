"""Shared runtime components: completion pipeline and weight-sync models.

These encapsulate the two pieces of per-trajectory / per-update plumbing that
every system shares, so the orchestration code (DES processes) carries no
policy of its own:

* :class:`CompletionPipeline` — what happens when a trajectory completes:
  score it, write it to the experience buffer, and (for Laminar) retire it
  from the partial response pool and record its inherent staleness.
* :class:`GlobalWeightSync` / :class:`RelayWeightSync` — the two weight
  distribution designs of the paper: the baselines' blocking GPU-direct
  global synchronization vs. Laminar's relay service (§4), behind one
  ``sync`` surface so the runtime does not care which is plugged in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, TYPE_CHECKING

from ..config import SystemConfig
from ..data.experience_buffer import ExperienceBuffer
from ..data.partial_response_pool import PartialResponsePool
from ..llm.model_spec import ModelSpec
from ..rollout.environment import SimulatedEnvironment
from ..sim.cluster import GPUS_PER_MACHINE
from ..sim.network import LinkSpec, RDMA_LINK, gpu_direct_global_sync_time
from ..types import Trajectory

if TYPE_CHECKING:  # pragma: no cover - the runtime layer sits below repro.systems
    from ..systems.relay import PullRecord, RelayService, WeightPublication
    from ..systems.staleness import StalenessTracker


@dataclass
class CompletionPipeline:
    """Score → buffer → staleness pipeline applied to completed trajectories.

    The baselines use the two-stage form (score, buffer); Laminar additionally
    retires the trajectory from the partial response pool and records its
    inherent staleness.  Scoring order is the order trajectories are passed
    in, which keeps the environment's reward RNG stream deterministic.
    """

    environment: SimulatedEnvironment
    buffer: ExperienceBuffer
    staleness: Optional[StalenessTracker] = None
    partial_pool: Optional[PartialResponsePool] = None

    def process(self, trajectories: Sequence[Trajectory], actor_version: int) -> None:
        for trajectory in trajectories:
            if self.partial_pool is not None and trajectory.traj_id in self.partial_pool:
                self.partial_pool.complete(trajectory.traj_id)
            reward = self.environment.score(trajectory)
            self.buffer.write(trajectory, reward, actor_version)
            if self.staleness is not None:
                self.staleness.record(trajectory, actor_version)


@dataclass
class GlobalWeightSync:
    """Blocking NCCL-style global weight synchronization (the baselines).

    Every rollout participates in one collective per iteration; the whole
    fleet (and the actor) stalls for :meth:`sync_time` seconds.
    """

    weight_bytes: float
    machines: int
    link: LinkSpec = RDMA_LINK

    @classmethod
    def from_config(cls, config: SystemConfig, model: ModelSpec) -> "GlobalWeightSync":
        rollout_gpus = config.rollout_gpus or config.trainer_gpus
        return cls(
            weight_bytes=model.weight_bytes,
            machines=max(1, rollout_gpus // GPUS_PER_MACHINE),
        )

    def sync_time(self) -> float:
        return gpu_direct_global_sync_time(self.weight_bytes, self.machines, self.link)


@dataclass
class RelayWeightSync:
    """Laminar's relay-worker weight distribution (§4), wrapping RelayService.

    The actor stalls only for the push to the master relay; rollouts pull the
    newest resident version from their colocated relay at any time.
    """

    relay: RelayService

    @classmethod
    def from_config(cls, config: SystemConfig, model: ModelSpec) -> "RelayWeightSync":
        from ..systems.relay import RelayService  # deferred: runtime sits below systems

        machines = max(1, config.rollout_gpus // GPUS_PER_MACHINE)
        return cls(
            relay=RelayService(
                model=model,
                rollout_machine_ids=list(range(machines)),
                rollout_tensor_parallel=config.rollout_tensor_parallel,
            )
        )

    def publish(self, version: int, time: float) -> WeightPublication:
        return self.relay.publish(version, time)

    def pull(self, machine_id: int, time: float, replica_id: int = -1) -> PullRecord:
        return self.relay.pull_latency(machine_id, time, replica_id)

    def sync_time(self) -> float:
        """Actor-side stall per update (the relay analogue of a global sync)."""
        return self.relay.actor_push_time()

"""Shared workload construction for every simulated system.

Laminar and the four baselines must consume byte-identical workloads so that
measured differences come purely from orchestration (§8 "alleviating
implementation bias").  :class:`WorkloadBundle` is the single place where the
workload objects — prompt dataset, trajectory factory, environment, decode
model, trainer cost model, experience buffer — are built and seeded.  The
seed layout (``seed`` .. ``seed + 4``) is part of the reproduction contract:
changing it changes every committed ``BENCH_*.json`` baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..data.experience_buffer import ExperienceBuffer
from ..llm.decode_model import DecodeModel
from ..llm.model_spec import ModelSpec
from ..rollout.environment import SimulatedEnvironment, TrajectoryFactory
from ..rollout.generation import ReplicaGenerationState
from ..rollout.replica_config import RolloutReplicaConfig
from ..trainer.trainer import Trainer
from ..workload.datasets import PromptDataset, TaskSpec


@dataclass
class WorkloadBundle:
    """Everything a system needs to generate, score and train on one workload.

    Seed layout (fixed):

    ======================  =================
    component               seed
    ======================  =================
    prompt dataset          ``seed``
    trajectory factory      ``seed + 1``
    environment / rewards   ``seed + 2``
    system-level sampling   ``seed + 3``
    experience buffer       ``seed + 4``
    ======================  =================
    """

    config: SystemConfig
    model: ModelSpec
    task: TaskSpec
    dataset: PromptDataset
    factory: TrajectoryFactory
    environment: SimulatedEnvironment
    rng: np.random.Generator
    trainer: Trainer
    buffer: ExperienceBuffer
    replica_config: RolloutReplicaConfig
    decode_model: DecodeModel

    @classmethod
    def from_config(cls, config: SystemConfig) -> "WorkloadBundle":
        model = config.model()
        task = config.task()
        replica_config = RolloutReplicaConfig(
            model=model,
            tensor_parallel=config.rollout_tensor_parallel,
            gpu=config.gpu,
            max_concurrency=config.max_concurrency_per_replica,
        )
        return cls(
            config=config,
            model=model,
            task=task,
            dataset=PromptDataset(task, seed=config.seed),
            factory=TrajectoryFactory(task, seed=config.seed + 1),
            environment=SimulatedEnvironment(task, seed=config.seed + 2),
            rng=np.random.default_rng(config.seed + 3),
            trainer=Trainer(
                model=model,
                parallel=config.trainer_parallel,
                config=config.trainer_config(),
            ),
            buffer=ExperienceBuffer(seed=config.seed + 4),
            replica_config=replica_config,
            decode_model=replica_config.decode_model(),
        )

    def make_replica(self, replica_id: int, weight_version: int = 0) -> ReplicaGenerationState:
        """Build one rollout replica over the shared decode model / KVCache.

        Persistent stragglers declared in ``config.straggler_factors`` attach
        here, so the degradation reaches every system (barrier and
        continuous) through the one replica factory they all share.  The
        straggling entity is a physical *slot*: barrier systems mint fresh
        replica ids every batch, so matching ``replica_id mod replica-count``
        pins the slowdown to the same position in every generation.
        """
        replica = ReplicaGenerationState(
            replica_id=replica_id,
            decode_model=self.decode_model,
            kvcache_config=self.replica_config.kvcache_config(),
            max_concurrency=self.config.max_concurrency_per_replica,
            weight_version=weight_version,
        )
        if self.config.straggler_factors:
            count = self.config.num_rollout_replicas()
            for straggler_id, factor in self.config.straggler_factors:
                if replica_id % count == straggler_id % count:
                    replica.set_slowdown(decode=factor, env=factor)
        return replica

"""Event-driven harness that runs rollout replicas as ``sim.engine`` processes.

Two execution shapes cover every registered system (:mod:`repro.systems`):

* **Batch generation behind a barrier** (verl, one-step, stream generation,
  semi-sync): each replica is drained to completion and the batch's global
  barrier is an :class:`~repro.sim.engine.AllOf` join over the replica
  processes (:func:`generation_barrier`).  Per-replica results are
  byte-identical to driving the replica with
  :meth:`ReplicaGenerationState.run_to_completion`, because the process
  performs exactly the same ``next_event_in`` / ``advance`` call sequence —
  the engine merely interleaves independent replicas on one clock.  Two
  drain modes exist: the plain :func:`drain_replica` sleeps relative
  timeouts, while :func:`drain_replica_anchored` lands every wake-up at
  ``origin + local clock`` exactly and can stream completions at their
  precise finish instants — the mode the pipelined systems build their pure
  event-time iteration clocks on.

* **Continuous generation** (AReaL, Laminar): every replica has a long-lived
  :func:`replica_driver` process that sleeps until the replica's own next
  internal event, refills it when idle, and reports completions through
  :class:`ReplicaFleet` hooks.  External actors (trainer, repack, failures)
  interrupt the driver via :meth:`Process.interrupt` whenever they mutate the
  replica (pull its trajectories, inject a stall), and the driver recomputes
  its next event — so simulated time jumps between real events instead of
  being stepped through lock-step rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..rollout.generation import ReplicaGenerationState
from ..sim.engine import Environment, Event, Interrupt, Process
from ..types import Trajectory
from .fleet import FleetStepper, fleet_generation_barrier, stepping_mode

#: Numerical slack when comparing simulated times (mirrors the replica engine).
_EPS = 1e-9


def _flush_decode_samples(tracer, replica: ReplicaGenerationState,
                          offset: float = 0.0) -> None:
    """Batched flush of the replica's buffered decode samples to the tracer.

    The SoA decode loop only appends ``(clock, tokens)`` rows; turning them
    into cumulative-token counter events happens here, once per phase
    boundary, so tracing adds no per-decode-window tracer calls.
    """
    samples = replica.take_trace_samples(offset)
    if samples:
        tracer.counter_batch(f"replica-{replica.replica_id}", "tokens", samples)


@dataclass
class GenerationOutcome:
    """Result of generating one batch of trajectories on a set of replicas."""

    duration: float
    trajectories: List[Trajectory]
    #: Per-replica generation time (time until that replica finished its share).
    per_replica_time: List[float]
    tokens_generated: int

    @property
    def bubble_time(self) -> float:
        """Aggregate idle GPU-time caused by the long tail (relative units).

        Mean idle span per replica: the gap between a replica finishing its
        share and the slowest replica finishing (the bubbles of Fig 3a-c).
        """
        if not self.per_replica_time:
            return 0.0
        slowest = max(self.per_replica_time)
        return float(np.mean([slowest - t for t in self.per_replica_time]))


def drain_replica(env: Environment, replica: ReplicaGenerationState) -> Generator:
    """Process body: drive ``replica`` until it has no work left.

    Returns ``(elapsed_local_time, completed_trajectories)`` exactly like
    :meth:`ReplicaGenerationState.run_to_completion`.

    The ``next_event_in`` / ``advance`` pair leans on the engine's
    incremental event accessors: both calls need the same (step time, min
    segment, earliest env return) reductions, and the engine caches them
    against its mutation counter, so the ``advance`` after the timeout pays
    O(1) for its first window instead of re-scanning the batch.
    """
    start = replica.clock
    tracer = env.tracer
    drain_begin = env.now
    if tracer.enabled:
        replica.enable_trace_sampling()
    completed: List[Trajectory] = []
    while replica.num_sequences:
        delta = replica.next_event_in()
        if delta is None:
            break
        yield env.timeout(delta)
        completed.extend(replica.advance(delta))
    completed.extend(replica.drain_completed())
    unique: Dict[int, Trajectory] = {t.traj_id: t for t in completed}
    if tracer.enabled:
        tracer.span(f"replica-{replica.replica_id}", "generate",
                    drain_begin, env.now,
                    args={"trajectories": len(unique),
                          "tokens": replica.stats.tokens_generated})
        _flush_decode_samples(tracer, replica, offset=drain_begin - start)
    return replica.clock - start, list(unique.values())


class EventBox:
    """One-slot broadcast event: processes sleep on :meth:`wait`, and
    :meth:`notify` wakes every current waiter at once.

    The box swaps in a fresh event *before* succeeding the old one, so a
    waiter re-yielding inside the same wake-up chain sleeps on the next
    occurrence instead of the already-fired event (the lost-wakeup idiom
    shared by the fleet wake-ups and the producer/consumer variants).
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._event: Event = env.event()

    def wait(self) -> Event:
        return self._event

    def notify(self) -> None:
        event, self._event = self._event, self.env.event()
        event.succeed()


#: Streamed-completion callback: ``(replica_position, completed)`` delivered
#: at the exact simulated instant the trajectories finished.
CompletionObserver = Callable[[int, List[Trajectory]], None]


def drain_replica_anchored(
    env: Environment,
    replica: ReplicaGenerationState,
    origin: float,
    on_complete: Optional[CompletionObserver] = None,
    replica_pos: int = 0,
) -> Generator:
    """Anchored variant of :func:`drain_replica`: the replica's local clock is
    authoritative and every engine wake-up lands at ``origin + clock`` exactly
    (:meth:`Environment.timeout_until`, no ``now + delay`` rounding).

    The synchronous systems define their stage clocks relative to the stage
    origin, so the barrier's join time is bit-identical to the per-replica
    local arithmetic: ``max_r fl(origin + clock_r)`` equals
    ``fl(origin + max_r clock_r)`` because rounding is monotone.

    ``on_complete`` additionally streams completions at their *exact* finish
    instants (``origin + finish_time``), including completions that fall
    strictly inside an advance window — the event feed the streaming
    mini-batch trainer clocks itself on.
    """
    start = replica.clock
    tracer = env.tracer
    if tracer.enabled:
        replica.enable_trace_sampling()
    completed: List[Trajectory] = []
    seen: Dict[int, Trajectory] = {}

    def publisher(at: float, batch: List[Trajectory]) -> Generator:
        yield env.timeout_until(at)
        on_complete(replica_pos, batch)

    def publish(done: List[Trajectory]) -> List[Trajectory]:
        fresh = [t for t in done if t.traj_id not in seen]
        for t in fresh:
            seen[t.traj_id] = t
        if fresh and on_complete is not None:
            # One publication event per distinct finish instant, in order.
            groups: List[Tuple[float, List[Trajectory]]] = []
            for t in fresh:
                if groups and groups[-1][0] == t.finish_time:
                    groups[-1][1].append(t)
                else:
                    groups.append((t.finish_time, [t]))
            for finish, batch in groups:
                at = origin + finish
                if at <= env.now:
                    on_complete(replica_pos, batch)
                else:
                    env.process(publisher(at, batch),
                                name=f"publish-{replica.replica_id}")
        return fresh

    while replica.num_sequences:
        delta = replica.next_event_in()
        if delta is None:
            break
        done = replica.advance(delta)
        completed.extend(publish(done))
        yield env.timeout_until(origin + replica.clock)
    completed.extend(publish(replica.drain_completed()))
    if tracer.enabled:
        tracer.span(f"replica-{replica.replica_id}", "generate",
                    origin + start, origin + replica.clock,
                    args={"trajectories": len(completed),
                          "tokens": replica.stats.tokens_generated})
        _flush_decode_samples(tracer, replica, offset=origin)
    return replica.clock - start, completed


def generation_barrier(
    env: Environment,
    replicas: Sequence[ReplicaGenerationState],
    origin: Optional[float] = None,
    on_complete: Optional[CompletionObserver] = None,
) -> Generator:
    """Sub-process: run every replica to completion behind an ``AllOf`` join.

    This is the global barrier of the batch-synchronous systems: the batch is
    done only when the slowest replica's process terminates.  Trajectories are
    collected replica-major (replica 0's completions first), matching the
    scoring order the reward RNG stream depends on.

    With ``origin`` set, the replicas run as anchored drains
    (:func:`drain_replica_anchored`): their wake-ups land at
    ``origin + local clock`` and completions may be streamed to
    ``on_complete`` at their exact finish instants — the mode the pipelined
    systems use so the barrier's join time equals the local stage arithmetic
    bit for bit.

    Under the default ``"fleet"`` stepping mode
    (:func:`repro.runtime.fleet.stepping_mode`) the whole barrier runs as a
    single fleet drain (:func:`repro.runtime.fleet.fleet_generation_barrier`)
    instead of N engine processes; the per-replica call sequences and every
    externally observable event time are identical by contract.
    """
    if stepping_mode() == "fleet":
        outcome = yield from fleet_generation_barrier(env, replicas, origin, on_complete)
        return outcome
    if origin is None:
        processes = [
            env.process(drain_replica(env, replica), name=f"drain-{replica.replica_id}")
            for replica in replicas
        ]
    else:
        processes = [
            env.process(
                drain_replica_anchored(env, replica, origin, on_complete, pos),
                name=f"drain-{replica.replica_id}",
            )
            for pos, replica in enumerate(replicas)
        ]
    if processes:
        yield env.all_of(processes)
    per_replica_time: List[float] = []
    trajectories: List[Trajectory] = []
    tokens = 0
    for process, replica in zip(processes, replicas):
        duration, completed = process.value
        per_replica_time.append(duration)
        trajectories.extend(completed)
        tokens += replica.stats.tokens_generated
    return GenerationOutcome(
        duration=max(per_replica_time) if per_replica_time else 0.0,
        trajectories=trajectories,
        per_replica_time=per_replica_time,
        tokens_generated=tokens,
    )


class ReplicaFleet:
    """Book-keeping and wake-up plumbing for a fleet of continuous replicas.

    Subclasses provide the policy hooks:

    * :meth:`replica` — resolve a replica id (``None`` retires the driver,
      e.g. after a machine failure);
    * :meth:`refill` — give an idle replica new work (may inject a weight-pull
      stall first);
    * :meth:`on_advance` — consume an advance step's completions (score,
      buffer, record tokens).
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._drivers: Dict[int, Process] = {}
        self._refill_box = EventBox(env)
        self._data_box = EventBox(env)
        self._stepper: Optional[FleetStepper] = None

    # -- driver lifecycle ---------------------------------------------------
    def spawn(self, replica_id: int) -> Process:
        """Start driving ``replica_id``.

        Under the ``"fleet"`` stepping mode all members share one
        :class:`repro.runtime.fleet.FleetStepper` process; ``"process"`` mode
        keeps the reference shape of one :func:`replica_driver` per replica.
        """
        if stepping_mode() == "fleet":
            if self._stepper is None:
                self._stepper = FleetStepper(self.env, self)
            return self._stepper.spawn(replica_id)
        process = self.env.process(
            replica_driver(self.env, replica_id, self), name=f"replica-{replica_id}"
        )
        self._drivers[replica_id] = process
        return process

    def touch(self, replica_ids: Optional[Sequence[int]] = None) -> None:
        """Interrupt drivers so they recompute their next event.

        Called whenever an external actor mutated replica state under a
        sleeping driver: a repack moved trajectories, a stall was injected, a
        weight update arrived.  ``None`` touches every driver.
        """
        if self._stepper is not None:
            ids = (
                self._stepper.live_ids() if replica_ids is None else list(replica_ids)
            )
            self._stepper.touch(ids)
            return
        ids = list(self._drivers) if replica_ids is None else list(replica_ids)
        for replica_id in ids:
            process = self._drivers.get(replica_id)
            if process is not None and process.is_alive and process is not self.env.active_process:
                process.interrupt()

    # -- wake-up signals ----------------------------------------------------
    def refill_signal(self) -> Event:
        """Event a driver sleeps on when its replica has no work and no budget."""
        return self._refill_box.wait()

    def data_event(self) -> Event:
        """Event a trainer sleeps on while waiting for buffered experiences."""
        return self._data_box.wait()

    def notify_refill(self) -> None:
        """Wake every driver blocked on the refill signal (budget freed)."""
        self._refill_box.notify()
        if self._stepper is not None:
            self._stepper.notify_refill()

    def notify_data(self) -> None:
        """Wake the trainer: the experience buffer can satisfy a batch."""
        self._data_box.notify()

    # -- policy hooks (subclass responsibility) ------------------------------
    def replica(self, replica_id: int) -> Optional[ReplicaGenerationState]:
        raise NotImplementedError

    def refill(self, replica: ReplicaGenerationState) -> None:
        raise NotImplementedError

    def on_advance(self, replica: ReplicaGenerationState, completed: List[Trajectory]) -> None:
        raise NotImplementedError

    # -- helpers -------------------------------------------------------------
    def catch_up(self, replica: ReplicaGenerationState) -> None:
        """Advance ``replica`` to the current simulation time.

        External actors call this before inspecting or mutating a replica
        whose driver is mid-sleep, so snapshots (KVCache utilisation, request
        counts, streamed tokens) are exact at the current instant.
        """
        behind = self.env.now - replica.clock
        if behind > _EPS:
            self.on_advance(replica, replica.advance(behind))
            if self.env.tracer.enabled:
                _flush_decode_samples(self.env.tracer, replica)


def replica_driver(env: Environment, replica_id: int, fleet: ReplicaFleet) -> Generator:
    """Process body: event-driven driver for one continuously-fed replica.

    The driver keeps the invariant ``replica.clock == env.now`` whenever the
    replica is actively decoding; a weight-pull or re-prefill stall may push
    the local clock *ahead* of simulated time, in which case the driver simply
    sleeps until the stall has elapsed.  Interrupts mean "something changed,
    recompute" and carry no payload.  Recomputation is cheap: the engine's
    next-event reductions are cached against its mutation counter, so a driver
    woken without an intervening replica mutation (e.g. a broadcast ``touch``)
    re-derives its next event in O(1) rather than re-scanning the decode batch.
    """
    tracer = env.tracer
    if tracer.enabled:
        seeded = fleet.replica(replica_id)
        if seeded is not None:
            seeded.enable_trace_sampling()
    while True:
        replica = fleet.replica(replica_id)
        if replica is None:
            return  # replica retired (machine failure)
        behind = env.now - replica.clock
        if behind > _EPS:
            # An external actor let simulated time pass (or this driver was
            # interrupted mid-sleep): consume the elapsed window first.
            fleet.on_advance(replica, replica.advance(behind))
            if tracer.enabled:
                _flush_decode_samples(tracer, replica)
            continue
        if replica.is_idle:
            fleet.refill(replica)
            if replica.is_idle:
                try:
                    yield fleet.refill_signal()
                except Interrupt:
                    pass
                continue
        ahead = max(0.0, replica.clock - env.now)
        delta = replica.next_event_in()
        if delta is None:
            if ahead <= _EPS:
                # Sequences exist but none can run (queued behind a full
                # KVCache with no decoder live): wait for outside help.
                try:
                    yield fleet.refill_signal()
                except Interrupt:
                    pass
                continue
            wait = ahead  # stalled: let the stall elapse, then re-evaluate
        else:
            wait = ahead + delta
        try:
            yield env.timeout(wait)
        except Interrupt:
            continue
        behind = env.now - replica.clock
        if behind > _EPS:
            fleet.on_advance(replica, replica.advance(behind))
            if tracer.enabled:
                _flush_decode_samples(tracer, replica)

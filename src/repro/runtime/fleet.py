"""Fleet-stepped execution: one engine process drives all replicas.

The per-replica harness processes (:func:`repro.runtime.drain_replica`,
:func:`repro.runtime.replica_driver`) cost one live generator, one heap event
per wake-up and one interrupt per ``touch`` **per replica** — at datacenter
scale (thousands of replicas) the ``sim.engine`` scheduling tier itself
becomes the hot path.  This module replaces those N processes with a single
fleet process per scenario:

* :func:`fleet_generation_barrier` — the batch-synchronous barrier.  Because
  no external actor mutates a barrier replica mid-drain (each batch gets
  fresh replicas), the entire multi-replica drain is simulated eagerly in
  plain Python at barrier start — every replica receives the **identical
  sequence of ``next_event_in`` / ``advance`` calls** the per-replica drain
  processes would have issued — and the engine only sees the events that are
  externally observable: one publisher per distinct completion instant
  (streamed systems) and one join wake-up at the slowest replica's finish
  time.

* :class:`FleetStepper` — the continuous systems' replacement for N
  :func:`replica_driver` processes.  Per-replica wake-ups live in a
  :class:`FleetState` SoA block (packed absolute wake times + FIFO order
  stamps mirroring engine event ids); the stepper sleeps until the fleet's
  earliest wake (``FleetState.next_event_in``) and services due replicas in
  exactly the (time, order) sequence the engine heap would have used.
  External actors still interact per replica: ``touch`` marks the replica
  dirty and delivers **one** interrupt for the whole fleet, ``notify_refill``
  wakes waiters in wait order, and ``catch_up`` remains a synchronous call.

Bit-identity contract
---------------------
Each replica observes the same ``(next_event_in, advance)`` call sequence,
at the same simulated instants, as under the per-replica processes; the
fleet layer re-organises *scheduling*, never replica arithmetic.  Residual
freedom exists only where the engine's FIFO tie-break ordered events of
*different* replicas at exactly equal float times — orderings the committed
``BENCH_*.json`` gates pin at ``--tolerance 0`` and
``tests/test_fleet_equivalence.py`` fuzzes directly against the per-replica
stepping mode (:func:`stepping_mode` toggles between them).
"""

from __future__ import annotations

import heapq
import itertools
import math
from contextlib import contextmanager
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..rollout.generation import ReplicaBatchView, ReplicaGenerationState
from ..sim.engine import Environment, Interrupt, Process
from ..types import Trajectory

#: Numerical slack when comparing simulated times (mirrors the replica engine).
_EPS = 1e-9

#: Initial replica capacity of the FleetState SoA block.
_INITIAL_REPLICAS = 16

# -- stepping-mode toggle ----------------------------------------------------

#: "fleet" — one fleet process per scenario (the default);
#: "process" — one engine process per replica (the reference harness shape).
_STEPPING_MODE = "fleet"


def stepping_mode() -> str:
    """The active harness stepping mode ("fleet" or "process")."""
    return _STEPPING_MODE


def set_stepping_mode(mode: str) -> None:
    global _STEPPING_MODE
    if mode not in ("fleet", "process"):
        raise ValueError(f"unknown stepping mode {mode!r}")
    _STEPPING_MODE = mode


@contextmanager
def stepping(mode: str):
    """Temporarily select a stepping mode (the equivalence tests' lever)."""
    previous = _STEPPING_MODE
    set_stepping_mode(mode)
    try:
        yield
    finally:
        set_stepping_mode(previous)


# -- FleetState: packed per-replica scheduling block -------------------------


class FleetState:
    """SoA block of per-replica fleet scheduling state.

    Replica-id-indexed offsets map each member to a dense index; the packed
    arrays hold its next absolute wake time (``inf`` = no timer) and the FIFO
    order stamp that mirrors the engine's event-id tie-break.  A lazy heap
    over ``(wake, order, index)`` gives O(log n) pops in exactly the
    (time, FIFO) order N per-replica timeout events would have fired in.
    """

    def __init__(self) -> None:
        self.wake = np.full(_INITIAL_REPLICAS, math.inf, dtype=np.float64)
        self.order = np.zeros(_INITIAL_REPLICAS, dtype=np.int64)
        self.n = 0
        self._heap: List[Tuple[float, int, int]] = []
        self._counter = itertools.count()
        self._index_of: Dict[int, int] = {}
        self._ids: List[int] = []

    def add_replica(self, replica_id: int) -> int:
        """Register a member; returns its dense index into the block."""
        existing = self._index_of.get(replica_id)
        if existing is not None:
            return existing
        index = self.n
        if index == len(self.wake):
            capacity = 2 * len(self.wake)
            grown = np.full(capacity, math.inf, dtype=np.float64)
            grown[: index] = self.wake
            self.wake = grown
            grown_order = np.zeros(capacity, dtype=np.int64)
            grown_order[: index] = self.order
            self.order = grown_order
        self.n += 1
        self._index_of[replica_id] = index
        self._ids.append(replica_id)
        return index

    def index_of(self, replica_id: int) -> int:
        return self._index_of[replica_id]

    def id_at(self, index: int) -> int:
        return self._ids[index]

    def replica_ids(self) -> List[int]:
        """Member replica ids in registration order."""
        return list(self._ids)

    def schedule(self, index: int, at: float) -> None:
        """Arm (or re-arm) a member's wake-up at absolute time ``at``."""
        stamp = next(self._counter)
        self.wake[index] = at
        self.order[index] = stamp
        heapq.heappush(self._heap, (at, stamp, index))

    def clear(self, index: int) -> None:
        """Disarm a member's wake-up (stale heap entries die lazily)."""
        self.wake[index] = math.inf

    def _peek(self) -> Optional[Tuple[float, int, int]]:
        heap = self._heap
        while heap:
            at, stamp, index = heap[0]
            if self.wake[index] == at and self.order[index] == stamp:
                return heap[0]
            heapq.heappop(heap)  # superseded or disarmed entry
        return None

    def next_event_in(self, now: float) -> Optional[float]:
        """Time until the fleet's earliest armed wake-up (None if none)."""
        entry = self._peek()
        if entry is None:
            return None
        return entry[0] - now

    def next_wake(self) -> Optional[float]:
        """Absolute time of the fleet's earliest armed wake-up (None if none).

        Returns the exact float stored by :meth:`schedule` — the stepper
        sleeps on this value directly so wake-ups land bit-identically to the
        engine's own ``now + delay`` timeout arithmetic.
        """
        entry = self._peek()
        if entry is None:
            return None
        return entry[0]

    def pop_due(self, now: float) -> Optional[int]:
        """Pop and disarm the earliest member due at or before ``now``.

        Members come out in ``(wake time, order stamp)`` order — the exact
        sequence the engine heap would have resumed their driver processes.
        """
        entry = self._peek()
        if entry is None or entry[0] > now:
            return None
        heapq.heappop(self._heap)
        index = entry[2]
        self.wake[index] = math.inf
        return index

    def pop_due_batch(self, now: float) -> List[int]:
        """Pop and disarm every member due at the earliest wake time ``<= now``.

        Returns dense indices in ``(wake time, order stamp)`` order — engine
        FIFO for members whose wakes tie at the *exact* same float instant —
        or an empty list when nothing is due.  Only exact ties are grouped:
        a member due one ulp later stays armed, because the engine heap would
        have interleaved arbitrary other events between the two wake-ups.
        Superseded and disarmed heap entries are skipped lazily, exactly as
        :meth:`pop_due` skips them.
        """
        entry = self._peek()
        if entry is None or entry[0] > now:
            return []
        at = entry[0]
        due: List[int] = []
        while True:
            entry = self._peek()
            if entry is None or entry[0] != at:
                break
            heapq.heappop(self._heap)
            index = entry[2]
            self.wake[index] = math.inf
            due.append(index)
        return due


# -- batch-synchronous fleet barrier ----------------------------------------


def _publisher(env: Environment, at: float, replica_pos: int,
               batch: List[Trajectory], on_complete) -> Generator:
    yield env.timeout_until(at)
    on_complete(replica_pos, batch)


def fleet_generation_barrier(
    env: Environment,
    replicas: Sequence[ReplicaGenerationState],
    origin: Optional[float] = None,
    on_complete=None,
) -> Generator:
    """Fleet-stepped :func:`repro.runtime.generation_barrier` body.

    Drains every replica with the identical ``next_event_in`` / ``advance``
    call sequence the per-replica drain processes would issue — plain mode
    accumulates each replica's own ``t = t + delta`` float chain (the
    engine's ``now + delay`` arithmetic), anchored mode wakes on the
    replica's local clock — but issues the whole drain eagerly, scheduling
    only the externally observable events: streamed-completion publishers at
    their exact instants and a single ``timeout_until`` at the barrier join
    time ``max_r(final_r)``.

    Barrier drains are mutually independent by construction (replicas
    interact only at the join), so the whole fleet is drained *together*
    through one :class:`~repro.rollout.generation.ReplicaBatchView`: each
    round asks every still-live lane for its next event with one stacked
    reduction and advances all of them with one grouped kernel sweep, while
    each lane's float chain (``t = t + delta`` / ``fl(origin + clock)``)
    stays per-lane and bit-identical.  Tracing forces the wholly per-replica
    path (the view refuses to fuse armed lanes), as do lanes with waiting
    queues, active slowdowns, or KV pools the drain could overflow.
    """
    from .harness import GenerationOutcome, _flush_decode_samples

    tracer = env.tracer
    barrier_start = env.now
    if tracer.enabled:
        for replica in replicas:
            replica.enable_trace_sampling()

    # (call_time, replica_pos, seq_no, at, batch): one row per publication,
    # keyed like the per-replica publishers would have been created.
    publications: List[Tuple[float, int, int, float, List[Trajectory]]] = []
    num = len(replicas)
    starts = [replica.clock for replica in replicas]
    completed_l: List[List[Trajectory]] = [[] for _ in range(num)]
    anchored = origin is not None
    if anchored:
        seen_l: List[Dict[int, Trajectory]] = [{} for _ in range(num)]
        seq_no_l = [0] * num
        call_time_l = [barrier_start] * num
    else:
        t_chain = [barrier_start] * num

    def publish(pos: int, done: List[Trajectory],
                call_time: float) -> List[Trajectory]:
        seen = seen_l[pos]
        fresh = [t for t in done if t.traj_id not in seen]
        for traj in fresh:
            seen[traj.traj_id] = traj
        if fresh and on_complete is not None:
            groups: List[Tuple[float, List[Trajectory]]] = []
            for traj in fresh:
                if groups and groups[-1][0] == traj.finish_time:
                    groups[-1][1].append(traj)
                else:
                    groups.append((traj.finish_time, [traj]))
            for finish, batch in groups:
                publications.append(
                    (call_time, pos, seq_no_l[pos], origin + finish, batch)
                )
                seq_no_l[pos] += 1
        return fresh

    view = ReplicaBatchView(replicas, fuse=not tracer.enabled)
    active = [pos for pos in range(num) if view.lane_live(pos)]
    while active:
        deltas = view.next_event_in_many(active)
        round_pos: List[int] = []
        dts: List[float] = []
        for pos, delta in zip(active, deltas):
            if delta is None:
                continue  # stuck lane (inadmissible queue): stop draining it
            round_pos.append(pos)
            dts.append(delta)
        done_lists = view.advance_many(round_pos, dts)
        if anchored:
            for pos, done in zip(round_pos, done_lists):
                completed_l[pos].extend(publish(pos, done, call_time_l[pos]))
                call_time_l[pos] = origin + view.lane_clock(pos)
        else:
            for pos, done, dt in zip(round_pos, done_lists, dts):
                t_chain[pos] = t_chain[pos] + dt
                completed_l[pos].extend(done)
        active = [pos for pos in round_pos if view.lane_live(pos)]
    view.settle()

    per_replica_time: List[float] = []
    trajectories: List[Trajectory] = []
    finals: List[float] = []
    counts: List[int] = []
    tokens = 0
    for pos, replica in enumerate(replicas):
        completed = completed_l[pos]
        if anchored:
            completed.extend(
                publish(pos, replica.drain_completed(), call_time_l[pos])
            )
            final = origin + replica.clock
        else:
            completed.extend(replica.drain_completed())
            unique: Dict[int, Trajectory] = {traj.traj_id: traj for traj in completed}
            completed = list(unique.values())
            final = t_chain[pos]
        per_replica_time.append(replica.clock - starts[pos])
        trajectories.extend(completed)
        counts.append(len(completed))
        tokens += replica.stats.tokens_generated
        finals.append(final)

    if tracer.enabled:
        for pos, replica in enumerate(replicas):
            if origin is None:
                span_begin, span_end = barrier_start, finals[pos]
                flush_offset = barrier_start - starts[pos]
            else:
                span_begin = origin + starts[pos]
                span_end = origin + replica.clock
                flush_offset = origin
            tracer.span(f"replica-{replica.replica_id}", "generate",
                        span_begin, span_end,
                        args={"trajectories": counts[pos],
                              "tokens": replica.stats.tokens_generated})
            _flush_decode_samples(tracer, replica, offset=flush_offset)

    if on_complete is not None and publications:
        # Publisher creation order = the engine order of the publish call
        # sites: ascending call time, replicas in spawn order at the shared
        # barrier-start instant, per-replica publication order within a call.
        publications.sort(key=lambda p: (p[0], p[1], p[2]))
        for call_time, pos, _seq_no, at, batch in publications:
            deliver_at = at if at > call_time else call_time
            if deliver_at <= env.now:
                on_complete(pos, batch)
            else:
                env.process(_publisher(env, deliver_at, pos, batch, on_complete),
                            name=f"publish-{pos}")

    if replicas:
        yield env.timeout_until(max(finals))
    return GenerationOutcome(
        duration=max(per_replica_time) if per_replica_time else 0.0,
        trajectories=trajectories,
        per_replica_time=per_replica_time,
        tokens_generated=tokens,
    )


# -- continuous fleet stepper ------------------------------------------------

#: FleetStepper per-replica states.
_RUNNING = 0       #: armed timer in FleetState (or about to be serviced)
_WAIT_REFILL = 1   #: parked until notify_refill / touch
_RETIRED = 2       #: replica resolved to None (machine failure)


class FleetStepper:
    """Single-process replacement for N :func:`replica_driver` processes.

    One engine process sleeps until the earliest member wake-up in the
    :class:`FleetState` block and replays, for each due replica, exactly the
    driver loop body: consume elapsed time (``advance`` + ``on_advance``),
    refill when idle, park on the refill signal when there is no work, and
    re-arm ``wake = now + (ahead + delta)`` with the same float arithmetic
    the engine's relative timeouts use.  ``touch`` delivers one prio-0
    interrupt for the whole fleet and services the touched replicas in call
    order (the order their per-replica interrupts would have fired);
    ``notify_refill`` wakes parked members in wait order, matching the
    :class:`repro.runtime.EventBox` callback order.
    """

    def __init__(self, env: Environment, fleet) -> None:
        self.env = env
        self.fleet = fleet
        self.state = FleetState()
        self._rstate: Dict[int, int] = {}
        #: Immediate-service FIFO: spawns, touches and refill wake-ups in
        #: call order (serviced before due timers, as prio-0 interrupts were).
        self._service_queue: List[int] = []
        self._wait_refill: List[int] = []
        self._servicing: Optional[int] = None
        self._process: Optional[Process] = None
        self._poked = False

    # -- membership ---------------------------------------------------------
    def spawn(self, replica_id: int) -> Process:
        self.state.add_replica(replica_id)
        self._rstate[replica_id] = _RUNNING
        self._service_queue.append(replica_id)
        if self._process is None or not self._process.is_alive:
            self._process = self.env.process(self._run(), name="fleet-stepper")
        else:
            self._poke()
        return self._process

    def live_ids(self) -> List[int]:
        """Unretired members in spawn order (the touch-broadcast order)."""
        return [rid for rid in self.state.replica_ids()
                if self._rstate.get(rid) != _RETIRED]

    # -- external signals ---------------------------------------------------
    def touch(self, replica_ids: Sequence[int]) -> None:
        queued = False
        for replica_id in replica_ids:
            if self._rstate.get(replica_id, _RETIRED) == _RETIRED:
                continue
            if replica_id == self._servicing:
                continue  # a driver never interrupts itself
            if self._rstate[replica_id] == _WAIT_REFILL:
                self._wait_refill.remove(replica_id)
                self._rstate[replica_id] = _RUNNING
            self._service_queue.append(replica_id)
            queued = True
        if queued:
            self._poke()

    def notify_refill(self) -> None:
        if not self._wait_refill:
            return
        waiters, self._wait_refill = self._wait_refill, []
        for replica_id in waiters:
            self._rstate[replica_id] = _RUNNING
        self._service_queue.extend(waiters)
        self._poke()

    def _poke(self) -> None:
        """Wake the sleeping stepper once (idempotent within one wake)."""
        process = self._process
        if (
            not self._poked
            and process is not None
            and process.is_alive
            and process is not self.env.active_process
        ):
            self._poked = True
            process.interrupt()

    # -- the fleet process ---------------------------------------------------
    def _run(self) -> Generator:
        env = self.env
        state = self.state
        while True:
            self._poked = False
            while self._service_queue:
                self._service(self._service_queue.pop(0))
            due = state.pop_due_batch(env.now)
            if due:
                if len(due) > 1:
                    self._service_group([state.id_at(i) for i in due])
                else:
                    self._service(state.id_at(due[0]))
                continue
            if self._service_queue:
                continue
            wake = state.next_wake()
            if wake is None:
                # No armed timers: park until an external poke.
                try:
                    yield env.event()
                except Interrupt:
                    continue
            else:
                try:
                    yield env.timeout_until(wake)
                except Interrupt:
                    continue

    def _service_group(self, replica_ids: List[int]) -> None:
        """Service several members due at the same exact wake instant.

        All members were popped from the heap in ``(at, stamp)`` order — the
        order :meth:`FleetState.pop_due` would have yielded them one at a
        time.  When every member is fusable the elapsed-time consumption
        (``advance(now - clock)``) runs through one grouped
        :class:`~repro.rollout.generation.ReplicaBatchView` sweep; the
        per-member driver-loop continuation (``on_advance`` delivery, refill,
        park, re-arm) then replays in FIFO member order with the service
        queue drained between members, exactly as the per-replica servicing
        would have interleaved it.  Whenever interleaving constraints bind —
        tracing armed, pending interrupts, a retired or caught-up member, or
        any lane the view refuses to fuse (waiting queue, slowdown, KV pool
        the sweep could overflow) — the whole group falls back to sequential
        per-member servicing.
        """
        env = self.env
        fleet = self.fleet

        def sequential() -> None:
            for replica_id in replica_ids:
                self._service(replica_id)
                while self._service_queue:
                    self._service(self._service_queue.pop(0))

        if env.tracer.enabled or self._service_queue:
            sequential()
            return
        replicas = []
        for replica_id in replica_ids:
            if self._rstate.get(replica_id, _RETIRED) != _RUNNING:
                sequential()
                return
            replica = fleet.replica(replica_id)
            if replica is None or env.now - replica.clock <= _EPS:
                sequential()
                return
            replicas.append(replica)
        view = ReplicaBatchView(replicas, fuse=True)
        if not view.all_fused:
            view.settle()
            sequential()
            return
        dts = [env.now - replica.clock for replica in replicas]
        done_lists = view.advance_many(list(range(len(replicas))), dts)
        view.settle()
        for replica_id, replica, done in zip(replica_ids, replicas, done_lists):
            self._servicing = replica_id
            try:
                fleet.on_advance(replica, done)
            finally:
                self._servicing = None
            if self._rstate.get(replica_id, _RETIRED) == _RUNNING:
                self._service(replica_id)
            while self._service_queue:
                self._service(self._service_queue.pop(0))

    def _service(self, replica_id: int) -> None:
        """Run one driver-loop pass for ``replica_id`` until it sleeps."""
        env = self.env
        fleet = self.fleet
        tracer = env.tracer
        from .harness import _flush_decode_samples

        if self._rstate.get(replica_id, _RETIRED) == _RETIRED:
            return
        self._servicing = replica_id
        try:
            while True:
                replica = fleet.replica(replica_id)
                if replica is None:
                    self._retire(replica_id)
                    return
                if tracer.enabled:
                    replica.enable_trace_sampling()
                behind = env.now - replica.clock
                if behind > _EPS:
                    fleet.on_advance(replica, replica.advance(behind))
                    if tracer.enabled:
                        _flush_decode_samples(tracer, replica)
                    continue
                if replica.is_idle:
                    fleet.refill(replica)
                    if replica.is_idle:
                        self._park(replica_id)
                        return
                ahead = max(0.0, replica.clock - env.now)
                delta = replica.next_event_in()
                if delta is None:
                    if ahead <= _EPS:
                        # Sequences exist but none can run: wait for help.
                        self._park(replica_id)
                        return
                    wait = ahead  # stalled: let the stall elapse
                else:
                    wait = ahead + delta
                self._rstate[replica_id] = _RUNNING
                self.state.schedule(self.state.index_of(replica_id), env.now + wait)
                return
        finally:
            self._servicing = None

    def _park(self, replica_id: int) -> None:
        self._rstate[replica_id] = _WAIT_REFILL
        self._wait_refill.append(replica_id)
        self.state.clear(self.state.index_of(replica_id))

    def _retire(self, replica_id: int) -> None:
        self._rstate[replica_id] = _RETIRED
        self.state.clear(self.state.index_of(replica_id))
        if replica_id in self._wait_refill:
            self._wait_refill.remove(replica_id)

"""repro: reproduction of "Laminar: A Scalable Asynchronous RL Post-Training Framework".

The package is organised as:

* :mod:`repro.sim` — discrete-event simulation substrate (engine, cluster,
  network, KVCache).
* :mod:`repro.llm` — Qwen2.5 architecture specs and roofline latency models.
* :mod:`repro.workload` — heavy-tailed response-length / environment-latency
  workload generators and synthetic datasets.
* :mod:`repro.data` — prompt pool, partial-response pool, experience buffer.
* :mod:`repro.rollout` — the replica generation engine shared by every system.
* :mod:`repro.trainer` — actor training cost model and iteration accounting.
* :mod:`repro.runtime` — shared execution substrate: seeded workload bundle,
  completion pipeline, weight-sync components, the DES harness.
* :mod:`repro.systems` — the unified system registry: the ``System`` protocol,
  Laminar and its component library (relays, repack, rollout manager,
  staleness tracking, fault tolerance), the §8 baselines (verl, one-step
  staleness, stream generation, AReaL) and the composed variants
  (``laminar_norepack``, ``semi_sync``).
* :mod:`repro.algorithms` — GRPO / Decoupled PPO on a synthetic reasoning task.
* :mod:`repro.experiments` — one driver per table/figure of the evaluation.
* :mod:`repro.bench` — scenario registry, parallel matrix benchmark runner,
  persisted + regression-gated results (``repro-bench`` CLI).
* :mod:`repro.obs` — deterministic trace + telemetry layer: simulated-time
  tracer/recorder, Chrome-trace (Perfetto) export, structured run logging.
"""

from .config import SystemConfig, default_trainer_parallel
from .types import Experience, Prompt, Trajectory, WeightVersion

__version__ = "1.4.0"

#: Benchmark API re-exported lazily (PEP 562) so that ``import repro`` does
#: not pull in the full experiments stack.
_BENCH_EXPORTS = (
    "ScenarioConfig",
    "ScenarioResult",
    "SCENARIOS",
    "all_scenarios",
    "get_scenario",
    "select_scenarios",
    "register_scenario",
    "run_scenarios",
    "compare_runs",
    "save_artifact",
    "load_artifact",
    # Execution backends (repro.bench.exec).
    "Coordinator",
    "QueueBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_backend",
    "run_worker",
)

#: Observability API re-exported lazily from :mod:`repro.obs`.
_OBS_EXPORTS = (
    "TraceRecorder",
    "use_tracer",
    "current_tracer",
    "chrome_trace",
    "write_chrome_trace",
    "summarise_trace",
    "configure_logging",
    "get_run_logger",
)

__all__ = [
    "SystemConfig",
    "default_trainer_parallel",
    "Experience",
    "Prompt",
    "Trajectory",
    "WeightVersion",
    "bench",
    "obs",
    "__version__",
    *_BENCH_EXPORTS,
    *_OBS_EXPORTS,
]


def __getattr__(name):
    if name == "obs" or name in _OBS_EXPORTS:
        import importlib

        obs = importlib.import_module(".obs", __name__)
        if name == "obs":
            return obs
        return getattr(obs, name)
    if name == "bench" or name in _BENCH_EXPORTS:
        # NOT ``from . import bench``: its fromlist handling probes
        # ``hasattr(repro, "bench")``, which re-enters this __getattr__ and
        # recurses before the submodule import ever starts.
        import importlib

        bench = importlib.import_module(".bench", __name__)
        if name == "bench":
            return bench
        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""repro: reproduction of "Laminar: A Scalable Asynchronous RL Post-Training Framework".

The package is organised as:

* :mod:`repro.sim` — discrete-event simulation substrate (engine, cluster,
  network, KVCache).
* :mod:`repro.llm` — Qwen2.5 architecture specs and roofline latency models.
* :mod:`repro.workload` — heavy-tailed response-length / environment-latency
  workload generators and synthetic datasets.
* :mod:`repro.data` — prompt pool, partial-response pool, experience buffer.
* :mod:`repro.rollout` — the replica generation engine shared by every system.
* :mod:`repro.trainer` — actor training cost model and iteration accounting.
* :mod:`repro.core` — Laminar itself: relay workers, repack, rollout manager,
  staleness tracking, fault tolerance, the end-to-end system.
* :mod:`repro.baselines` — verl, one-step staleness, stream generation, AReaL.
* :mod:`repro.algorithms` — GRPO / Decoupled PPO on a synthetic reasoning task.
* :mod:`repro.experiments` — one driver per table/figure of the evaluation.
"""

from .config import SystemConfig, default_trainer_parallel
from .types import Experience, Prompt, Trajectory, WeightVersion

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "default_trainer_parallel",
    "Experience",
    "Prompt",
    "Trajectory",
    "WeightVersion",
    "__version__",
]

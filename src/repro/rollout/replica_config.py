"""Helpers for sizing rollout replicas from model + GPU + TP configuration."""

from __future__ import annotations

from dataclasses import dataclass

from ..llm.decode_model import DecodeModel
from ..llm.model_spec import ModelSpec
from ..llm.parallelism import rollout_free_memory_for_kvcache
from ..sim.cluster import GPUSpec, H800
from ..sim.kvcache import DEFAULT_BLOCK_SIZE, KVCacheConfig, kvcache_blocks_for_memory


@dataclass(frozen=True)
class RolloutReplicaConfig:
    """Static configuration of one rollout replica (one TP group)."""

    model: ModelSpec
    tensor_parallel: int
    gpu: GPUSpec = H800
    max_concurrency: int = 1024
    kvcache_headroom: float = 0.1

    def __post_init__(self) -> None:
        if self.tensor_parallel <= 0:
            raise ValueError("tensor_parallel must be positive")
        if self.max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")

    def decode_model(self) -> DecodeModel:
        return DecodeModel(
            model=self.model, gpu=self.gpu, tensor_parallel=self.tensor_parallel
        )

    def kvcache_config(self) -> KVCacheConfig:
        """KVCache sizing: free memory after the weight shard, across the TP group."""
        per_gpu_free = rollout_free_memory_for_kvcache(
            self.model,
            self.gpu.memory_bytes,
            self.tensor_parallel,
            activation_reserve_fraction=self.kvcache_headroom,
        )
        total_free = per_gpu_free * self.tensor_parallel
        blocks = kvcache_blocks_for_memory(
            total_free, self.model.kv_bytes_per_token, DEFAULT_BLOCK_SIZE
        )
        if blocks <= 0:
            raise ValueError(
                f"{self.model.name} does not fit on {self.tensor_parallel} x "
                f"{self.gpu.name}: no memory left for KVCache"
            )
        return KVCacheConfig(total_blocks=blocks, block_size=DEFAULT_BLOCK_SIZE)

    @property
    def num_gpus(self) -> int:
        return self.tensor_parallel

"""Scalar reference implementation of the replica generation engine.

This is the pre-vectorization :class:`ReplicaGenerationState` inner loop,
retained verbatim (one sequence at a time, plain Python) as the behavioural
oracle for the structure-of-arrays engine in
:mod:`repro.rollout.generation`.  The equivalence test harness
(``tests/test_engine_equivalence.py``) drives both engines through identical
event sequences — decode windows, multi-turn env waits, repack pulls, stalls,
preemption storms — and asserts bit-identical clocks, trajectories, stats and
KVCache occupancy.  Any behavioural change to the vector engine must land
here too, or the equivalence suite fails.

It shares :class:`SequenceState`, :class:`TurnSchedule` and
:class:`ReplicaStats` with the production engine so states can be fabricated
once and fed to both.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..llm.decode_model import DecodeModel
from ..sim.kvcache import KVCache, KVCacheConfig
from ..types import Trajectory
from .generation import (
    _EPS,
    ReplicaStats,
    SequenceState,
    SequenceStatus,
    TurnSchedule,
)

__all__ = ["ScalarReplicaBatchView", "ScalarReplicaGenerationState"]


class ScalarReplicaGenerationState:
    """Per-sequence (scalar) decode engine — the vector engine's oracle."""

    def __init__(
        self,
        replica_id: int,
        decode_model: DecodeModel,
        kvcache_config: KVCacheConfig,
        max_concurrency: int = 1024,
        weight_version: int = 0,
    ) -> None:
        if max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")
        self.replica_id = replica_id
        self.decode_model = decode_model
        self.kvcache = KVCache(kvcache_config)
        self.max_concurrency = max_concurrency
        self.weight_version = weight_version
        self.clock = 0.0
        self.stats = ReplicaStats()
        self._sequences: Dict[int, SequenceState] = {}
        self._queued: List[int] = []
        self._decoding: List[int] = []
        self._env_wait: List[int] = []
        self._completed: List[Trajectory] = []
        self._time_carry = 0.0
        # Straggler multipliers (repro.faults); 1.0 keeps the nominal path.
        self._decode_slowdown = 1.0
        self._env_slowdown = 1.0
        self._mutation = 0
        self._step_cache: Tuple[int, float] = (-1, 0.0)
        self.prev_utilization = 0.0

    # ------------------------------------------------------------------ intake
    def add_sequences(self, sequences: Sequence[SequenceState]) -> None:
        for seq in sequences:
            if seq.seq_id in self._sequences:
                raise ValueError(f"sequence {seq.seq_id} already on replica {self.replica_id}")
            seq.status = SequenceStatus.QUEUED
            self._sequences[seq.seq_id] = seq
            self._queued.append(seq.seq_id)
        self._try_admit()

    def remove_sequences(self, seq_ids: Sequence[int]) -> List[SequenceState]:
        removed: List[SequenceState] = []
        for seq_id in seq_ids:
            seq = self._sequences.pop(seq_id, None)
            if seq is None:
                continue
            for bucket in (self._queued, self._decoding, self._env_wait):
                if seq_id in bucket:
                    bucket.remove(seq_id)
            if seq.status in (SequenceStatus.DECODING, SequenceStatus.ENV_WAIT):
                self.kvcache.free(seq_id)
            removed.append(seq)
        if removed:
            self._mutation += 1
        self._try_admit()
        return removed

    def remove_all(self) -> List[SequenceState]:
        return self.remove_sequences(list(self._sequences.keys()))

    # ------------------------------------------------------------------ queries
    @property
    def num_sequences(self) -> int:
        return len(self._sequences)

    @property
    def num_decoding(self) -> int:
        return len(self._decoding)

    @property
    def num_queued(self) -> int:
        return len(self._queued)

    @property
    def num_env_waiting(self) -> int:
        return len(self._env_wait)

    @property
    def kvcache_utilization(self) -> float:
        return self.kvcache.utilization

    @property
    def is_idle(self) -> bool:
        return not self._sequences

    def drain_completed(self) -> List[Trajectory]:
        completed, self._completed = self._completed, []
        return completed

    def sequences(self) -> List[SequenceState]:
        return list(self._sequences.values())

    def mean_context_tokens(self) -> float:
        if not self._decoding:
            return 0.0
        total = sum(self._sequences[sid].context_tokens for sid in self._decoding)
        return total / len(self._decoding)

    def current_step_time(self) -> float:
        if not self._decoding:
            return 0.0
        version, value = self._step_cache
        if version == self._mutation:
            return value
        value = self.decode_model.decode_step_time(
            len(self._decoding), int(self.mean_context_tokens())
        )
        if self._decode_slowdown != 1.0:
            value *= self._decode_slowdown
        self._step_cache = (self._mutation, value)
        return value

    def observe_utilization(self) -> float:
        util = self.kvcache_utilization
        self.prev_utilization = util
        return util

    # ------------------------------------------------------------------ scheduling
    admission_lookahead_tokens: int = 256

    def _try_admit(self) -> None:
        admitted_any = True
        while admitted_any and self._queued:
            admitted_any = False
            if len(self._decoding) + len(self._env_wait) >= self.max_concurrency:
                return
            seq_id = self._queued[0]
            seq = self._sequences[seq_id]
            needed = seq.context_tokens + self.admission_lookahead_tokens
            if not self.kvcache.can_allocate(needed):
                return
            self._queued.pop(0)
            self.kvcache.allocate(seq_id, seq.context_tokens + 1)
            seq.status = SequenceStatus.DECODING
            self._decoding.append(seq_id)
            if seq.needs_reprefill:
                self.stats.reprefill_tokens += seq.context_tokens
                seq.needs_reprefill = False
            else:
                self.stats.prompt_tokens_prefilled += seq.trajectory.prompt.prompt_tokens
            admitted_any = True
            self._mutation += 1

    def _preempt_one(self) -> bool:
        if len(self._decoding) <= 1:
            return False
        seq_id = self._decoding.pop()
        seq = self._sequences[seq_id]
        self.kvcache.free(seq_id)
        seq.status = SequenceStatus.QUEUED
        seq.needs_reprefill = True
        self._queued.insert(0, seq_id)
        self.stats.preemptions += 1
        self._mutation += 1
        return True

    def _ensure_growth_capacity(self, tokens: int) -> None:
        upper_bound = len(self._decoding) * (self.kvcache.blocks_for(tokens) + 1)
        if upper_bound <= self.kvcache.free_blocks:
            return
        while True:
            needed_blocks = 0
            for seq_id in self._decoding:
                current = self.kvcache.sequence_tokens(seq_id)
                needed_blocks += (
                    self.kvcache.blocks_for(current + tokens) - self.kvcache.blocks_for(current)
                )
            if needed_blocks <= self.kvcache.free_blocks:
                return
            if not self._preempt_one():
                return

    def _release_env_returns(self) -> None:
        returned = [sid for sid in self._env_wait
                    if self._sequences[sid].env_return_time <= self.clock + _EPS]
        for seq_id in returned:
            self._env_wait.remove(seq_id)
            seq = self._sequences[seq_id]
            seq.status = SequenceStatus.DECODING
            seq.env_return_time = math.inf
            self._decoding.append(seq_id)
        if returned:
            self._mutation += 1

    def next_event_in(self) -> Optional[float]:
        if not self._sequences:
            return None
        self._release_env_returns()
        self._try_admit()
        candidates: List[float] = []
        if self._decoding:
            step = self.current_step_time()
            min_seg = min(self._sequences[sid].segment_remaining for sid in self._decoding)
            candidates.append(max(_EPS, min_seg * step - self._time_carry))
        if self._env_wait:
            earliest = min(self._sequences[sid].env_return_time for sid in self._env_wait)
            candidates.append(max(_EPS, earliest - self.clock))
        if not candidates:
            return None
        return min(candidates)

    def advance(self, dt: float) -> List[Trajectory]:
        if dt < 0:
            raise ValueError("dt must be non-negative")
        target = self.clock + dt
        completed_now: List[Trajectory] = []
        # Enter the loop at least once for any positive window.  When the
        # step time shrinks below already-accrued ``_time_carry`` (a slowdown
        # clearing, or a batch-composition change after mass migration), the
        # next-event window floors to ``_EPS`` and the guard alone would
        # never admit it; the zero-width pass emits the carry-covered token
        # and is a no-op otherwise.
        pending = dt > 0.0
        while pending or self.clock < target - _EPS:
            pending = False
            self._release_env_returns()
            self._try_admit()
            if not self._decoding:
                if self._env_wait:
                    earliest = min(self._sequences[sid].env_return_time for sid in self._env_wait)
                    next_clock = min(target, max(earliest, self.clock))
                else:
                    next_clock = target
                blocked = next_clock - self.clock
                if self._env_wait:
                    self.stats.env_blocked_time += blocked
                else:
                    self.stats.idle_time += blocked
                self.clock = next_clock
                continue

            step = self.current_step_time()
            min_seg = min(self._sequences[sid].segment_remaining for sid in self._decoding)
            time_to_segment = min_seg * step - self._time_carry
            time_to_env = math.inf
            if self._env_wait:
                time_to_env = min(self._sequences[sid].env_return_time for sid in self._env_wait) - self.clock
            window = min(time_to_segment, time_to_env, target - self.clock)
            window = max(window, 0.0)

            tokens_float = (window + self._time_carry) / step
            tokens = int(math.floor(tokens_float + 1e-9))
            tokens = min(tokens, min_seg)
            self._time_carry = (window + self._time_carry) - tokens * step
            if tokens > 0:
                self._apply_decode(tokens, completed_now)
            self.stats.decode_busy_time += window
            self.clock += window
            if window <= _EPS and tokens == 0:
                # Degenerate-window escape; charge the epsilon slip to the
                # decode-busy bucket (mirrors the vector engine's accounting).
                new_clock = min(target, self.clock + _EPS)
                self.stats.decode_busy_time += new_clock - self.clock
                self.clock = new_clock
        self._completed.extend(completed_now)
        return completed_now

    def _apply_decode(self, tokens: int, completed_now: List[Trajectory]) -> None:
        self._mutation += 1
        self._ensure_growth_capacity(tokens)
        finished_segment: List[int] = []
        for seq_id in list(self._decoding):
            seq = self._sequences[seq_id]
            step_tokens = min(tokens, seq.segment_remaining)
            seq.tokens_done_in_turn += step_tokens
            seq.trajectory.advance(step_tokens, self.weight_version)
            self.kvcache.append_tokens(seq_id, step_tokens)
            self.stats.tokens_generated += step_tokens
            if seq.segment_remaining == 0:
                finished_segment.append(seq_id)
        for seq_id in finished_segment:
            seq = self._sequences[seq_id]
            env_latency = seq.schedule.env_latencies[seq.turn_index]
            if self._env_slowdown != 1.0:
                env_latency = env_latency * self._env_slowdown
            last_turn = seq.turn_index == seq.schedule.num_turns - 1
            if last_turn:
                self._decoding.remove(seq_id)
                self.kvcache.free(seq_id)
                del self._sequences[seq_id]
                seq.status = SequenceStatus.DONE
                seq.trajectory.finish_time = self.clock
                seq.trajectory.replica_id = self.replica_id
                seq.trajectory.turns_done = seq.schedule.num_turns
                completed_now.append(seq.trajectory)
                self.stats.trajectories_completed += 1
            else:
                seq.turn_index += 1
                seq.tokens_done_in_turn = 0
                seq.trajectory.turns_done = seq.turn_index
                if env_latency > 0:
                    self._decoding.remove(seq_id)
                    seq.status = SequenceStatus.ENV_WAIT
                    seq.env_return_time = self.clock + env_latency
                    self._env_wait.append(seq_id)
        self._try_admit()

    def inject_stall(self, duration: float, *, busy: bool = True) -> None:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.clock += duration
        if busy:
            self.stats.decode_busy_time += duration
        else:
            self.stats.idle_time += duration

    def reprefill_all_inflight(self) -> float:
        inflight = [self._sequences[sid] for sid in self._decoding + self._env_wait]
        total_context = sum(seq.context_tokens for seq in inflight)
        if total_context == 0:
            return 0.0
        stall = sum(
            self.decode_model.prefill_time(seq.context_tokens, batch_size=1)
            for seq in inflight
        )
        self.stats.reprefill_tokens += total_context
        for seq in inflight:
            seq.trajectory.reprefill_count += 1
        self.inject_stall(stall, busy=True)
        return stall

    def set_weight_version(self, version: int) -> None:
        if version < self.weight_version:
            raise ValueError("weight version cannot go backwards")
        self.weight_version = version

    @property
    def decode_slowdown(self) -> float:
        return self._decode_slowdown

    @property
    def env_slowdown(self) -> float:
        return self._env_slowdown

    @property
    def is_straggling(self) -> bool:
        return self._decode_slowdown != 1.0 or self._env_slowdown != 1.0

    def set_slowdown(self, decode: Optional[float] = None,
                     env: Optional[float] = None) -> None:
        changed = False
        if decode is not None and decode != self._decode_slowdown:
            if decode <= 0:
                raise ValueError("decode slowdown must be positive")
            # Mirror of the vector engine: the time-unit carry rescales with
            # the step time so fractional token progress is preserved.
            self._time_carry *= decode / self._decode_slowdown
            self._decode_slowdown = decode
            changed = True
        if env is not None and env != self._env_slowdown:
            if env <= 0:
                raise ValueError("env slowdown must be positive")
            self._env_slowdown = env
            changed = True
        if changed:
            self._mutation += 1

    # ------------------------------------------------------------------ batch API
    def run_to_completion(self, max_time: float = math.inf) -> Tuple[float, List[Trajectory]]:
        start = self.clock
        completed: List[Trajectory] = []
        while self._sequences and self.clock - start < max_time:
            delta = self.next_event_in()
            if delta is None:
                break
            delta = min(delta, max_time - (self.clock - start))
            completed.extend(self.advance(delta))
        completed.extend(self.drain_completed())
        unique: Dict[int, Trajectory] = {t.traj_id: t for t in completed}
        return self.clock - start, list(unique.values())


class ScalarReplicaBatchView:
    """Scalar oracle for :class:`repro.rollout.generation.ReplicaBatchView`.

    Grouped stepping is defined as a pure performance transform: servicing a
    set of mutually independent replicas together must be observationally
    identical to servicing them one at a time in lane order.  This mirror
    *is* that definition — every batch call routes to the underlying engine,
    replica by replica — so the equivalence fuzzer can drive the fused SoA
    view and this one through identical call sequences and assert bit-equal
    outcomes on both engine families.
    """

    def __init__(self, replicas: Sequence[ScalarReplicaGenerationState],
                 fuse: bool = True) -> None:
        del fuse  # the oracle has no fused path to toggle
        self.replicas = list(replicas)

    @property
    def num_fused(self) -> int:
        return 0

    @property
    def all_fused(self) -> bool:
        return False

    def lane_is_fused(self, pos: int) -> bool:
        return False

    def lane_live(self, pos: int) -> int:
        return self.replicas[pos].num_sequences

    def lane_clock(self, pos: int) -> float:
        return self.replicas[pos].clock

    def next_event_in_many(self, positions: Sequence[int]) -> List[Optional[float]]:
        return [self.replicas[pos].next_event_in() for pos in positions]

    def advance_many(self, positions: Sequence[int],
                     dts: Sequence[float]) -> List[List[Trajectory]]:
        return [
            self.replicas[pos].advance(dt) for pos, dt in zip(positions, dts)
        ]

    def settle(self) -> None:
        """No-op: the oracle never detaches state from its engines."""

"""Simulated environments and trajectory fabrication.

Two responsibilities:

* :class:`SimulatedEnvironment` plays the role of the external code sandbox /
  rule-based verifier: it samples per-turn interaction latencies and scores
  completed trajectories with a rule-based reward (§8: "rule-based reward
  function ... on both tasks").
* :class:`TrajectoryFactory` turns prompts into in-flight trajectories with
  pre-sampled response lengths and turn schedules, so that every system
  replays exactly the same workload when given the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..types import Prompt, Trajectory
from ..workload.datasets import TaskSpec
from .generation import SequenceState, TurnSchedule


@dataclass
class SimulatedEnvironment:
    """External environment: latency sampling and rule-based rewards."""

    task: TaskSpec
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    # -- latency ------------------------------------------------------------
    def sample_interaction_latency(self, size: int = 1) -> np.ndarray:
        """Latency of ``size`` environment calls (seconds)."""
        return self.task.env_latency.sample(self._rng, size)

    # -- reward -------------------------------------------------------------
    def score(self, trajectory: Trajectory) -> float:
        """Rule-based reward in {-1, +1}.

        The probability of solving a problem decreases with its difficulty and
        increases mildly with the amount of reasoning produced (longer
        chains-of-thought help on hard problems) — enough structure for the
        GRPO substrate to have signal without pretending to verify real math.
        """
        difficulty = trajectory.prompt.difficulty
        length_bonus = 0.1 * min(1.0, trajectory.generated_tokens / 8192.0)
        solve_prob = float(np.clip(0.85 - 0.7 * difficulty + length_bonus, 0.02, 0.98))
        solved = self._rng.random() < solve_prob
        return 1.0 if solved else -1.0


@dataclass
class TrajectoryFactory:
    """Builds trajectories + turn schedules from prompts, deterministically."""

    task: TaskSpec
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    _next_traj_id: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def make(self, prompts: Sequence[Prompt], weight_version: int = 0,
             start_time: float = 0.0) -> List[SequenceState]:
        """Create one sequence state (trajectory + schedule) per prompt."""
        if not prompts:
            return []
        difficulties = [p.difficulty for p in prompts]
        lengths = self.task.length_dist.sample(self._rng, len(prompts), difficulty=difficulties)
        states: List[SequenceState] = []
        for prompt, total_tokens in zip(prompts, lengths):
            schedule = self._make_schedule(prompt, int(total_tokens))
            trajectory = Trajectory(
                traj_id=self._next_traj_id,
                prompt=prompt,
                target_tokens=schedule.total_tokens,
                weight_version=weight_version,
                start_time=start_time,
            )
            self._next_traj_id += 1
            states.append(SequenceState(trajectory=trajectory, schedule=schedule))
        return states

    def _make_schedule(self, prompt: Prompt, total_tokens: int) -> TurnSchedule:
        total_tokens = max(total_tokens, 1)
        if not prompt.multi_turn or prompt.max_turns <= 1:
            return TurnSchedule.single_turn(total_tokens)
        # Number of tool calls grows with difficulty (harder bugs need more
        # debugging steps), capped at the task's turn budget.
        max_turns = prompt.max_turns
        mean_turns = 1.0 + difficulty_to_turns(prompt.difficulty, max_turns)
        num_turns = int(np.clip(self._rng.poisson(mean_turns) + 1, 1, max_turns))
        # Split the response tokens across turns with a Dirichlet draw so turn
        # lengths are uneven (early exploration short, final answer longer).
        shares = self._rng.dirichlet(np.full(num_turns, 1.5))
        segments = np.maximum(1, np.round(shares * total_tokens)).astype(int)
        # Environment latency after every turn except the last one.
        latencies = self.task.env_latency.sample(self._rng, num_turns)
        latencies[-1] = 0.0
        return TurnSchedule(segments=list(segments), env_latencies=list(latencies))


def difficulty_to_turns(difficulty: float, max_turns: int) -> float:
    """Expected extra tool calls for a problem of the given difficulty."""
    if not 0 <= difficulty <= 1:
        raise ValueError("difficulty must be in [0, 1]")
    if max_turns <= 1:
        return 0.0
    return difficulty * (max_turns - 1) * 0.6

"""Replica-level generation engine.

:class:`ReplicaGenerationState` models one rollout replica (one vLLM tensor-
parallel group) decoding a set of trajectories.  It is deliberately free of
any discrete-event-simulation dependency: callers drive it by asking "when is
your next internal event?" and then telling it "advance by this much time".
The ``repro.runtime`` harness turns that contract into engine processes:

* Laminar and AReaL run one interruptible driver process per replica
  (:func:`repro.runtime.replica_driver`), which sleeps until the replica's
  own next event — so repacking, weight pulls and failures can land at any
  instant and simulated time jumps between real events;
* the batch-synchronous baselines drain each replica with
  :func:`repro.runtime.drain_replica` behind an ``AllOf`` barrier
  (:func:`repro.runtime.generation_barrier`), which reproduces their
  slowest-replica iteration semantics exactly.

Because every system shares this engine (and the roofline decode model inside
it), throughput differences between systems come purely from orchestration —
matching the paper's "alleviating implementation bias" methodology (§8).

Structure-of-arrays core
------------------------
The inner engine is vectorized: per-sequence decode state (segment remaining,
generated tokens, context length, environment return time) lives in numpy
arrays indexed by a dense *slot* id, and the decode / env-wait sets are
order-preserving parallel vectors of (seq id, slot, KVCache row)
(:class:`_SeqVector`) maintained incrementally — so the per-event hot path is
a handful of masked reductions and one clipped vector subtract, with no
Python loop over the batch and no per-event cache rebuilds.  Per-sequence
Python runs only on the rare control tail — admission, preemption, segment
finishes, environment transitions — and the :class:`SequenceState` objects
that external callers hold (repack, failover, the partial response pool) are
re-synchronised from the arrays at every boundary where they can be observed
(``sequences()``, removal, completion).
``tests/test_engine_equivalence.py`` drives this engine step-for-step against
the retained scalar reference (:mod:`repro.rollout.reference`) and asserts
bit-identical trajectories, stats and KVCache occupancy.

Decode semantics
----------------
All actively decoding sequences advance one token per decode step; the decode
step latency follows the roofline model and depends on the live batch size and
mean context length.  A sequence is one of:

``queued``      waiting for KVCache admission (vLLM waiting queue)
``decoding``    in the decode batch
``env_wait``    waiting on an environment interaction (multi-turn tasks)
``done``        finished (removed from the replica)

KVCache management follows the vLLM model: a sequence is admitted when its
*current* context fits (plus a small growth lookahead), blocks are allocated
incrementally as tokens are decoded, and when the cache fills up the most
recently admitted sequences are preempted back to the waiting queue (their
cache is rebuilt when they are re-admitted).  This reproduces the utilisation
lifecycle of Figure 9: ramp-up, a plateau near ``C_max`` while a waiting queue
exists, and a ramp-down once it drains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..llm.decode_model import DecodeModel
from ..sim.kvcache import KVCache, KVCacheConfig, grow_array
from ..types import Trajectory

#: Numerical slack used when comparing simulated times.
_EPS = 1e-9

#: Initial slot / vector capacity of the SoA state (grown geometrically).
_INITIAL_SLOTS = 64


@dataclass
class TurnSchedule:
    """Pre-sampled decode/environment schedule for one trajectory.

    ``segments[i]`` is the number of response tokens decoded in turn ``i``;
    ``env_latencies[i]`` is the environment latency paid *after* turn ``i``
    (zero after the final turn).  Single-turn tasks have one segment and no
    environment latency.
    """

    segments: List[int]
    env_latencies: List[float]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a turn schedule needs at least one segment")
        if len(self.env_latencies) != len(self.segments):
            raise ValueError("env_latencies must have one entry per segment")
        if any(s <= 0 for s in self.segments):
            raise ValueError("segments must be positive")
        if any(l < 0 for l in self.env_latencies):
            raise ValueError("env latencies must be non-negative")

    @property
    def total_tokens(self) -> int:
        return sum(self.segments)

    @property
    def num_turns(self) -> int:
        return len(self.segments)

    @classmethod
    def single_turn(cls, tokens: int) -> "TurnSchedule":
        return cls(segments=[int(tokens)], env_latencies=[0.0])


class SequenceStatus:
    QUEUED = "queued"
    DECODING = "decoding"
    ENV_WAIT = "env_wait"
    DONE = "done"


@dataclass
class SequenceState:
    """Runtime state of one trajectory on a replica."""

    trajectory: Trajectory
    schedule: TurnSchedule
    status: str = SequenceStatus.QUEUED
    turn_index: int = 0
    tokens_done_in_turn: int = 0
    env_return_time: float = math.inf
    #: True if this sequence arrived via repack/failover and its existing
    #: context must be re-prefilled before decoding resumes on this replica.
    needs_reprefill: bool = False

    @property
    def seq_id(self) -> int:
        return self.trajectory.traj_id

    @property
    def segment_remaining(self) -> int:
        return self.schedule.segments[self.turn_index] - self.tokens_done_in_turn

    @property
    def total_remaining(self) -> int:
        remaining = self.segment_remaining
        remaining += sum(self.schedule.segments[self.turn_index + 1:])
        return remaining

    @property
    def context_tokens(self) -> int:
        return self.trajectory.prompt.prompt_tokens + self.trajectory.generated_tokens

    @property
    def reserved_tokens(self) -> int:
        """KVCache reservation: prompt plus the full eventual response."""
        return self.trajectory.prompt.prompt_tokens + self.schedule.total_tokens


@dataclass
class ReplicaStats:
    """Cumulative counters exposed for metrics and tests."""

    tokens_generated: int = 0
    prompt_tokens_prefilled: int = 0
    reprefill_tokens: int = 0
    trajectories_completed: int = 0
    decode_busy_time: float = 0.0
    idle_time: float = 0.0
    env_blocked_time: float = 0.0
    preemptions: int = 0


class _SeqVector:
    """Order-preserving parallel arrays of (seq id, slot, KVCache row).

    Backs the decode and env-wait sets of the vectorized engine.  Appends and
    tail-pops are O(1) amortised; arbitrary deletions compact the prefix with
    one vectorized copy.  Views returned by the accessors alias the backing
    arrays and are valid until the next mutation.
    """

    __slots__ = ("ids", "slots", "rows", "n")

    def __init__(self) -> None:
        self.ids = np.empty(_INITIAL_SLOTS, dtype=np.int64)
        self.slots = np.empty(_INITIAL_SLOTS, dtype=np.int64)
        self.rows = np.empty(_INITIAL_SLOTS, dtype=np.int64)
        self.n = 0

    def __len__(self) -> int:
        return self.n

    def append(self, seq_id: int, slot: int, row: int) -> None:
        if self.n == len(self.ids):
            capacity = 2 * len(self.ids)
            self.ids = grow_array(self.ids, capacity)
            self.slots = grow_array(self.slots, capacity)
            self.rows = grow_array(self.rows, capacity)
        self.ids[self.n] = seq_id
        self.slots[self.n] = slot
        self.rows[self.n] = row
        self.n += 1

    def pop(self) -> Tuple[int, int, int]:
        """Remove and return the most recently appended entry."""
        self.n -= 1
        i = self.n
        return int(self.ids[i]), int(self.slots[i]), int(self.rows[i])

    def ids_view(self) -> np.ndarray:
        return self.ids[: self.n]

    def slots_view(self) -> np.ndarray:
        return self.slots[: self.n]

    def rows_view(self) -> np.ndarray:
        return self.rows[: self.n]

    def ids_list(self) -> List[int]:
        return [int(x) for x in self.ids[: self.n]]

    def delete_positions(self, positions: Sequence[int]) -> None:
        """Delete the entries at ``positions``, preserving the order of the rest."""
        keep = np.ones(self.n, dtype=bool)
        keep[positions] = False
        kept = int(keep.sum())
        for name in ("ids", "slots", "rows"):
            arr = getattr(self, name)
            arr[:kept] = arr[: self.n][keep]
        self.n = kept

    def remove_id(self, seq_id: int) -> bool:
        """Delete the (first) entry for ``seq_id``; True if it was present."""
        hits = np.flatnonzero(self.ids[: self.n] == seq_id)
        if not len(hits):
            return False
        self.delete_positions(hits[:1])
        return True


class ReplicaGenerationState:
    """Simulated decode engine for one rollout replica (vectorized core)."""

    def __init__(
        self,
        replica_id: int,
        decode_model: DecodeModel,
        kvcache_config: KVCacheConfig,
        max_concurrency: int = 1024,
        weight_version: int = 0,
    ) -> None:
        if max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")
        self.replica_id = replica_id
        self.decode_model = decode_model
        self.kvcache = KVCache(kvcache_config)
        self.max_concurrency = max_concurrency
        self.weight_version = weight_version
        self.clock = 0.0
        self.stats = ReplicaStats()
        self._sequences: Dict[int, SequenceState] = {}
        self._queued: List[int] = []
        #: Decode and env-wait sets: incrementally maintained (id, slot, row)
        #: vectors in the same order the scalar engine kept its id lists.
        self._dec = _SeqVector()
        self._env = _SeqVector()
        self._completed: List[Trajectory] = []
        self._time_carry = 0.0
        #: Bumped on every mutation of the decode batch (admission, removal,
        #: preemption, token growth); keys the incremental event caches below.
        self._mutation = 0
        self._step_cache: Tuple[int, float] = (-1, 0.0)
        self._min_seg_cache: Tuple[int, int] = (-1, 0)
        self._env_min_cache: Tuple[int, float] = (-1, math.inf)
        #: Utilisation at the previous observation, for the ramp-down test
        #: (§5.2: a repack candidate has non-increasing KVCache utilisation).
        self.prev_utilization = 0.0
        #: Observability: when tracing is on, the decode loop appends
        #: ``(local clock, tokens)`` increments here (one list append per
        #: vectorized decode window — the batched-flush contract keeping the
        #: SoA hot path fast); the harness drains it at phase boundaries via
        #: :meth:`take_trace_samples`.  ``None`` (the default) disables the
        #: buffer entirely.
        self.trace_samples: Optional[List[Tuple[float, int]]] = None
        self._trace_total = 0
        # SoA state, indexed by slot id (see _alloc_slot).
        self._slots: Dict[int, int] = {}
        self._free_slots: List[int] = []
        self._a_seg_rem = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        self._a_gen = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        self._a_target = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        self._a_prompt = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        self._a_ctx = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        self._a_done_turn = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        self._a_env = np.full(_INITIAL_SLOTS, math.inf, dtype=np.float64)
        self._a_last_ver = np.full(_INITIAL_SLOTS, -1, dtype=np.int64)

    # ------------------------------------------------------------------ slots
    def _alloc_slot(self, seq: SequenceState) -> int:
        if not self._free_slots:
            old = len(self._a_seg_rem)
            new = 2 * old
            for name in ("_a_seg_rem", "_a_gen", "_a_target", "_a_prompt",
                         "_a_ctx", "_a_done_turn"):
                setattr(self, name, grow_array(getattr(self, name), new))
            self._a_env = grow_array(self._a_env, new, fill=math.inf)
            self._a_last_ver = grow_array(self._a_last_ver, new, fill=-1)
            self._free_slots.extend(range(new - 1, old - 1, -1))
        slot = self._free_slots.pop()
        trajectory = seq.trajectory
        self._a_seg_rem[slot] = seq.segment_remaining
        self._a_gen[slot] = trajectory.generated_tokens
        self._a_target[slot] = trajectory.target_tokens
        self._a_prompt[slot] = trajectory.prompt.prompt_tokens
        self._a_ctx[slot] = trajectory.prompt.prompt_tokens + trajectory.generated_tokens
        self._a_done_turn[slot] = seq.tokens_done_in_turn
        self._a_env[slot] = seq.env_return_time
        self._a_last_ver[slot] = -1
        self._slots[seq.seq_id] = slot
        return slot

    def _release_slot(self, seq_id: int) -> None:
        self._free_slots.append(self._slots.pop(seq_id))

    def _sync_sequence(self, seq_id: int) -> None:
        """Write array-held (lazy) fields back to the sequence/trajectory."""
        slot = self._slots[seq_id]
        seq = self._sequences[seq_id]
        seq.tokens_done_in_turn = int(self._a_done_turn[slot])
        trajectory = seq.trajectory
        trajectory.generated_tokens = min(
            trajectory.target_tokens, int(self._a_gen[slot])
        )

    def _sync_all(self) -> None:
        for seq_id in self._sequences:
            self._sync_sequence(seq_id)

    # ------------------------------------------------------------------ intake
    def add_sequences(self, sequences: Sequence[SequenceState]) -> None:
        """Add new or migrated sequences to this replica's queue."""
        for seq in sequences:
            if seq.seq_id in self._sequences:
                raise ValueError(f"sequence {seq.seq_id} already on replica {self.replica_id}")
            seq.status = SequenceStatus.QUEUED
            self._sequences[seq.seq_id] = seq
            self._alloc_slot(seq)
            self._queued.append(seq.seq_id)
        self._try_admit()

    def remove_sequences(self, seq_ids: Sequence[int]) -> List[SequenceState]:
        """Detach (in-progress) sequences, e.g. when repacked to another replica."""
        removed: List[SequenceState] = []
        for seq_id in seq_ids:
            seq = self._sequences.get(seq_id)
            if seq is None:
                continue
            self._sync_sequence(seq_id)
            del self._sequences[seq_id]
            if seq.status == SequenceStatus.QUEUED:
                self._queued.remove(seq_id)
            elif seq.status == SequenceStatus.DECODING:
                self._dec.remove_id(seq_id)
                self.kvcache.free(seq_id)
            elif seq.status == SequenceStatus.ENV_WAIT:
                self._env.remove_id(seq_id)
                self.kvcache.free(seq_id)
            self._release_slot(seq_id)
            removed.append(seq)
        if removed:
            self._mutation += 1
        self._try_admit()
        return removed

    def remove_all(self) -> List[SequenceState]:
        """Detach every in-progress sequence (machine failure / full release)."""
        return self.remove_sequences(list(self._sequences.keys()))

    # ------------------------------------------------------------------ queries
    @property
    def num_sequences(self) -> int:
        return len(self._sequences)

    @property
    def num_decoding(self) -> int:
        return self._dec.n

    @property
    def num_queued(self) -> int:
        return len(self._queued)

    @property
    def num_env_waiting(self) -> int:
        return self._env.n

    @property
    def kvcache_utilization(self) -> float:
        return self.kvcache.utilization

    @property
    def is_idle(self) -> bool:
        return not self._sequences

    def drain_completed(self) -> List[Trajectory]:
        """Return (and clear) trajectories completed since the last drain."""
        completed, self._completed = self._completed, []
        return completed

    def sequences(self) -> List[SequenceState]:
        self._sync_all()
        return list(self._sequences.values())

    def mean_context_tokens(self) -> float:
        if not self._dec.n:
            return 0.0
        total = int(self._a_ctx[self._dec.slots_view()].sum())
        return total / self._dec.n

    def current_step_time(self) -> float:
        """Decode-step latency of the live batch.

        Cached against the mutation counter: callers typically ask for the
        step time twice per event (once to find the next event, once to apply
        the elapsed window), and the O(batch) context reduction is the widest
        scan on the event-driven hot path.
        """
        if not self._dec.n:
            return 0.0
        version, value = self._step_cache
        if version == self._mutation:
            return value
        value = self.decode_model.decode_step_time(
            self._dec.n, int(self.mean_context_tokens())
        )
        self._step_cache = (self._mutation, value)
        return value

    def _min_segment_remaining(self) -> int:
        """Smallest segment remainder in the decode batch (incrementally cached).

        Valid only while the decode set is non-empty.  ``next_event_in`` and
        ``advance`` both need this reduction for the same event; caching it
        against the mutation counter means the second caller (and every driver
        re-entry without an intervening mutation) pays O(1).
        """
        version, value = self._min_seg_cache
        if version != self._mutation:
            value = int(self._a_seg_rem[self._dec.slots_view()].min())
            self._min_seg_cache = (self._mutation, value)
        return value

    def _earliest_env_return(self) -> float:
        """Earliest environment return time (incrementally cached)."""
        version, value = self._env_min_cache
        if version != self._mutation:
            value = float(self._a_env[self._env.slots_view()].min())
            self._env_min_cache = (self._mutation, value)
        return value

    def in_ramp_down(self, c_max: Optional[float] = None) -> bool:
        """§5.2 idleness signal: utilisation below C_max and not increasing."""
        c_max = c_max if c_max is not None else self.kvcache.config.c_max
        util = self.kvcache_utilization
        return self.num_queued == 0 and util < min(c_max, self.prev_utilization + 1e-12)

    def observe_utilization(self) -> float:
        """Record the current utilisation for ramp-down detection and return it."""
        util = self.kvcache_utilization
        self.prev_utilization = util
        return util

    # ------------------------------------------------------------------ scheduling
    #: Extra tokens of headroom required beyond a sequence's current context
    #: before it is admitted, to avoid admit/preempt thrashing.
    admission_lookahead_tokens: int = 256

    def _try_admit(self) -> None:
        admitted_any = True
        while admitted_any and self._queued:
            admitted_any = False
            if self._dec.n + self._env.n >= self.max_concurrency:
                return
            seq_id = self._queued[0]
            seq = self._sequences[seq_id]
            slot = self._slots[seq_id]
            context = int(self._a_ctx[slot])
            needed = context + self.admission_lookahead_tokens
            if not self.kvcache.can_allocate(needed):
                return
            self._queued.pop(0)
            row = self.kvcache.allocate(seq_id, context + 1)
            seq.status = SequenceStatus.DECODING
            self._dec.append(seq_id, slot, row)
            if seq.needs_reprefill:
                self.stats.reprefill_tokens += context
                seq.needs_reprefill = False
            else:
                self.stats.prompt_tokens_prefilled += seq.trajectory.prompt.prompt_tokens
            admitted_any = True
            self._mutation += 1

    def _preempt_one(self) -> bool:
        """Preempt the most recently admitted decoding sequence (vLLM recompute).

        Returns True if a sequence was preempted.
        """
        if self._dec.n <= 1:
            return False
        seq_id, _slot, _row = self._dec.pop()
        seq = self._sequences[seq_id]
        self.kvcache.free(seq_id)
        seq.status = SequenceStatus.QUEUED
        seq.needs_reprefill = True
        self._queued.insert(0, seq_id)
        self.stats.preemptions += 1
        self._mutation += 1
        return True

    def _ensure_growth_capacity(self, tokens: int) -> None:
        """Preempt sequences until every decoding sequence can grow by ``tokens``."""
        # Fast path: growing by ``tokens`` adds at most ceil(tokens/block) + 1
        # blocks per sequence, so a roomy cache never needs the exact scan.
        upper_bound = self._dec.n * (self.kvcache.blocks_for(tokens) + 1)
        if upper_bound <= self.kvcache.free_blocks:
            return
        while True:
            current = self.kvcache.tokens_at(self._dec.rows_view())
            needed_blocks = int(
                (self.kvcache.blocks_for_many(current + tokens)
                 - self.kvcache.blocks_for_many(current)).sum()
            )
            if needed_blocks <= self.kvcache.free_blocks:
                return
            if not self._preempt_one():
                return

    def _release_env_returns(self) -> None:
        env = self._env
        if not env.n:
            return
        ready = self._a_env[env.slots_view()] <= self.clock + _EPS
        if not ready.any():
            return
        positions = np.flatnonzero(ready)
        for p in positions:
            seq_id, slot, row = int(env.ids[p]), int(env.slots[p]), int(env.rows[p])
            seq = self._sequences[seq_id]
            seq.status = SequenceStatus.DECODING
            seq.env_return_time = math.inf
            self._a_env[slot] = math.inf
            self._dec.append(seq_id, slot, row)
        env.delete_positions(positions)
        self._mutation += 1

    def next_event_in(self) -> Optional[float]:
        """Time until the next internal event, or ``None`` if the replica is empty.

        Internal events are: a decoding sequence finishing its current segment,
        or an environment interaction returning.  Admission happens eagerly and
        never needs a timer.  The underlying reductions are cached against the
        mutation counter, so a driver that calls ``next_event_in`` and then
        ``advance`` for the same event pays for the scan once.
        """
        if not self._sequences:
            return None
        self._release_env_returns()
        self._try_admit()
        candidates: List[float] = []
        if self._dec.n:
            step = self.current_step_time()
            min_seg = self._min_segment_remaining()
            candidates.append(max(_EPS, min_seg * step - self._time_carry))
        if self._env.n:
            earliest = self._earliest_env_return()
            candidates.append(max(_EPS, earliest - self.clock))
        if not candidates:
            # Only queued sequences that cannot be admitted: the replica is
            # stuck (should not happen when reservations fit the cache).
            return None
        return min(candidates)

    def advance(self, dt: float) -> List[Trajectory]:
        """Advance the replica by ``dt`` seconds of simulated time.

        Handles any number of internal events that fall inside the window and
        returns the trajectories completed during it.
        """
        if dt < 0:
            raise ValueError("dt must be non-negative")
        target = self.clock + dt
        completed_now: List[Trajectory] = []
        while self.clock < target - _EPS:
            self._release_env_returns()
            self._try_admit()
            if not self._dec.n:
                # Nothing to decode: jump to the next env return (or the target).
                if self._env.n:
                    earliest = self._earliest_env_return()
                    next_clock = min(target, max(earliest, self.clock))
                else:
                    next_clock = target
                blocked = next_clock - self.clock
                if self._env.n:
                    self.stats.env_blocked_time += blocked
                else:
                    self.stats.idle_time += blocked
                self.clock = next_clock
                continue

            step = self.current_step_time()
            min_seg = self._min_segment_remaining()
            time_to_segment = min_seg * step - self._time_carry
            time_to_env = math.inf
            if self._env.n:
                time_to_env = self._earliest_env_return() - self.clock
            window = min(time_to_segment, time_to_env, target - self.clock)
            window = max(window, 0.0)

            tokens_float = (window + self._time_carry) / step
            tokens = int(math.floor(tokens_float + 1e-9))
            tokens = min(tokens, min_seg)
            self._time_carry = (window + self._time_carry) - tokens * step
            if tokens > 0:
                self._apply_decode(tokens, completed_now)
            self.stats.decode_busy_time += window
            self.clock += window
            if window <= _EPS and tokens == 0:
                # Avoid an infinite loop on degenerate windows; the epsilon
                # slip is charged to the decode-busy bucket (a decode batch is
                # live here) so busy + idle + env-blocked keeps covering the
                # clock.
                new_clock = min(target, self.clock + _EPS)
                self.stats.decode_busy_time += new_clock - self.clock
                self.clock = new_clock
        self._completed.extend(completed_now)
        return completed_now

    def _apply_decode(self, tokens: int, completed_now: List[Trajectory]) -> None:
        """Advance every decoding sequence by up to ``tokens`` tokens (vectorized)."""
        self._mutation += 1  # contexts grow even when the batch set is unchanged
        self._ensure_growth_capacity(tokens)
        dec = self._dec
        slots = dec.slots_view()
        seg = self._a_seg_rem[slots]
        step_tokens = np.minimum(tokens, seg)
        new_gen = np.minimum(self._a_target[slots], self._a_gen[slots] + step_tokens)
        self._a_gen[slots] = new_gen
        self._a_ctx[slots] = self._a_prompt[slots] + new_gen
        self._a_done_turn[slots] += step_tokens
        new_seg = seg - step_tokens
        self._a_seg_rem[slots] = new_seg
        # Tag trajectories decoding under this weight version for the first
        # time (only right after add/version-bump: the vector fast path skips
        # already-tagged slots).
        stale = self._a_last_ver[slots] != self.weight_version
        if stale.any():
            version = self.weight_version
            ids = dec.ids_view()
            for position in np.flatnonzero(stale):
                trajectory = self._sequences[int(ids[position])].trajectory
                if version not in trajectory.versions_used:
                    trajectory.versions_used.append(version)
            self._a_last_ver[slots[stale]] = version
        self.kvcache.append_tokens_many(dec.ids_view(), step_tokens, rows=dec.rows_view())
        generated = int(step_tokens.sum())
        self.stats.tokens_generated += generated
        if self.trace_samples is not None:
            self.trace_samples.append((self.clock, generated))
        finished_positions = np.flatnonzero(new_seg == 0)
        if len(finished_positions):
            self._finish_segments(finished_positions, completed_now)
            self._mutation += 1
        self._try_admit()

    def _finish_segments(
        self, positions: np.ndarray, completed_now: List[Trajectory]
    ) -> None:
        """Per-sequence control tail for sequences whose segment just ended."""
        dec = self._dec
        leaving: List[int] = []
        for position in positions:
            seq_id = int(dec.ids[position])
            slot = int(dec.slots[position])
            seq = self._sequences[seq_id]
            env_latency = seq.schedule.env_latencies[seq.turn_index]
            last_turn = seq.turn_index == seq.schedule.num_turns - 1
            if last_turn:
                leaving.append(int(position))
                self.kvcache.free(seq_id)
                self._sync_sequence(seq_id)
                del self._sequences[seq_id]
                self._release_slot(seq_id)
                seq.status = SequenceStatus.DONE
                seq.trajectory.finish_time = self.clock
                seq.trajectory.replica_id = self.replica_id
                seq.trajectory.turns_done = seq.schedule.num_turns
                completed_now.append(seq.trajectory)
                self.stats.trajectories_completed += 1
            else:
                seq.turn_index += 1
                seq.tokens_done_in_turn = 0
                self._a_done_turn[slot] = 0
                self._a_seg_rem[slot] = seq.schedule.segments[seq.turn_index]
                seq.trajectory.turns_done = seq.turn_index
                if env_latency > 0:
                    leaving.append(int(position))
                    seq.status = SequenceStatus.ENV_WAIT
                    seq.env_return_time = self.clock + env_latency
                    self._a_env[slot] = seq.env_return_time
                    self._env.append(seq_id, slot, int(dec.rows[position]))
        if leaving:
            dec.delete_positions(leaving)

    def enable_trace_sampling(self) -> None:
        """Arm the decode loop's trace-sample buffer (idempotent)."""
        if self.trace_samples is None:
            self.trace_samples = []

    def take_trace_samples(self, offset: float = 0.0) -> List[Tuple[float, float]]:
        """Drain the buffered decode samples as cumulative-token counter rows.

        Returns ``(offset + local clock, cumulative tokens)`` pairs — the
        batched flush the harness feeds to the tracer.  ``offset`` maps the
        replica-local clock into the environment's simulated time (zero for
        the continuous drivers, whose clocks are already absolute).
        """
        samples = self.trace_samples
        if not samples:
            return []
        self.trace_samples = []
        out: List[Tuple[float, float]] = []
        total = self._trace_total
        for clock, generated in samples:
            total += generated
            out.append((offset + clock, float(total)))
        self._trace_total = total
        return out

    def inject_stall(self, duration: float, *, busy: bool = True) -> None:
        """Advance the replica clock by ``duration`` without decoding.

        Used to charge non-decode GPU work that blocks generation, e.g. the
        KVCache re-prefill storms of partial-rollout systems or weight-load
        stalls.  ``busy=True`` books the time as decode-busy (the GPU is doing
        work, just not emitting tokens); ``busy=False`` books it as idle.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.clock += duration
        # Push any pending env returns accordingly: environment latency is
        # wall-clock, so env timers keep running during the stall (no shift).
        if busy:
            self.stats.decode_busy_time += duration
        else:
            self.stats.idle_time += duration

    def reprefill_all_inflight(self) -> float:
        """Charge a re-prefill of every in-flight sequence's cached context.

        Returns the stall duration charged.  This models the partial-rollout
        pause-and-sync cycle (§2.3): after a weight update, every interrupted
        trajectory must rebuild its KVCache before decoding can continue.
        """
        self._sync_all()
        inflight = [
            self._sequences[sid]
            for sid in self._dec.ids_list() + self._env.ids_list()
        ]
        total_context = sum(seq.context_tokens for seq in inflight)
        if total_context == 0:
            return 0.0
        # Each interrupted trajectory re-prefills its own context; the engine
        # batches these prefills, so the cost is the sum of per-sequence
        # prefill compute (attention cost is quadratic per sequence, not over
        # the concatenation).
        stall = sum(
            self.decode_model.prefill_time(seq.context_tokens, batch_size=1)
            for seq in inflight
        )
        self.stats.reprefill_tokens += total_context
        for seq in inflight:
            seq.trajectory.reprefill_count += 1
        self.inject_stall(stall, busy=True)
        return stall

    def set_weight_version(self, version: int) -> None:
        """Switch the replica to a new weight version (subsequent tokens use it)."""
        if version < self.weight_version:
            raise ValueError("weight version cannot go backwards")
        self.weight_version = version

    # ------------------------------------------------------------------ batch API
    def run_to_completion(self, max_time: float = math.inf) -> Tuple[float, List[Trajectory]]:
        """Drive the replica until every sequence finishes (baseline systems).

        Returns ``(elapsed_time, completed_trajectories)``.
        """
        start = self.clock
        completed: List[Trajectory] = []
        while self._sequences and self.clock - start < max_time:
            delta = self.next_event_in()
            if delta is None:
                break
            delta = min(delta, max_time - (self.clock - start))
            completed.extend(self.advance(delta))
        completed.extend(self.drain_completed())
        # drain_completed may duplicate those returned by advance; dedupe by id.
        unique: Dict[int, Trajectory] = {t.traj_id: t for t in completed}
        return self.clock - start, list(unique.values())


def build_sequence_states(
    trajectories: Sequence[Trajectory],
    schedules: Sequence[TurnSchedule],
) -> List[SequenceState]:
    """Pair trajectories with their pre-sampled turn schedules."""
    if len(trajectories) != len(schedules):
        raise ValueError("trajectories and schedules must align")
    return [SequenceState(trajectory=t, schedule=s) for t, s in zip(trajectories, schedules)]

"""Replica-level generation engine.

:class:`ReplicaGenerationState` models one rollout replica (one vLLM tensor-
parallel group) decoding a set of trajectories.  It is deliberately free of
any discrete-event-simulation dependency: callers drive it by asking "when is
your next internal event?" and then telling it "advance by this much time".
The ``repro.runtime`` harness turns that contract into engine processes:

* Laminar and AReaL run one interruptible driver process per replica
  (:func:`repro.runtime.replica_driver`), which sleeps until the replica's
  own next event — so repacking, weight pulls and failures can land at any
  instant and simulated time jumps between real events;
* the batch-synchronous baselines drain each replica with
  :func:`repro.runtime.drain_replica` behind an ``AllOf`` barrier
  (:func:`repro.runtime.generation_barrier`), which reproduces their
  slowest-replica iteration semantics exactly.

Because every system shares this engine (and the roofline decode model inside
it), throughput differences between systems come purely from orchestration —
matching the paper's "alleviating implementation bias" methodology (§8).

Structure-of-arrays core
------------------------
The inner engine is vectorized: per-sequence decode state (segment remaining,
generated tokens, context length, environment return time) lives in numpy
arrays indexed by a dense *slot* id, and the decode / env-wait sets are
order-preserving parallel vectors of (seq id, slot, KVCache row)
(:class:`_SeqVector`) maintained incrementally — so the per-event hot path is
a handful of masked reductions and one clipped vector subtract, with no
Python loop over the batch and no per-event cache rebuilds.  Per-sequence
Python runs only on the rare control tail — admission, preemption, segment
finishes, environment transitions — and the :class:`SequenceState` objects
that external callers hold (repack, failover, the partial response pool) are
re-synchronised from the arrays at every boundary where they can be observed
(``sequences()``, removal, completion).
``tests/test_engine_equivalence.py`` drives this engine step-for-step against
the retained scalar reference (:mod:`repro.rollout.reference`) and asserts
bit-identical trajectories, stats and KVCache occupancy.

Decode semantics
----------------
All actively decoding sequences advance one token per decode step; the decode
step latency follows the roofline model and depends on the live batch size and
mean context length.  A sequence is one of:

``queued``      waiting for KVCache admission (vLLM waiting queue)
``decoding``    in the decode batch
``env_wait``    waiting on an environment interaction (multi-turn tasks)
``done``        finished (removed from the replica)

KVCache management follows the vLLM model: a sequence is admitted when its
*current* context fits (plus a small growth lookahead), blocks are allocated
incrementally as tokens are decoded, and when the cache fills up the most
recently admitted sequences are preempted back to the waiting queue (their
cache is rebuilt when they are re-admitted).  This reproduces the utilisation
lifecycle of Figure 9: ramp-up, a plateau near ``C_max`` while a waiting queue
exists, and a ramp-down once it drains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..llm.decode_model import DecodeModel, decode_step_time_arrays
from ..sim.kvcache import KVCache, KVCacheConfig, grow_array
from ..types import Trajectory

#: Numerical slack used when comparing simulated times.
_EPS = 1e-9

#: Initial slot / vector capacity of the SoA state (grown geometrically).
_INITIAL_SLOTS = 64


@dataclass
class TurnSchedule:
    """Pre-sampled decode/environment schedule for one trajectory.

    ``segments[i]`` is the number of response tokens decoded in turn ``i``;
    ``env_latencies[i]`` is the environment latency paid *after* turn ``i``
    (zero after the final turn).  Single-turn tasks have one segment and no
    environment latency.
    """

    segments: List[int]
    env_latencies: List[float]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a turn schedule needs at least one segment")
        if len(self.env_latencies) != len(self.segments):
            raise ValueError("env_latencies must have one entry per segment")
        if any(s <= 0 for s in self.segments):
            raise ValueError("segments must be positive")
        if any(l < 0 for l in self.env_latencies):
            raise ValueError("env latencies must be non-negative")

    @property
    def total_tokens(self) -> int:
        return sum(self.segments)

    @property
    def num_turns(self) -> int:
        return len(self.segments)

    @classmethod
    def single_turn(cls, tokens: int) -> "TurnSchedule":
        return cls(segments=[int(tokens)], env_latencies=[0.0])


class SequenceStatus:
    QUEUED = "queued"
    DECODING = "decoding"
    ENV_WAIT = "env_wait"
    DONE = "done"


#: Integer status codes used by the slot-indexed status array (the
#: authoritative residency state of the vectorized engine; the string
#: ``SequenceState.status`` field is re-synchronised from it lazily).
_ST_QUEUED = 0
_ST_DECODING = 1
_ST_ENV_WAIT = 2
_STATUS_NAMES = (
    SequenceStatus.QUEUED,
    SequenceStatus.DECODING,
    SequenceStatus.ENV_WAIT,
)


@dataclass
class SequenceState:
    """Runtime state of one trajectory on a replica."""

    trajectory: Trajectory
    schedule: TurnSchedule
    status: str = SequenceStatus.QUEUED
    turn_index: int = 0
    tokens_done_in_turn: int = 0
    env_return_time: float = math.inf
    #: True if this sequence arrived via repack/failover and its existing
    #: context must be re-prefilled before decoding resumes on this replica.
    needs_reprefill: bool = False

    @property
    def seq_id(self) -> int:
        return self.trajectory.traj_id

    @property
    def segment_remaining(self) -> int:
        return self.schedule.segments[self.turn_index] - self.tokens_done_in_turn

    @property
    def total_remaining(self) -> int:
        remaining = self.segment_remaining
        remaining += sum(self.schedule.segments[self.turn_index + 1:])
        return remaining

    @property
    def context_tokens(self) -> int:
        return self.trajectory.prompt.prompt_tokens + self.trajectory.generated_tokens

    @property
    def reserved_tokens(self) -> int:
        """KVCache reservation: prompt plus the full eventual response."""
        return self.trajectory.prompt.prompt_tokens + self.schedule.total_tokens


@dataclass
class ReplicaStats:
    """Cumulative counters exposed for metrics and tests."""

    tokens_generated: int = 0
    prompt_tokens_prefilled: int = 0
    reprefill_tokens: int = 0
    trajectories_completed: int = 0
    decode_busy_time: float = 0.0
    idle_time: float = 0.0
    env_blocked_time: float = 0.0
    preemptions: int = 0


class _SeqVector:
    """Order-preserving parallel arrays of (seq id, slot, KVCache row).

    Backs the decode and env-wait sets of the vectorized engine.  Appends and
    tail-pops are O(1) amortised; arbitrary deletions compact the prefix with
    one vectorized copy.  Views returned by the accessors alias the backing
    arrays and are valid until the next mutation.
    """

    __slots__ = ("ids", "slots", "rows", "n")

    def __init__(self) -> None:
        self.ids = np.empty(_INITIAL_SLOTS, dtype=np.int64)
        self.slots = np.empty(_INITIAL_SLOTS, dtype=np.int64)
        self.rows = np.empty(_INITIAL_SLOTS, dtype=np.int64)
        self.n = 0

    def __len__(self) -> int:
        return self.n

    def append(self, seq_id: int, slot: int, row: int) -> None:
        if self.n == len(self.ids):
            capacity = 2 * len(self.ids)
            self.ids = grow_array(self.ids, capacity)
            self.slots = grow_array(self.slots, capacity)
            self.rows = grow_array(self.rows, capacity)
        self.ids[self.n] = seq_id
        self.slots[self.n] = slot
        self.rows[self.n] = row
        self.n += 1

    def extend(self, ids: np.ndarray, slots: np.ndarray, rows: np.ndarray) -> None:
        """Append many entries at once, preserving input order."""
        count = len(ids)
        if not count:
            return
        need = self.n + count
        if need > len(self.ids):
            capacity = len(self.ids)
            while capacity < need:
                capacity *= 2
            self.ids = grow_array(self.ids, capacity)
            self.slots = grow_array(self.slots, capacity)
            self.rows = grow_array(self.rows, capacity)
        self.ids[self.n:need] = ids
        self.slots[self.n:need] = slots
        self.rows[self.n:need] = rows
        self.n = need

    def pop(self) -> Tuple[int, int, int]:
        """Remove and return the most recently appended entry."""
        self.n -= 1
        i = self.n
        return int(self.ids[i]), int(self.slots[i]), int(self.rows[i])

    def ids_view(self) -> np.ndarray:
        return self.ids[: self.n]

    def slots_view(self) -> np.ndarray:
        return self.slots[: self.n]

    def rows_view(self) -> np.ndarray:
        return self.rows[: self.n]

    def ids_list(self) -> List[int]:
        return [int(x) for x in self.ids[: self.n]]

    def delete_positions(self, positions: Sequence[int]) -> None:
        """Delete the entries at ``positions``, preserving the order of the rest."""
        if len(positions) == 1:
            position = int(positions[0])
            stop = self.n
            for name in ("ids", "slots", "rows"):
                arr = getattr(self, name)
                arr[position:stop - 1] = arr[position + 1:stop]
            self.n = stop - 1
            return
        keep = np.ones(self.n, dtype=bool)
        keep[positions] = False
        kept = int(keep.sum())
        for name in ("ids", "slots", "rows"):
            arr = getattr(self, name)
            arr[:kept] = arr[: self.n][keep]
        self.n = kept

    def remove_id(self, seq_id: int) -> bool:
        """Delete the (first) entry for ``seq_id``; True if it was present."""
        hits = np.flatnonzero(self.ids[: self.n] == seq_id)
        if not len(hits):
            return False
        self.delete_positions(hits[:1])
        return True


class _IdQueue:
    """FIFO of waiting sequence ids (the vLLM waiting queue).

    A head pointer over a plain list makes :meth:`popleft` / :meth:`popleft_n`
    O(1) amortised — the admission scan runs on every ``next_event_in`` /
    ``advance`` loop, so head pops must not be ``list.pop(0)``.  Preempted
    sequences go back to the *front* (:meth:`appendleft`, vLLM recompute
    order) by reclaiming the dead prefix when one exists.
    """

    __slots__ = ("_items", "_head")

    def __init__(self) -> None:
        self._items: List[int] = []
        self._head = 0

    def __len__(self) -> int:
        return len(self._items) - self._head

    def __bool__(self) -> bool:
        return len(self._items) > self._head

    def head(self) -> int:
        return self._items[self._head]

    def append(self, seq_id: int) -> None:
        self._items.append(seq_id)

    def appendleft(self, seq_id: int) -> None:
        if self._head:
            self._head -= 1
            self._items[self._head] = seq_id
        else:
            self._items.insert(0, seq_id)

    def popleft(self) -> int:
        item = self._items[self._head]
        self._head += 1
        self._compact()
        return item

    def popleft_n(self, count: int) -> None:
        self._head += count
        self._compact()

    def remove(self, seq_id: int) -> None:
        index = self._items.index(seq_id, self._head)
        del self._items[index]

    def as_array(self) -> np.ndarray:
        """The queued ids in FIFO order as an int64 array (a copy)."""
        return np.array(self._items[self._head:], dtype=np.int64)

    def head_array(self, count: int) -> np.ndarray:
        """The first ``count`` queued ids in FIFO order (a copy)."""
        return np.array(self._items[self._head:self._head + count], dtype=np.int64)

    def _compact(self) -> None:
        if self._head > 64 and self._head * 2 >= len(self._items):
            del self._items[: self._head]
            self._head = 0


class ReplicaGenerationState:
    """Simulated decode engine for one rollout replica (vectorized core)."""

    def __init__(
        self,
        replica_id: int,
        decode_model: DecodeModel,
        kvcache_config: KVCacheConfig,
        max_concurrency: int = 1024,
        weight_version: int = 0,
    ) -> None:
        if max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")
        self.replica_id = replica_id
        self.decode_model = decode_model
        self.kvcache = KVCache(kvcache_config)
        self.max_concurrency = max_concurrency
        self.weight_version = weight_version
        self.clock = 0.0
        self.stats = ReplicaStats()
        self._sequences: Dict[int, SequenceState] = {}
        self._queued = _IdQueue()
        #: Decode and env-wait sets: incrementally maintained (id, slot, row)
        #: vectors in the same order the scalar engine kept its id lists.
        self._dec = _SeqVector()
        self._env = _SeqVector()
        self._completed: List[Trajectory] = []
        self._time_carry = 0.0
        #: Straggler degradation (repro.faults): multipliers applied to the
        #: decode step time and to environment latencies.  1.0 (the default)
        #: is the exact pre-fault code path — the guards below skip the
        #: multiply entirely, so healthy replicas stay bit-identical.
        self._decode_slowdown = 1.0
        self._env_slowdown = 1.0
        #: Bumped on every mutation of the decode batch (admission, removal,
        #: preemption, token growth); keys the incremental event caches below.
        self._mutation = 0
        #: True while the waiting queue is known to be inadmissible (head does
        #: not fit, or no concurrency headroom).  Kept exact by clearing at
        #: every event that can unblock admission: KV rows freed or queue /
        #: concurrency changed (finish, preemption, add/remove).  Token
        #: growth only shrinks headroom, so decode windows need not clear it
        #: — that is what keeps the steady-state admission check O(1).
        self._admit_blocked = False
        self._step_cache: Tuple[int, float] = (-1, 0.0)
        self._min_seg_cache: Tuple[int, int] = (-1, 0)
        self._env_min_cache: Tuple[int, float] = (-1, math.inf)
        #: Utilisation at the previous observation, for the ramp-down test
        #: (§5.2: a repack candidate has non-increasing KVCache utilisation).
        self.prev_utilization = 0.0
        #: Observability: when tracing is on, the decode loop appends
        #: ``(local clock, tokens)`` increments here (one list append per
        #: vectorized decode window — the batched-flush contract keeping the
        #: SoA hot path fast); the harness drains it at phase boundaries via
        #: :meth:`take_trace_samples`.  ``None`` (the default) disables the
        #: buffer entirely.
        self.trace_samples: Optional[List[Tuple[float, int]]] = None
        self._trace_total = 0
        # SoA state, indexed by slot id (see _alloc_slot).
        self._slots: Dict[int, int] = {}
        self._free_slots: List[int] = []
        self._a_seg_rem = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        self._a_gen = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        self._a_target = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        self._a_prompt = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        self._a_ctx = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        self._a_done_turn = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        self._a_env = np.full(_INITIAL_SLOTS, math.inf, dtype=np.float64)
        self._a_last_ver = np.full(_INITIAL_SLOTS, -1, dtype=np.int64)
        # Control-tail SoA: residency status, turn cursor, and per-slot views
        # into the flat turn-schedule pools, so segment finishes / env-wait
        # transitions / admission scans are batch gathers instead of
        # per-sequence attribute walks.
        self._a_status = np.zeros(_INITIAL_SLOTS, dtype=np.int8)
        self._a_turn = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        self._a_nturns = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        self._a_reprefill = np.zeros(_INITIAL_SLOTS, dtype=bool)
        self._a_sched_off = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        self._a_sched_cap = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        #: Flat schedule pools: slot ``s`` owns ``_sched_seg[off:off+cap]``
        #: (segment lengths) and ``_sched_env[...]`` (env latencies), where
        #: ``off = _a_sched_off[s]``.  Regions are reused across the sequences
        #: a slot hosts; a slot upgrades to a fresh tail region only when a
        #: new occupant needs more turns than the slot ever held.
        self._sched_seg = np.zeros(4 * _INITIAL_SLOTS, dtype=np.int64)
        self._sched_env = np.zeros(4 * _INITIAL_SLOTS, dtype=np.float64)
        self._sched_len = 0

    # ------------------------------------------------------------------ slots
    def _alloc_slot(self, seq: SequenceState) -> int:
        if not self._free_slots:
            old = len(self._a_seg_rem)
            new = 2 * old
            for name in ("_a_seg_rem", "_a_gen", "_a_target", "_a_prompt",
                         "_a_ctx", "_a_done_turn", "_a_status", "_a_turn",
                         "_a_nturns", "_a_reprefill", "_a_sched_off",
                         "_a_sched_cap"):
                setattr(self, name, grow_array(getattr(self, name), new))
            self._a_env = grow_array(self._a_env, new, fill=math.inf)
            self._a_last_ver = grow_array(self._a_last_ver, new, fill=-1)
            self._free_slots.extend(range(new - 1, old - 1, -1))
        slot = self._free_slots.pop()
        trajectory = seq.trajectory
        self._a_seg_rem[slot] = seq.segment_remaining
        self._a_gen[slot] = trajectory.generated_tokens
        self._a_target[slot] = trajectory.target_tokens
        self._a_prompt[slot] = trajectory.prompt.prompt_tokens
        self._a_ctx[slot] = trajectory.prompt.prompt_tokens + trajectory.generated_tokens
        self._a_done_turn[slot] = seq.tokens_done_in_turn
        self._a_env[slot] = seq.env_return_time
        self._a_last_ver[slot] = -1
        self._a_status[slot] = _ST_QUEUED
        self._a_turn[slot] = seq.turn_index
        schedule = seq.schedule
        num_turns = schedule.num_turns
        self._a_nturns[slot] = num_turns
        self._a_reprefill[slot] = seq.needs_reprefill
        if num_turns > self._a_sched_cap[slot]:
            offset = self._sched_len
            need = offset + num_turns
            if need > len(self._sched_seg):
                capacity = len(self._sched_seg)
                while capacity < need:
                    capacity *= 2
                self._sched_seg = grow_array(self._sched_seg, capacity)
                self._sched_env = grow_array(self._sched_env, capacity)
            self._a_sched_off[slot] = offset
            self._a_sched_cap[slot] = num_turns
            self._sched_len = need
        offset = int(self._a_sched_off[slot])
        self._sched_seg[offset:offset + num_turns] = schedule.segments
        self._sched_env[offset:offset + num_turns] = schedule.env_latencies
        self._slots[seq.seq_id] = slot
        return slot

    def _release_slot(self, seq_id: int) -> None:
        self._free_slots.append(self._slots.pop(seq_id))

    def _sync_sequence(self, seq_id: int) -> None:
        """Write array-held (lazy) fields back to the sequence/trajectory."""
        slot = self._slots[seq_id]
        seq = self._sequences[seq_id]
        seq.tokens_done_in_turn = int(self._a_done_turn[slot])
        turn = int(self._a_turn[slot])
        seq.turn_index = turn
        seq.status = _STATUS_NAMES[self._a_status[slot]]
        seq.env_return_time = float(self._a_env[slot])
        seq.needs_reprefill = bool(self._a_reprefill[slot])
        trajectory = seq.trajectory
        trajectory.turns_done = turn
        trajectory.generated_tokens = min(
            trajectory.target_tokens, int(self._a_gen[slot])
        )

    def _sync_all(self) -> None:
        sequences = self._sequences
        if not sequences:
            return
        # Batch the array→object write-back: one C-level ``tolist`` per field
        # instead of six numpy scalar extractions per sequence.
        slots = np.fromiter(
            (self._slots[seq_id] for seq_id in sequences),
            dtype=np.int64, count=len(sequences),
        )
        done_turn = self._a_done_turn[slots].tolist()
        turns = self._a_turn[slots].tolist()
        statuses = self._a_status[slots].tolist()
        env_times = self._a_env[slots].tolist()
        reprefill = self._a_reprefill[slots].tolist()
        generated = self._a_gen[slots].tolist()
        for index, seq in enumerate(sequences.values()):
            seq.tokens_done_in_turn = done_turn[index]
            turn = turns[index]
            seq.turn_index = turn
            seq.status = _STATUS_NAMES[statuses[index]]
            seq.env_return_time = env_times[index]
            seq.needs_reprefill = reprefill[index]
            trajectory = seq.trajectory
            trajectory.turns_done = turn
            trajectory.generated_tokens = min(
                trajectory.target_tokens, generated[index]
            )

    # ------------------------------------------------------------------ intake
    def add_sequences(self, sequences: Sequence[SequenceState]) -> None:
        """Add new or migrated sequences to this replica's queue."""
        for seq in sequences:
            if seq.seq_id in self._sequences:
                raise ValueError(f"sequence {seq.seq_id} already on replica {self.replica_id}")
            seq.status = SequenceStatus.QUEUED
            self._sequences[seq.seq_id] = seq
            self._alloc_slot(seq)
            self._queued.append(seq.seq_id)
        self._admit_blocked = False
        self._try_admit()

    def remove_sequences(self, seq_ids: Sequence[int]) -> List[SequenceState]:
        """Detach (in-progress) sequences, e.g. when repacked to another replica."""
        removed: List[SequenceState] = []
        for seq_id in seq_ids:
            seq = self._sequences.get(seq_id)
            if seq is None:
                continue
            self._sync_sequence(seq_id)
            del self._sequences[seq_id]
            if seq.status == SequenceStatus.QUEUED:
                self._queued.remove(seq_id)
            elif seq.status == SequenceStatus.DECODING:
                self._dec.remove_id(seq_id)
                self.kvcache.free(seq_id)
            elif seq.status == SequenceStatus.ENV_WAIT:
                self._env.remove_id(seq_id)
                self.kvcache.free(seq_id)
            self._release_slot(seq_id)
            removed.append(seq)
        if removed:
            self._mutation += 1
            self._admit_blocked = False
        self._try_admit()
        return removed

    def remove_all(self) -> List[SequenceState]:
        """Detach every in-progress sequence (machine failure / full release)."""
        return self.remove_sequences(list(self._sequences.keys()))

    # ------------------------------------------------------------------ queries
    @property
    def num_sequences(self) -> int:
        return len(self._sequences)

    @property
    def num_decoding(self) -> int:
        return self._dec.n

    @property
    def num_queued(self) -> int:
        return len(self._queued)

    @property
    def num_env_waiting(self) -> int:
        return self._env.n

    @property
    def kvcache_utilization(self) -> float:
        return self.kvcache.utilization

    @property
    def is_idle(self) -> bool:
        return not self._sequences

    def drain_completed(self) -> List[Trajectory]:
        """Return (and clear) trajectories completed since the last drain."""
        completed, self._completed = self._completed, []
        return completed

    def sequences(self) -> List[SequenceState]:
        self._sync_all()
        return list(self._sequences.values())

    def mean_context_tokens(self) -> float:
        if not self._dec.n:
            return 0.0
        total = int(self._a_ctx[self._dec.slots_view()].sum())
        return total / self._dec.n

    def current_step_time(self) -> float:
        """Decode-step latency of the live batch.

        Cached against the mutation counter: callers typically ask for the
        step time twice per event (once to find the next event, once to apply
        the elapsed window), and the O(batch) context reduction is the widest
        scan on the event-driven hot path.
        """
        if not self._dec.n:
            return 0.0
        version, value = self._step_cache
        if version == self._mutation:
            return value
        value = self.decode_model.decode_step_time(
            self._dec.n, int(self.mean_context_tokens())
        )
        if self._decode_slowdown != 1.0:
            value *= self._decode_slowdown
        self._step_cache = (self._mutation, value)
        return value

    def _min_segment_remaining(self) -> int:
        """Smallest segment remainder in the decode batch (incrementally cached).

        Valid only while the decode set is non-empty.  ``next_event_in`` and
        ``advance`` both need this reduction for the same event; caching it
        against the mutation counter means the second caller (and every driver
        re-entry without an intervening mutation) pays O(1).
        """
        version, value = self._min_seg_cache
        if version != self._mutation:
            value = int(self._a_seg_rem[self._dec.slots_view()].min())
            self._min_seg_cache = (self._mutation, value)
        return value

    def _earliest_env_return(self) -> float:
        """Earliest environment return time (incrementally cached)."""
        version, value = self._env_min_cache
        if version != self._mutation:
            value = float(self._a_env[self._env.slots_view()].min())
            self._env_min_cache = (self._mutation, value)
        return value

    def in_ramp_down(self, c_max: Optional[float] = None) -> bool:
        """§5.2 idleness signal: utilisation below C_max and not increasing."""
        c_max = c_max if c_max is not None else self.kvcache.config.c_max
        util = self.kvcache_utilization
        return self.num_queued == 0 and util < min(c_max, self.prev_utilization + 1e-12)

    def observe_utilization(self) -> float:
        """Record the current utilisation for ramp-down detection and return it."""
        util = self.kvcache_utilization
        self.prev_utilization = util
        return util

    # ------------------------------------------------------------------ scheduling
    #: Extra tokens of headroom required beyond a sequence's current context
    #: before it is admitted, to avoid admit/preempt thrashing.
    admission_lookahead_tokens: int = 256

    def _try_admit(self) -> None:
        """Admit waiting sequences head-first while cache and concurrency allow.

        A scalar head check keeps the steady state (cache full, nothing
        admissible) O(1); when the head fits, one vectorized prefix scan over
        the whole waiting queue decides every admission of this call at once
        — bit-identical to the scalar admit-one-recheck loop because
        admission is strictly FIFO and each admission consumes exactly the
        blocks the prefix sum accounts for.
        """
        queued = self._queued
        if not queued or self._admit_blocked:
            return
        capacity = self.max_concurrency - self._dec.n - self._env.n
        if capacity <= 0:
            self._admit_blocked = True
            return
        kvcache = self.kvcache
        lookahead = self.admission_lookahead_tokens
        head_context = int(self._a_ctx[self._slots[queued.head()]])
        if not kvcache.can_allocate(head_context + lookahead):
            self._admit_blocked = True
            return
        # Never scan past what concurrency allows: the steady state admits a
        # handful of sequences per call regardless of queue depth.
        limit = min(len(queued), capacity)
        if limit <= 4:
            # Tiny admission: the scalar admit-one-recheck loop beats the
            # array set-up (the vectorized path below is its prefix-scan
            # formulation — same FIFO decision, same allocation order).
            admitted = 0
            while admitted < limit:
                seq_id = queued.head()
                slot = self._slots[seq_id]
                context = int(self._a_ctx[slot])
                if admitted and not kvcache.can_allocate(context + lookahead):
                    break
                queued.popleft()
                row = kvcache.allocate(seq_id, context + 1)
                self._a_status[slot] = _ST_DECODING
                self._dec.append(seq_id, slot, row)
                if self._a_reprefill[slot]:
                    self.stats.reprefill_tokens += context
                    self._a_reprefill[slot] = False
                else:
                    self.stats.prompt_tokens_prefilled += int(self._a_prompt[slot])
                admitted += 1
            self._mutation += admitted
            # Either concurrency is exhausted or the next head does not fit;
            # a clearing event re-arms the scan.
            self._admit_blocked = True
            return
        ids = queued.head_array(limit)
        slots = np.fromiter(
            (self._slots[int(i)] for i in ids), dtype=np.int64, count=len(ids)
        )
        contexts = self._a_ctx[slots]
        alloc_blocks = kvcache.blocks_for_many(contexts + 1)
        need_blocks = kvcache.blocks_for_many(contexts + lookahead)
        used_before = kvcache.used_blocks + np.concatenate(
            ([0], np.cumsum(alloc_blocks[:-1]))
        )
        fits = used_before + need_blocks <= kvcache.config.total_blocks
        count = len(ids) if fits.all() else int(np.argmin(fits))
        count = min(count, capacity)
        if count <= 0:
            self._admit_blocked = True
            return
        admit_ids = ids[:count]
        admit_slots = slots[:count]
        queued.popleft_n(count)
        rows = kvcache.allocate_many(admit_ids, contexts[:count] + 1)
        self._a_status[admit_slots] = _ST_DECODING
        self._dec.extend(admit_ids, admit_slots, rows)
        reprefill = self._a_reprefill[admit_slots]
        self.stats.reprefill_tokens += int(contexts[:count][reprefill].sum())
        self.stats.prompt_tokens_prefilled += int(
            self._a_prompt[admit_slots[~reprefill]].sum()
        )
        self._a_reprefill[admit_slots] = False
        self._mutation += count
        self._admit_blocked = True

    def _preempt_one(self) -> bool:
        """Preempt the most recently admitted decoding sequence (vLLM recompute).

        Returns True if a sequence was preempted.
        """
        if self._dec.n <= 1:
            return False
        seq_id, slot, _row = self._dec.pop()
        self.kvcache.free(seq_id)
        self._a_status[slot] = _ST_QUEUED
        self._a_reprefill[slot] = True
        self._queued.appendleft(seq_id)
        self.stats.preemptions += 1
        self._mutation += 1
        self._admit_blocked = False
        return True

    def _ensure_growth_capacity(self, tokens: int) -> None:
        """Preempt sequences until every decoding sequence can grow by ``tokens``."""
        # Fast path: growing by ``tokens`` adds at most ceil(tokens/block) + 1
        # blocks per sequence, so a roomy cache never needs the exact scan.
        upper_bound = self._dec.n * (self.kvcache.blocks_for(tokens) + 1)
        if upper_bound <= self.kvcache.free_blocks:
            return
        while True:
            current = self.kvcache.tokens_at(self._dec.rows_view())
            needed_blocks = int(
                (self.kvcache.blocks_for_many(current + tokens)
                 - self.kvcache.blocks_for_many(current)).sum()
            )
            if needed_blocks <= self.kvcache.free_blocks:
                return
            if not self._preempt_one():
                return

    def _release_env_returns(self) -> None:
        env = self._env
        if not env.n:
            return
        ready = self._a_env[env.slots_view()] <= self.clock + _EPS
        if not ready.any():
            return
        positions = np.flatnonzero(ready)
        slots = env.slots[positions]
        self._a_env[slots] = math.inf
        self._a_status[slots] = _ST_DECODING
        self._dec.extend(env.ids[positions], slots, env.rows[positions])
        env.delete_positions(positions)
        self._mutation += 1

    def next_event_in(self) -> Optional[float]:
        """Time until the next internal event, or ``None`` if the replica is empty.

        Internal events are: a decoding sequence finishing its current segment,
        or an environment interaction returning.  Admission happens eagerly and
        never needs a timer.  The underlying reductions are cached against the
        mutation counter, so a driver that calls ``next_event_in`` and then
        ``advance`` for the same event pays for the scan once.
        """
        if not self._sequences:
            return None
        self._release_env_returns()
        if self._queued and not self._admit_blocked:
            self._try_admit()
        candidates: List[float] = []
        if self._dec.n:
            step = self.current_step_time()
            min_seg = self._min_segment_remaining()
            candidates.append(max(_EPS, min_seg * step - self._time_carry))
        if self._env.n:
            earliest = self._earliest_env_return()
            candidates.append(max(_EPS, earliest - self.clock))
        if not candidates:
            # Only queued sequences that cannot be admitted: the replica is
            # stuck (should not happen when reservations fit the cache).
            return None
        return min(candidates)

    def advance(self, dt: float) -> List[Trajectory]:
        """Advance the replica by ``dt`` seconds of simulated time.

        Handles any number of internal events that fall inside the window and
        returns the trajectories completed during it.
        """
        if dt < 0:
            raise ValueError("dt must be non-negative")
        target = self.clock + dt
        completed_now: List[Trajectory] = []
        # Enter the loop at least once for any positive window.  When the
        # step time shrinks below already-accrued ``_time_carry`` (a slowdown
        # clearing, or a batch-composition change after mass migration), the
        # next-event window floors to ``_EPS`` and the guard alone would
        # never admit it; the zero-width pass emits the carry-covered token
        # and is a no-op otherwise.
        pending = dt > 0.0
        while pending or self.clock < target - _EPS:
            pending = False
            self._release_env_returns()
            if self._queued and not self._admit_blocked:
                self._try_admit()
            if not self._dec.n:
                # Nothing to decode: jump to the next env return (or the target).
                if self._env.n:
                    earliest = self._earliest_env_return()
                    next_clock = min(target, max(earliest, self.clock))
                else:
                    next_clock = target
                blocked = next_clock - self.clock
                if self._env.n:
                    self.stats.env_blocked_time += blocked
                else:
                    self.stats.idle_time += blocked
                self.clock = next_clock
                continue

            step = self.current_step_time()
            min_seg = self._min_segment_remaining()
            time_to_segment = min_seg * step - self._time_carry
            time_to_env = math.inf
            if self._env.n:
                time_to_env = self._earliest_env_return() - self.clock
            window = min(time_to_segment, time_to_env, target - self.clock)
            window = max(window, 0.0)

            tokens_float = (window + self._time_carry) / step
            tokens = int(math.floor(tokens_float + 1e-9))
            tokens = min(tokens, min_seg)
            self._time_carry = (window + self._time_carry) - tokens * step
            if tokens > 0:
                self._apply_decode(tokens, completed_now)
            self.stats.decode_busy_time += window
            self.clock += window
            if window <= _EPS and tokens == 0:
                # Avoid an infinite loop on degenerate windows; the epsilon
                # slip is charged to the decode-busy bucket (a decode batch is
                # live here) so busy + idle + env-blocked keeps covering the
                # clock.
                new_clock = min(target, self.clock + _EPS)
                self.stats.decode_busy_time += new_clock - self.clock
                self.clock = new_clock
        self._completed.extend(completed_now)
        return completed_now

    def _apply_decode(self, tokens: int, completed_now: List[Trajectory]) -> None:
        """Advance every decoding sequence by up to ``tokens`` tokens (vectorized)."""
        self._mutation += 1  # contexts grow even when the batch set is unchanged
        self._ensure_growth_capacity(tokens)
        dec = self._dec
        slots = dec.slots_view()
        seg = self._a_seg_rem[slots]
        step_tokens = np.minimum(tokens, seg)
        new_gen = np.minimum(self._a_target[slots], self._a_gen[slots] + step_tokens)
        self._a_gen[slots] = new_gen
        self._a_ctx[slots] = self._a_prompt[slots] + new_gen
        self._a_done_turn[slots] += step_tokens
        new_seg = seg - step_tokens
        self._a_seg_rem[slots] = new_seg
        # Tag trajectories decoding under this weight version for the first
        # time (only right after add/version-bump: the vector fast path skips
        # already-tagged slots).
        stale = self._a_last_ver[slots] != self.weight_version
        if stale.any():
            version = self.weight_version
            ids = dec.ids_view()
            for position in np.flatnonzero(stale):
                trajectory = self._sequences[int(ids[position])].trajectory
                if version not in trajectory.versions_used:
                    trajectory.versions_used.append(version)
            self._a_last_ver[slots[stale]] = version
        self.kvcache.append_tokens_many(dec.ids_view(), step_tokens, rows=dec.rows_view())
        generated = int(step_tokens.sum())
        self.stats.tokens_generated += generated
        if self.trace_samples is not None:
            self.trace_samples.append((self.clock, generated))
        finished_positions = np.flatnonzero(new_seg == 0)
        if len(finished_positions) == 1:
            self._finish_one(finished_positions.item(0), completed_now)
            self._mutation += 1
        elif len(finished_positions):
            self._finish_segments(finished_positions, completed_now)
            self._mutation += 1
        if self._queued and not self._admit_blocked:
            self._try_admit()

    def _finish_segments(
        self, positions: np.ndarray, completed_now: List[Trajectory]
    ) -> None:
        """Batched control tail for sequences whose segment just ended.

        Splits the finished positions into the last-turn batch (KV rows are
        recycled in one :meth:`KVCache.free_many` call, trajectories
        finalised) and the turn-advance batch (segment counters reset and
        env-wait transitions applied as vector gathers/scatters); per-object
        Python survives only on completed trajectories, which each pass here
        exactly once.
        """
        dec = self._dec
        if len(positions) == 1:
            self._finish_one(int(positions[0]), completed_now)
            return
        positions = np.asarray(positions)
        slots = dec.slots[positions]
        turns = self._a_turn[slots]
        offsets = self._a_sched_off[slots]
        last = turns + 1 == self._a_nturns[slots]
        env_latencies = self._sched_env[offsets + turns]
        if self._env_slowdown != 1.0:
            env_latencies = env_latencies * self._env_slowdown

        done_positions = positions[last]
        if len(done_positions):
            done_ids = dec.ids[done_positions]
            self.kvcache.free_many(done_ids.tolist())
            self._admit_blocked = False
            clock = self.clock
            for seq_id in done_ids.tolist():
                seq = self._sequences[seq_id]
                self._sync_sequence(seq_id)
                del self._sequences[seq_id]
                self._release_slot(seq_id)
                seq.status = SequenceStatus.DONE
                trajectory = seq.trajectory
                trajectory.finish_time = clock
                trajectory.replica_id = self.replica_id
                trajectory.turns_done = seq.schedule.num_turns
                completed_now.append(trajectory)
            self.stats.trajectories_completed += len(done_positions)

        advancing = ~last
        if advancing.any():
            adv_slots = slots[advancing]
            next_turns = turns[advancing] + 1
            self._a_turn[adv_slots] = next_turns
            self._a_done_turn[adv_slots] = 0
            self._a_seg_rem[adv_slots] = self._sched_seg[offsets[advancing] + next_turns]
            waiting = env_latencies[advancing] > 0
            if waiting.any():
                wait_positions = positions[advancing][waiting]
                wait_slots = dec.slots[wait_positions]
                self._a_env[wait_slots] = self.clock + env_latencies[advancing][waiting]
                self._a_status[wait_slots] = _ST_ENV_WAIT
                self._env.extend(
                    dec.ids[wait_positions], wait_slots, dec.rows[wait_positions]
                )
                done_positions = np.concatenate((done_positions, wait_positions))

        if len(done_positions):
            dec.delete_positions(done_positions)

    def _finish_one(self, position: int, completed_now: List[Trajectory]) -> None:
        """Scalar fast path of :meth:`_finish_segments` for a lone finisher.

        A decode window usually ends exactly one segment; the batched
        gather/scatter machinery costs more than it saves there.  Decision
        logic and side-effect order mirror the batched path one-to-one.
        """
        dec = self._dec
        slot = dec.slots.item(position)
        turn = self._a_turn.item(slot)
        offset = self._a_sched_off.item(slot)
        seq_id = dec.ids.item(position)
        if turn + 1 == self._a_nturns.item(slot):
            self.kvcache.free(seq_id)
            self._admit_blocked = False
            seq = self._sequences[seq_id]
            self._sync_sequence(seq_id)
            del self._sequences[seq_id]
            self._release_slot(seq_id)
            seq.status = SequenceStatus.DONE
            trajectory = seq.trajectory
            trajectory.finish_time = self.clock
            trajectory.replica_id = self.replica_id
            trajectory.turns_done = turn + 1
            completed_now.append(trajectory)
            self.stats.trajectories_completed += 1
            dec.delete_positions((position,))
            return
        self._a_turn[slot] = turn + 1
        self._a_done_turn[slot] = 0
        self._a_seg_rem[slot] = self._sched_seg.item(offset + turn + 1)
        env_latency = self._sched_env.item(offset + turn)
        if self._env_slowdown != 1.0:
            env_latency *= self._env_slowdown
        if env_latency > 0:
            self._a_env[slot] = self.clock + env_latency
            self._a_status[slot] = _ST_ENV_WAIT
            self._env.append(seq_id, slot, dec.rows.item(position))
            dec.delete_positions((position,))

    def enable_trace_sampling(self) -> None:
        """Arm the decode loop's trace-sample buffer (idempotent)."""
        if self.trace_samples is None:
            self.trace_samples = []

    def take_trace_samples(self, offset: float = 0.0) -> List[Tuple[float, float]]:
        """Drain the buffered decode samples as cumulative-token counter rows.

        Returns ``(offset + local clock, cumulative tokens)`` pairs — the
        batched flush the harness feeds to the tracer.  ``offset`` maps the
        replica-local clock into the environment's simulated time (zero for
        the continuous drivers, whose clocks are already absolute).
        """
        samples = self.trace_samples
        if not samples:
            return []
        self.trace_samples = []
        out: List[Tuple[float, float]] = []
        total = self._trace_total
        for clock, generated in samples:
            total += generated
            out.append((offset + clock, float(total)))
        self._trace_total = total
        return out

    def inject_stall(self, duration: float, *, busy: bool = True) -> None:
        """Advance the replica clock by ``duration`` without decoding.

        Used to charge non-decode GPU work that blocks generation, e.g. the
        KVCache re-prefill storms of partial-rollout systems or weight-load
        stalls.  ``busy=True`` books the time as decode-busy (the GPU is doing
        work, just not emitting tokens); ``busy=False`` books it as idle.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.clock += duration
        # Push any pending env returns accordingly: environment latency is
        # wall-clock, so env timers keep running during the stall (no shift).
        if busy:
            self.stats.decode_busy_time += duration
        else:
            self.stats.idle_time += duration

    def reprefill_all_inflight(self) -> float:
        """Charge a re-prefill of every in-flight sequence's cached context.

        Returns the stall duration charged.  This models the partial-rollout
        pause-and-sync cycle (§2.3): after a weight update, every interrupted
        trajectory must rebuild its KVCache before decoding can continue.
        """
        self._sync_all()
        inflight = [
            self._sequences[sid]
            for sid in self._dec.ids_list() + self._env.ids_list()
        ]
        total_context = sum(seq.context_tokens for seq in inflight)
        if total_context == 0:
            return 0.0
        # Each interrupted trajectory re-prefills its own context; the engine
        # batches these prefills, so the cost is the sum of per-sequence
        # prefill compute (attention cost is quadratic per sequence, not over
        # the concatenation).
        stall = sum(
            self.decode_model.prefill_time(seq.context_tokens, batch_size=1)
            for seq in inflight
        )
        self.stats.reprefill_tokens += total_context
        for seq in inflight:
            seq.trajectory.reprefill_count += 1
        self.inject_stall(stall, busy=True)
        return stall

    def set_weight_version(self, version: int) -> None:
        """Switch the replica to a new weight version (subsequent tokens use it)."""
        if version < self.weight_version:
            raise ValueError("weight version cannot go backwards")
        self.weight_version = version

    @property
    def decode_slowdown(self) -> float:
        return self._decode_slowdown

    @property
    def env_slowdown(self) -> float:
        return self._env_slowdown

    @property
    def is_straggling(self) -> bool:
        return self._decode_slowdown != 1.0 or self._env_slowdown != 1.0

    def set_slowdown(self, decode: Optional[float] = None,
                     env: Optional[float] = None) -> None:
        """Apply straggler multipliers to decode step time / env latency.

        A factor of 1.0 restores the nominal path.  The mutation bump
        invalidates the step cache so the new factor takes effect at the
        caller's next event; callers mutate only at the replica's current
        clock (``catch_up`` first), which keeps fleet and process stepping
        bit-identical.
        """
        changed = False
        if decode is not None and decode != self._decode_slowdown:
            if decode <= 0:
                raise ValueError("decode slowdown must be positive")
            # The carry is fractional progress toward the next token stored
            # in *time* units; rescale it with the step time, or clearing a
            # slowdown leaves carry > step and the next-event window
            # collapses into a zero-width livelock.
            self._time_carry *= decode / self._decode_slowdown
            self._decode_slowdown = decode
            changed = True
        if env is not None and env != self._env_slowdown:
            if env <= 0:
                raise ValueError("env slowdown must be positive")
            self._env_slowdown = env
            changed = True
        if changed:
            self._mutation += 1

    # ------------------------------------------------------------------ batch API
    def run_to_completion(self, max_time: float = math.inf) -> Tuple[float, List[Trajectory]]:
        """Drive the replica until every sequence finishes (baseline systems).

        Returns ``(elapsed_time, completed_trajectories)``.
        """
        start = self.clock
        completed: List[Trajectory] = []
        while self._sequences and self.clock - start < max_time:
            delta = self.next_event_in()
            if delta is None:
                break
            delta = min(delta, max_time - (self.clock - start))
            completed.extend(self.advance(delta))
        completed.extend(self.drain_completed())
        # drain_completed may duplicate those returned by advance; dedupe by id.
        unique: Dict[int, Trajectory] = {t.traj_id: t for t in completed}
        return self.clock - start, list(unique.values())


class ReplicaBatchView:
    """Fused cross-replica stepping view over many replicas' decode state.

    Barrier drains (and grouped fleet services) advance replicas that are
    mutually independent: they interact only at the join.  This view stacks
    every *fuse-eligible* replica's per-sequence decode state into one
    cross-replica SoA — segment remainders, generated tokens, env timers and
    KV token counts concatenated lane-major — and sweeps all lanes together
    with per-horizon vectorized kernels: one masked ``next_event_in``
    reduction over the stacked arrays, one clipped vector subtract for decode
    across every lane due at the same horizon.  The per-sequence Python tail
    (segment finishes, env transitions) is shared across lanes per sweep.

    The contract is bit-identity with driving each
    :class:`ReplicaGenerationState` one at a time: every float expression
    mirrors :meth:`ReplicaGenerationState.advance` term for term and in the
    same association, per-lane clock/carry/stats chains accumulate in the
    same order, and FIFO orders (decode set, env set, KV row recycling, slot
    recycling, completion order) are preserved exactly.

    Lanes that fail the eligibility gates stay *resident*: their calls route
    straight to the underlying engine, one replica at a time, so the grouped
    kernel degrades to exactly the per-replica call sequence whenever
    interleaving constraints bind.  A lane is fused only if

    * it is a plain :class:`ReplicaGenerationState` with live sequences,
    * its waiting queue is empty (no admissions or preemptions can fire),
    * no straggler slowdown is active and trace sampling is off, and
    * the KV pool provably fits every remaining token of every live sequence
      (so mid-drain growth can never overflow or trigger preemption).

    Between construction and :meth:`settle` the view owns its fused lanes'
    state; the underlying engines must not be touched.  ``settle`` writes
    everything back (arrays, membership vectors, KV ledger via telescoped
    free/append plus :meth:`KVCache.note_peak`, stats, completions) and is
    idempotent.
    """

    def __init__(self, replicas: Sequence[ReplicaGenerationState], fuse: bool = True) -> None:
        self.replicas = list(replicas)
        self._lane_k = np.full(len(self.replicas), -1, dtype=np.int64)
        self._settled = False
        self._round_done: Dict[int, List[Trajectory]] = {}
        candidates: List[int] = []
        if fuse:
            for pos, replica in enumerate(self.replicas):
                if (
                    type(replica) is ReplicaGenerationState
                    and replica.num_sequences > 0
                    and not replica._queued
                    and replica._decode_slowdown == 1.0
                    and replica._env_slowdown == 1.0
                    and replica.trace_samples is None
                ):
                    candidates.append(pos)
        self._stack(candidates)

    # ------------------------------------------------------------------ stacking
    def _stack(self, positions: List[int]) -> None:
        K = len(positions)
        self._K = K
        self._k_replica: List[ReplicaGenerationState] = [self.replicas[p] for p in positions]
        self._lane_ok = np.zeros(K, dtype=bool)
        if not K:
            return
        reps = self._k_replica
        nd = np.array([r._dec.n for r in reps], dtype=np.int64)
        ne = np.array([r._env.n for r in reps], dtype=np.int64)
        counts = nd + ne
        S = int(counts.sum())
        srep = np.repeat(np.arange(K, dtype=np.int64), counts)
        # Stacked per-sequence state: one gather per field over the
        # concatenation of every lane's slot arrays (the concatenate walks
        # lanes at C level; nothing here is per-replica Python).
        slot_base = np.zeros(K, dtype=np.int64)
        np.cumsum([len(r._a_seg_rem) for r in reps[:-1]], out=slot_base[1:])
        lslot = np.concatenate(
            [v for r in reps for v in (r._dec.slots_view(), r._env.slots_view())]
        )
        gslot = lslot + slot_base[srep]

        def gather(name: str) -> np.ndarray:
            return np.concatenate([getattr(r, name) for r in reps])[gslot]

        self._rep = srep
        self._slot = lslot.copy()
        self._sid = np.concatenate(
            [v for r in reps for v in (r._dec.ids_view(), r._env.ids_view())]
        )
        self._row = np.concatenate(
            [v for r in reps for v in (r._dec.rows_view(), r._env.rows_view())]
        )
        self._seg = gather("_a_seg_rem")
        self._gen = gather("_a_gen")
        self._tgt = gather("_a_target")
        self._prm = gather("_a_prompt")
        self._dnt = gather("_a_done_turn")
        self._trn = gather("_a_turn")
        self._ntr = gather("_a_nturns")
        self._soff = gather("_a_sched_off")
        self._envt = gather("_a_env")
        self._lvr = gather("_a_last_ver")
        row_base = np.zeros(K, dtype=np.int64)
        np.cumsum([len(r.kvcache._tokens) for r in reps[:-1]], out=row_base[1:])
        self._kvt = np.concatenate([r.kvcache._tokens for r in reps])[
            self._row + row_base[srep]
        ]
        self._kvt0 = self._kvt.copy()
        # Membership: [decode set, env set] per lane, lane-major, preserving
        # each engine's FIFO order.
        base = np.zeros(K, dtype=np.int64)
        np.cumsum(counts[:-1], out=base[1:])
        is_dec = (np.arange(S, dtype=np.int64) - base[srep]) < nd[srep]
        self._dec_i = np.flatnonzero(is_dec)
        self._env_i = np.flatnonzero(~is_dec)
        # Per-lane scalars (float chains continue from the engines' values
        # and are assigned back verbatim at settle).
        self._clock = np.array([r.clock for r in reps], dtype=np.float64)
        self._carry = np.array([r._time_carry for r in reps], dtype=np.float64)
        self._busy = np.array([r.stats.decode_busy_time for r in reps], dtype=np.float64)
        self._idle = np.array([r.stats.idle_time for r in reps], dtype=np.float64)
        self._envb = np.array([r.stats.env_blocked_time for r in reps], dtype=np.float64)
        self._tokgen = np.array([r.stats.tokens_generated for r in reps], dtype=np.int64)
        self._ncomp = np.array(
            [r.stats.trajectories_completed for r in reps], dtype=np.int64
        )
        self._wv = np.array([r.weight_version for r in reps], dtype=np.int64)
        self._live = counts.copy()
        self._target = self._clock.copy()
        self._kv_used = np.array([r.kvcache.used_blocks for r in reps], dtype=np.int64)
        self._kv_peak = np.array([r.kvcache.peak_blocks for r in reps], dtype=np.int64)
        self._c_bs = np.array(
            [r.kvcache.config.block_size for r in reps], dtype=np.int64
        )
        self._bs_l = self._c_bs.tolist()
        total_blocks = np.array(
            [r.kvcache.config.total_blocks for r in reps], dtype=np.int64
        )
        # Roofline constants per lane (lanes may mix models / TP degrees).
        consts: Dict[int, Tuple[float, ...]] = {}
        rows = []
        for r in reps:
            dm = r.decode_model
            tup = consts.get(id(dm))
            if tup is None:
                m = dm.model
                tup = (
                    m.weight_bytes,
                    m.kv_bytes_per_token,
                    dm.effective_bandwidth,
                    dm.effective_flops,
                    2.0 * m.num_parameters,
                    4.0 * m.num_layers * m.hidden_size,
                    dm.step_overhead,
                )
                consts[id(dm)] = tup
            rows.append(tup)
        (self._c_wb, self._c_kvb, self._c_bw, self._c_fl,
         self._c_dense, self._c_attn, self._c_ovh) = (
            np.array(col, dtype=np.float64) for col in zip(*rows)
        )
        # Per-lane settle bookkeeping.
        self._admit_cleared = np.zeros(K, dtype=bool)
        self._freed_ids: List[List[int]] = [[] for _ in range(K)]
        self._freed_slots: List[List[int]] = [[] for _ in range(K)]
        self._done_traj: List[List[Trajectory]] = [[] for _ in range(K)]
        self._sched_seg_ref = [r._sched_seg for r in reps]
        self._sched_env_ref = [r._sched_env for r in reps]
        # KV-fit gate: a lane is fused only if the pool holds every live
        # sequence at its *final* size.  Usage during the drain is bounded by
        # sum(blocks(kv_now + remaining)) because each sequence's growth per
        # window is min(tokens, its own segment) <= its remaining tokens; the
        # exact growth scan then never preempts and appends never overflow.
        sched_base = np.zeros(K, dtype=np.int64)
        np.cumsum([r._sched_len for r in reps[:-1]], out=sched_base[1:])
        seg_pool = np.concatenate([r._sched_seg[: r._sched_len] for r in reps])
        csum = np.concatenate(([0], np.cumsum(seg_pool)))
        goff = self._soff + sched_base[srep]
        future = csum[goff + self._ntr] - csum[goff + self._trn + 1]
        final_blocks = -(-(self._kvt + self._seg + future) // self._c_bs[srep])
        need = np.bincount(srep, weights=final_blocks.astype(np.float64), minlength=K)
        fit = need <= total_blocks
        self._lane_ok = fit
        if not fit.all():
            keep = fit[srep]
            self._dec_i = self._dec_i[keep[self._dec_i]]
            self._env_i = self._env_i[keep[self._env_i]]
        for k, pos in enumerate(positions):
            if fit[k]:
                self._lane_k[pos] = k

    # ------------------------------------------------------------------ queries
    @property
    def num_fused(self) -> int:
        return int((self._lane_k >= 0).sum())

    @property
    def all_fused(self) -> bool:
        """True if every lane is serviced by the grouped kernel."""
        return bool((self._lane_k >= 0).all())

    def lane_is_fused(self, pos: int) -> bool:
        return bool(self._lane_k[pos] >= 0)

    def lane_live(self, pos: int) -> int:
        """Live sequences on the lane (stacked counter or engine state)."""
        k = int(self._lane_k[pos])
        if k < 0:
            return self.replicas[pos].num_sequences
        return int(self._live[k])

    def lane_clock(self, pos: int) -> float:
        k = int(self._lane_k[pos])
        if k < 0:
            return self.replicas[pos].clock
        return float(self._clock[k])

    # ------------------------------------------------------------------ kernels
    def _release_env(self, sel: np.ndarray) -> None:
        """Mirror of ``_release_env_returns`` across the selected lanes."""
        ei = self._env_i
        if not len(ei):
            return
        erep = self._rep[ei]
        due = sel[erep] & (self._envt[ei] <= self._clock[erep] + _EPS)
        if not due.any():
            return
        released = ei[due]
        self._envt[released] = math.inf
        merged = np.concatenate((self._dec_i, released))
        self._dec_i = merged[np.argsort(self._rep[merged], kind="stable")]
        self._env_i = ei[~due]

    def _dec_reductions(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        K = self._K
        di = self._dec_i
        dcounts = np.bincount(self._rep[di], minlength=K)
        minseg = np.zeros(K, dtype=np.int64)
        ctxsum = np.zeros(K, dtype=np.int64)
        nz = np.flatnonzero(dcounts)
        if len(nz):
            starts = np.concatenate(([0], np.cumsum(dcounts)[:-1]))
            minseg[nz] = np.minimum.reduceat(self._seg[di], starts[nz])
            ctxsum[nz] = np.add.reduceat(self._prm[di] + self._gen[di], starts[nz])
        return dcounts, minseg, ctxsum

    def _env_reductions(self) -> Tuple[np.ndarray, np.ndarray]:
        K = self._K
        ei = self._env_i
        ecounts = np.bincount(self._rep[ei], minlength=K)
        emin = np.full(K, math.inf, dtype=np.float64)
        nz = np.flatnonzero(ecounts)
        if len(nz):
            starts = np.concatenate(([0], np.cumsum(ecounts)[:-1]))
            emin[nz] = np.minimum.reduceat(self._envt[ei], starts[nz])
        return ecounts, emin

    def _step_times(self, dcounts: np.ndarray, ctxsum: np.ndarray,
                    lanes: np.ndarray) -> np.ndarray:
        """Per-lane decode-step latency for ``lanes`` (all with dcounts > 0)."""
        mean_ctx = (ctxsum[lanes] / dcounts[lanes]).astype(np.int64)
        return decode_step_time_arrays(
            dcounts[lanes],
            np.maximum(1, mean_ctx),
            weight_bytes=self._c_wb[lanes],
            kv_bytes_per_token=self._c_kvb[lanes],
            effective_bandwidth=self._c_bw[lanes],
            effective_flops=self._c_fl[lanes],
            dense_flops=self._c_dense[lanes],
            attn_coef=self._c_attn[lanes],
            step_overhead=self._c_ovh[lanes],
        )

    # ------------------------------------------------------------------ API
    def next_event_in_many(self, positions: Sequence[int]) -> List[Optional[float]]:
        """Per-lane :meth:`ReplicaGenerationState.next_event_in`, one reduction."""
        out: List[Optional[float]] = [None] * len(positions)
        if not positions:
            return out
        ks = self._lane_k[np.asarray(positions, dtype=np.int64)]
        ks_l = ks.tolist()
        fused = [i for i, k in enumerate(ks_l) if k >= 0]
        for i, k in enumerate(ks_l):
            if k < 0:
                out[i] = self.replicas[positions[i]].next_event_in()
        if not fused:
            return out
        sel = np.zeros(self._K, dtype=bool)
        sel[ks[ks >= 0]] = True
        self._release_env(sel)
        dcounts, minseg, ctxsum = self._dec_reductions()
        ecounts, emin = self._env_reductions()
        delta = np.full(self._K, math.inf, dtype=np.float64)
        dl = np.flatnonzero(sel & (dcounts > 0))
        if len(dl):
            step = self._step_times(dcounts, ctxsum, dl)
            delta[dl] = np.maximum(_EPS, minseg[dl] * step - self._carry[dl])
        el = sel & (ecounts > 0)
        if el.any():
            env_delta = np.maximum(_EPS, emin[el] - self._clock[el])
            delta[el] = np.minimum(delta[el], env_delta)
        for i in fused:
            out[i] = float(delta[ks_l[i]])
        return out

    def advance_many(self, positions: Sequence[int],
                     dts: Sequence[float]) -> List[List[Trajectory]]:
        """Grouped :meth:`ReplicaGenerationState.advance` across lanes.

        Fused lanes enter the sweep loop together and each exits when its own
        clock reaches its own target; fallback lanes are advanced through the
        engine directly.  Returns the trajectories completed per position.
        """
        out: List[List[Trajectory]] = [[] for _ in positions]
        if not positions:
            return out
        ks = self._lane_k[np.asarray(positions, dtype=np.int64)]
        ks_l = ks.tolist()
        fused = [i for i, k in enumerate(ks_l) if k >= 0]
        for i, k in enumerate(ks_l):
            if k < 0:
                out[i] = self.replicas[positions[i]].advance(dts[i])
        if not fused:
            return out
        karr = ks[ks >= 0]
        dtv = np.array([dts[i] for i in fused], dtype=np.float64)
        if (dtv < 0).any():
            raise ValueError("dt must be non-negative")
        self._target[karr] = self._clock[karr] + dtv
        self._round_done = {int(k): [] for k in karr.tolist()}
        entered = np.zeros(self._K, dtype=bool)
        entered[karr] = True
        # Mirror the engine's loop guard: one zero-width pass is forced for
        # any positive window even when it is below the epsilon guard.
        forced = np.zeros(self._K, dtype=bool)
        forced[karr[dtv > 0.0]] = True
        active = entered & (forced | (self._clock < self._target - _EPS))
        while active.any():
            self._sweep(active)
            active = entered & (self._clock < self._target - _EPS)
        for i in fused:
            done = self._round_done[ks_l[i]]
            out[i] = done
            self._done_traj[ks_l[i]].extend(done)
        self._round_done = {}
        return out

    def _sweep(self, sel: np.ndarray) -> None:
        """One advance-loop iteration for every selected lane."""
        self._release_env(sel)
        dcounts, minseg, ctxsum = self._dec_reductions()
        ecounts, emin = self._env_reductions()
        nodec = sel & (dcounts == 0)
        if nodec.any():
            # Nothing to decode: jump to the next env return (or the target).
            has_env = nodec & (ecounts > 0)
            if has_env.any():
                next_clock = np.minimum(
                    self._target[has_env],
                    np.maximum(emin[has_env], self._clock[has_env]),
                )
                self._envb[has_env] += next_clock - self._clock[has_env]
                self._clock[has_env] = next_clock
            no_env = nodec & (ecounts == 0)
            if no_env.any():
                self._idle[no_env] += self._target[no_env] - self._clock[no_env]
                self._clock[no_env] = self._target[no_env]
        dl = np.flatnonzero(sel & (dcounts > 0))
        if not len(dl):
            return
        step = self._step_times(dcounts, ctxsum, dl)
        carry = self._carry[dl]
        time_to_segment = minseg[dl] * step - carry
        time_to_env = np.where(
            ecounts[dl] > 0, emin[dl] - self._clock[dl], math.inf
        )
        window = np.minimum(
            np.minimum(time_to_segment, time_to_env),
            self._target[dl] - self._clock[dl],
        )
        window = np.maximum(window, 0.0)
        tokens = np.floor((window + carry) / step + 1e-9).astype(np.int64)
        tokens = np.minimum(tokens, minseg[dl])
        self._carry[dl] = (window + carry) - tokens * step
        decoding = tokens > 0
        if decoding.any():
            tokens_k = np.zeros(self._K, dtype=np.int64)
            tokens_k[dl] = tokens
            self._apply_decode_fused(dl[decoding], tokens_k)
        self._busy[dl] += window
        self._clock[dl] += window
        degenerate = (window <= _EPS) & (tokens == 0)
        if degenerate.any():
            dg = dl[degenerate]
            new_clock = np.minimum(self._target[dg], self._clock[dg] + _EPS)
            self._busy[dg] += new_clock - self._clock[dg]
            self._clock[dg] = new_clock

    def _apply_decode_fused(self, lanes: np.ndarray, tokens_k: np.ndarray) -> None:
        """Mirror of ``_apply_decode`` across lanes (one clipped subtract)."""
        lane_mask = np.zeros(self._K, dtype=bool)
        lane_mask[lanes] = True
        di = self._dec_i
        dsel = lane_mask[self._rep[di]]
        idx = di[dsel]
        rep_e = self._rep[idx]
        seg = self._seg[idx]
        step_tokens = np.minimum(tokens_k[rep_e], seg)
        new_gen = np.minimum(self._tgt[idx], self._gen[idx] + step_tokens)
        self._gen[idx] = new_gen
        self._dnt[idx] += step_tokens
        new_seg = seg - step_tokens
        self._seg[idx] = new_seg
        wv_e = self._wv[rep_e]
        stale = self._lvr[idx] != wv_e
        if stale.any():
            sidx = idx[stale]
            for k, sid in zip(rep_e[stale].tolist(), self._sid[sidx].tolist()):
                version = int(self._wv[k])
                trajectory = self._k_replica[k]._sequences[sid].trajectory
                if version not in trajectory.versions_used:
                    trajectory.versions_used.append(version)
            self._lvr[sidx] = wv_e[stale]
        block_size = self._c_bs[rep_e]
        old_blocks = -(-self._kvt[idx] // block_size)
        new_kvt = self._kvt[idx] + step_tokens
        self._kvt[idx] = new_kvt
        growth = (-(-new_kvt // block_size)) - old_blocks
        self._kv_used += np.bincount(
            rep_e, weights=growth.astype(np.float64), minlength=self._K
        ).astype(np.int64)
        np.maximum(self._kv_peak, self._kv_used, out=self._kv_peak)
        self._tokgen += np.bincount(
            rep_e, weights=step_tokens.astype(np.float64), minlength=self._K
        ).astype(np.int64)
        finished = new_seg == 0
        if finished.any():
            dec_pos = np.flatnonzero(dsel)
            self._finish_fused(idx[finished], dec_pos[finished], new_gen[finished])

    def _finish_fused(self, fidx: np.ndarray, fpos: np.ndarray,
                      fgen: np.ndarray) -> None:
        """Shared control tail for sequences whose segment just ended.

        Completion side effects (KV free order, completed order, env-set
        appends) land in ascending stacked position, matching the engine's
        batched finish path lane for lane.
        """
        idx_l = fidx.tolist()
        rep_l = self._rep[fidx].tolist()
        trn_l = self._trn[fidx].tolist()
        ntr_l = self._ntr[fidx].tolist()
        soff_l = self._soff[fidx].tolist()
        sid_l = self._sid[fidx].tolist()
        slot_l = self._slot[fidx].tolist()
        kvt_l = self._kvt[fidx].tolist()
        dnt_l = self._dnt[fidx].tolist()
        tgt_l = self._tgt[fidx].tolist()
        gen_l = fgen.tolist()
        pos_l = fpos.tolist()
        remove_pos: List[int] = []
        env_add: List[int] = []
        for i in range(len(idx_l)):
            k = rep_l[i]
            turn = trn_l[i]
            if turn + 1 == ntr_l[i]:
                replica = self._k_replica[k]
                self._kv_used[k] -= -(-kvt_l[i] // self._bs_l[k])
                self._freed_ids[k].append(sid_l[i])
                self._freed_slots[k].append(slot_l[i])
                self._admit_cleared[k] = True
                seq = replica._sequences[sid_l[i]]
                seq.tokens_done_in_turn = dnt_l[i]
                seq.turn_index = turn
                seq.env_return_time = math.inf
                seq.needs_reprefill = False
                seq.status = SequenceStatus.DONE
                trajectory = seq.trajectory
                trajectory.generated_tokens = min(tgt_l[i], gen_l[i])
                trajectory.turns_done = ntr_l[i]
                trajectory.finish_time = float(self._clock[k])
                trajectory.replica_id = replica.replica_id
                self._round_done[k].append(trajectory)
                self._ncomp[k] += 1
                self._live[k] -= 1
                remove_pos.append(pos_l[i])
            else:
                offset = soff_l[i]
                self._trn[idx_l[i]] = turn + 1
                self._dnt[idx_l[i]] = 0
                self._seg[idx_l[i]] = self._sched_seg_ref[k].item(offset + turn + 1)
                env_latency = self._sched_env_ref[k].item(offset + turn)
                if env_latency > 0:
                    self._envt[idx_l[i]] = self._clock[k] + env_latency
                    remove_pos.append(pos_l[i])
                    env_add.append(idx_l[i])
        if remove_pos:
            keep = np.ones(len(self._dec_i), dtype=bool)
            keep[remove_pos] = False
            self._dec_i = self._dec_i[keep]
        if env_add:
            merged = np.concatenate(
                (self._env_i, np.array(env_add, dtype=np.int64))
            )
            self._env_i = merged[np.argsort(self._rep[merged], kind="stable")]

    # ------------------------------------------------------------------ settle
    def settle(self) -> None:
        """Write the stacked state back into every fused engine.

        KV settlement telescopes: finished sequences are freed first (their
        appends were never applied to the ledger, so the free lands at the
        admission-time size), live growth is applied in one batched append,
        and the chronological block high-water mark tracked during the sweep
        is re-applied via :meth:`KVCache.note_peak`.
        """
        if self._settled or not self._K:
            self._settled = True
            return
        self._settled = True
        K = self._K
        di, ei = self._dec_i, self._env_i
        dcounts = np.bincount(self._rep[di], minlength=K)
        ecounts = np.bincount(self._rep[ei], minlength=K)
        dstarts = np.concatenate(([0], np.cumsum(dcounts)[:-1]))
        estarts = np.concatenate(([0], np.cumsum(ecounts)[:-1]))
        for k in np.flatnonzero(self._lane_ok).tolist():
            replica = self._k_replica[k]
            replica.clock = float(self._clock[k])
            replica._time_carry = float(self._carry[k])
            stats = replica.stats
            stats.decode_busy_time = float(self._busy[k])
            stats.idle_time = float(self._idle[k])
            stats.env_blocked_time = float(self._envb[k])
            stats.tokens_generated = int(self._tokgen[k])
            stats.trajectories_completed = int(self._ncomp[k])
            if self._admit_cleared[k]:
                replica._admit_blocked = False
            freed = self._freed_ids[k]
            if freed:
                replica.kvcache.free_many(freed)
                for sid, slot in zip(freed, self._freed_slots[k]):
                    del replica._sequences[sid]
                    del replica._slots[sid]
                    replica._free_slots.append(slot)
            nd, ne = int(dcounts[k]), int(ecounts[k])
            dk = di[dstarts[k]:dstarts[k] + nd]
            ek = ei[estarts[k]:estarts[k] + ne]
            if nd or ne:
                live = np.concatenate((dk, ek))
                slots = self._slot[live]
                gen = self._gen[live]
                replica._a_seg_rem[slots] = self._seg[live]
                replica._a_gen[slots] = gen
                replica._a_ctx[slots] = self._prm[live] + gen
                replica._a_done_turn[slots] = self._dnt[live]
                replica._a_turn[slots] = self._trn[live]
                replica._a_env[slots] = self._envt[live]
                replica._a_last_ver[slots] = self._lvr[live]
                replica._a_status[slots[:nd]] = _ST_DECODING
                replica._a_status[slots[nd:]] = _ST_ENV_WAIT
                replica._dec.n = 0
                replica._dec.extend(self._sid[dk], slots[:nd], self._row[dk])
                replica._env.n = 0
                replica._env.extend(self._sid[ek], slots[nd:], self._row[ek])
                replica.kvcache.append_tokens_many(
                    self._sid[live], self._kvt[live] - self._kvt0[live],
                    rows=self._row[live],
                )
            else:
                replica._dec.n = 0
                replica._env.n = 0
            replica.kvcache.note_peak(int(self._kv_peak[k]))
            replica._completed.extend(self._done_traj[k])
            replica._mutation += 1


def build_sequence_states(
    trajectories: Sequence[Trajectory],
    schedules: Sequence[TurnSchedule],
) -> List[SequenceState]:
    """Pair trajectories with their pre-sampled turn schedules."""
    if len(trajectories) != len(schedules):
        raise ValueError("trajectories and schedules must align")
    return [SequenceState(trajectory=t, schedule=s) for t, s in zip(trajectories, schedules)]

"""Replica-level generation engine.

:class:`ReplicaGenerationState` models one rollout replica (one vLLM tensor-
parallel group) decoding a set of trajectories.  It is deliberately free of
any discrete-event-simulation dependency: callers drive it by asking "when is
your next internal event?" and then telling it "advance by this much time".
The ``repro.runtime`` harness turns that contract into engine processes:

* Laminar and AReaL run one interruptible driver process per replica
  (:func:`repro.runtime.replica_driver`), which sleeps until the replica's
  own next event — so repacking, weight pulls and failures can land at any
  instant and simulated time jumps between real events;
* the batch-synchronous baselines drain each replica with
  :func:`repro.runtime.drain_replica` behind an ``AllOf`` barrier
  (:func:`repro.runtime.generation_barrier`), which reproduces their
  slowest-replica iteration semantics exactly.

Because every system shares this engine (and the roofline decode model inside
it), throughput differences between systems come purely from orchestration —
matching the paper's "alleviating implementation bias" methodology (§8).

Decode semantics
----------------
All actively decoding sequences advance one token per decode step; the decode
step latency follows the roofline model and depends on the live batch size and
mean context length.  A sequence is one of:

``queued``      waiting for KVCache admission (vLLM waiting queue)
``decoding``    in the decode batch
``env_wait``    waiting on an environment interaction (multi-turn tasks)
``done``        finished (removed from the replica)

KVCache management follows the vLLM model: a sequence is admitted when its
*current* context fits (plus a small growth lookahead), blocks are allocated
incrementally as tokens are decoded, and when the cache fills up the most
recently admitted sequences are preempted back to the waiting queue (their
cache is rebuilt when they are re-admitted).  This reproduces the utilisation
lifecycle of Figure 9: ramp-up, a plateau near ``C_max`` while a waiting queue
exists, and a ramp-down once it drains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..llm.decode_model import DecodeModel
from ..sim.kvcache import KVCache, KVCacheConfig
from ..types import Trajectory

#: Numerical slack used when comparing simulated times.
_EPS = 1e-9


@dataclass
class TurnSchedule:
    """Pre-sampled decode/environment schedule for one trajectory.

    ``segments[i]`` is the number of response tokens decoded in turn ``i``;
    ``env_latencies[i]`` is the environment latency paid *after* turn ``i``
    (zero after the final turn).  Single-turn tasks have one segment and no
    environment latency.
    """

    segments: List[int]
    env_latencies: List[float]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a turn schedule needs at least one segment")
        if len(self.env_latencies) != len(self.segments):
            raise ValueError("env_latencies must have one entry per segment")
        if any(s <= 0 for s in self.segments):
            raise ValueError("segments must be positive")
        if any(l < 0 for l in self.env_latencies):
            raise ValueError("env latencies must be non-negative")

    @property
    def total_tokens(self) -> int:
        return sum(self.segments)

    @property
    def num_turns(self) -> int:
        return len(self.segments)

    @classmethod
    def single_turn(cls, tokens: int) -> "TurnSchedule":
        return cls(segments=[int(tokens)], env_latencies=[0.0])


class SequenceStatus:
    QUEUED = "queued"
    DECODING = "decoding"
    ENV_WAIT = "env_wait"
    DONE = "done"


@dataclass
class SequenceState:
    """Runtime state of one trajectory on a replica."""

    trajectory: Trajectory
    schedule: TurnSchedule
    status: str = SequenceStatus.QUEUED
    turn_index: int = 0
    tokens_done_in_turn: int = 0
    env_return_time: float = math.inf
    #: True if this sequence arrived via repack/failover and its existing
    #: context must be re-prefilled before decoding resumes on this replica.
    needs_reprefill: bool = False

    @property
    def seq_id(self) -> int:
        return self.trajectory.traj_id

    @property
    def segment_remaining(self) -> int:
        return self.schedule.segments[self.turn_index] - self.tokens_done_in_turn

    @property
    def total_remaining(self) -> int:
        remaining = self.segment_remaining
        remaining += sum(self.schedule.segments[self.turn_index + 1:])
        return remaining

    @property
    def context_tokens(self) -> int:
        return self.trajectory.prompt.prompt_tokens + self.trajectory.generated_tokens

    @property
    def reserved_tokens(self) -> int:
        """KVCache reservation: prompt plus the full eventual response."""
        return self.trajectory.prompt.prompt_tokens + self.schedule.total_tokens


@dataclass
class ReplicaStats:
    """Cumulative counters exposed for metrics and tests."""

    tokens_generated: int = 0
    prompt_tokens_prefilled: int = 0
    reprefill_tokens: int = 0
    trajectories_completed: int = 0
    decode_busy_time: float = 0.0
    idle_time: float = 0.0
    env_blocked_time: float = 0.0
    preemptions: int = 0


class ReplicaGenerationState:
    """Simulated decode engine for one rollout replica."""

    def __init__(
        self,
        replica_id: int,
        decode_model: DecodeModel,
        kvcache_config: KVCacheConfig,
        max_concurrency: int = 1024,
        weight_version: int = 0,
    ) -> None:
        if max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")
        self.replica_id = replica_id
        self.decode_model = decode_model
        self.kvcache = KVCache(kvcache_config)
        self.max_concurrency = max_concurrency
        self.weight_version = weight_version
        self.clock = 0.0
        self.stats = ReplicaStats()
        self._sequences: Dict[int, SequenceState] = {}
        self._queued: List[int] = []
        self._decoding: List[int] = []
        self._env_wait: List[int] = []
        self._completed: List[Trajectory] = []
        self._time_carry = 0.0
        #: Bumped on every mutation of the decode batch (admission, removal,
        #: preemption, token growth); keys the step-time cache below.
        self._mutation = 0
        self._step_cache: Tuple[int, float] = (-1, 0.0)
        #: Utilisation at the previous observation, for the ramp-down test
        #: (§5.2: a repack candidate has non-increasing KVCache utilisation).
        self.prev_utilization = 0.0

    # ------------------------------------------------------------------ intake
    def add_sequences(self, sequences: Sequence[SequenceState]) -> None:
        """Add new or migrated sequences to this replica's queue."""
        for seq in sequences:
            if seq.seq_id in self._sequences:
                raise ValueError(f"sequence {seq.seq_id} already on replica {self.replica_id}")
            seq.status = SequenceStatus.QUEUED
            self._sequences[seq.seq_id] = seq
            self._queued.append(seq.seq_id)
        self._try_admit()

    def remove_sequences(self, seq_ids: Sequence[int]) -> List[SequenceState]:
        """Detach (in-progress) sequences, e.g. when repacked to another replica."""
        removed: List[SequenceState] = []
        for seq_id in seq_ids:
            seq = self._sequences.pop(seq_id, None)
            if seq is None:
                continue
            for bucket in (self._queued, self._decoding, self._env_wait):
                if seq_id in bucket:
                    bucket.remove(seq_id)
            if seq.status in (SequenceStatus.DECODING, SequenceStatus.ENV_WAIT):
                self.kvcache.free(seq_id)
            removed.append(seq)
        if removed:
            self._mutation += 1
        self._try_admit()
        return removed

    def remove_all(self) -> List[SequenceState]:
        """Detach every in-progress sequence (machine failure / full release)."""
        return self.remove_sequences(list(self._sequences.keys()))

    # ------------------------------------------------------------------ queries
    @property
    def num_sequences(self) -> int:
        return len(self._sequences)

    @property
    def num_decoding(self) -> int:
        return len(self._decoding)

    @property
    def num_queued(self) -> int:
        return len(self._queued)

    @property
    def num_env_waiting(self) -> int:
        return len(self._env_wait)

    @property
    def kvcache_utilization(self) -> float:
        return self.kvcache.utilization

    @property
    def is_idle(self) -> bool:
        return not self._sequences

    def drain_completed(self) -> List[Trajectory]:
        """Return (and clear) trajectories completed since the last drain."""
        completed, self._completed = self._completed, []
        return completed

    def sequences(self) -> List[SequenceState]:
        return list(self._sequences.values())

    def mean_context_tokens(self) -> float:
        if not self._decoding:
            return 0.0
        total = sum(self._sequences[sid].context_tokens for sid in self._decoding)
        return total / len(self._decoding)

    def current_step_time(self) -> float:
        """Decode-step latency of the live batch.

        Cached against the mutation counter: callers typically ask for the
        step time twice per event (once to find the next event, once to apply
        the elapsed window), and the O(batch) context scan dominates the
        event-driven hot path.
        """
        if not self._decoding:
            return 0.0
        version, value = self._step_cache
        if version == self._mutation:
            return value
        value = self.decode_model.decode_step_time(
            len(self._decoding), int(self.mean_context_tokens())
        )
        self._step_cache = (self._mutation, value)
        return value

    def in_ramp_down(self, c_max: Optional[float] = None) -> bool:
        """§5.2 idleness signal: utilisation below C_max and not increasing."""
        c_max = c_max if c_max is not None else self.kvcache.config.c_max
        util = self.kvcache_utilization
        return self.num_queued == 0 and util < min(c_max, self.prev_utilization + 1e-12)

    def observe_utilization(self) -> float:
        """Record the current utilisation for ramp-down detection and return it."""
        util = self.kvcache_utilization
        self.prev_utilization = util
        return util

    # ------------------------------------------------------------------ scheduling
    #: Extra tokens of headroom required beyond a sequence's current context
    #: before it is admitted, to avoid admit/preempt thrashing.
    admission_lookahead_tokens: int = 256

    def _try_admit(self) -> None:
        admitted_any = True
        while admitted_any and self._queued:
            admitted_any = False
            if len(self._decoding) + len(self._env_wait) >= self.max_concurrency:
                return
            seq_id = self._queued[0]
            seq = self._sequences[seq_id]
            needed = seq.context_tokens + self.admission_lookahead_tokens
            if not self.kvcache.can_allocate(needed):
                return
            self._queued.pop(0)
            self.kvcache.allocate(seq_id, seq.context_tokens + 1)
            seq.status = SequenceStatus.DECODING
            self._decoding.append(seq_id)
            if seq.needs_reprefill:
                self.stats.reprefill_tokens += seq.context_tokens
                seq.needs_reprefill = False
            else:
                self.stats.prompt_tokens_prefilled += seq.trajectory.prompt.prompt_tokens
            admitted_any = True
            self._mutation += 1

    def _preempt_one(self) -> bool:
        """Preempt the most recently admitted decoding sequence (vLLM recompute).

        Returns True if a sequence was preempted.
        """
        if len(self._decoding) <= 1:
            return False
        seq_id = self._decoding.pop()
        seq = self._sequences[seq_id]
        self.kvcache.free(seq_id)
        seq.status = SequenceStatus.QUEUED
        seq.needs_reprefill = True
        self._queued.insert(0, seq_id)
        self.stats.preemptions += 1
        self._mutation += 1
        return True

    def _ensure_growth_capacity(self, tokens: int) -> None:
        """Preempt sequences until every decoding sequence can grow by ``tokens``."""
        # Fast path: growing by ``tokens`` adds at most ceil(tokens/block) + 1
        # blocks per sequence, so a roomy cache never needs the exact scan.
        upper_bound = len(self._decoding) * (self.kvcache.blocks_for(tokens) + 1)
        if upper_bound <= self.kvcache.free_blocks:
            return
        while True:
            needed_blocks = 0
            for seq_id in self._decoding:
                current = self.kvcache.sequence_tokens(seq_id)
                needed_blocks += (
                    self.kvcache.blocks_for(current + tokens) - self.kvcache.blocks_for(current)
                )
            if needed_blocks <= self.kvcache.free_blocks:
                return
            if not self._preempt_one():
                return

    def _release_env_returns(self) -> None:
        returned = [sid for sid in self._env_wait
                    if self._sequences[sid].env_return_time <= self.clock + _EPS]
        for seq_id in returned:
            self._env_wait.remove(seq_id)
            seq = self._sequences[seq_id]
            seq.status = SequenceStatus.DECODING
            seq.env_return_time = math.inf
            self._decoding.append(seq_id)
        if returned:
            self._mutation += 1

    def next_event_in(self) -> Optional[float]:
        """Time until the next internal event, or ``None`` if the replica is empty.

        Internal events are: a decoding sequence finishing its current segment,
        or an environment interaction returning.  Admission happens eagerly and
        never needs a timer.
        """
        if not self._sequences:
            return None
        self._release_env_returns()
        self._try_admit()
        candidates: List[float] = []
        if self._decoding:
            step = self.current_step_time()
            min_seg = min(self._sequences[sid].segment_remaining for sid in self._decoding)
            candidates.append(max(_EPS, min_seg * step - self._time_carry))
        if self._env_wait:
            earliest = min(self._sequences[sid].env_return_time for sid in self._env_wait)
            candidates.append(max(_EPS, earliest - self.clock))
        if not candidates:
            # Only queued sequences that cannot be admitted: the replica is
            # stuck (should not happen when reservations fit the cache).
            return None
        return min(candidates)

    def advance(self, dt: float) -> List[Trajectory]:
        """Advance the replica by ``dt`` seconds of simulated time.

        Handles any number of internal events that fall inside the window and
        returns the trajectories completed during it.
        """
        if dt < 0:
            raise ValueError("dt must be non-negative")
        target = self.clock + dt
        completed_now: List[Trajectory] = []
        while self.clock < target - _EPS:
            self._release_env_returns()
            self._try_admit()
            if not self._decoding:
                # Nothing to decode: jump to the next env return (or the target).
                if self._env_wait:
                    earliest = min(self._sequences[sid].env_return_time for sid in self._env_wait)
                    next_clock = min(target, max(earliest, self.clock))
                else:
                    next_clock = target
                blocked = next_clock - self.clock
                if self._env_wait:
                    self.stats.env_blocked_time += blocked
                else:
                    self.stats.idle_time += blocked
                self.clock = next_clock
                continue

            step = self.current_step_time()
            min_seg = min(self._sequences[sid].segment_remaining for sid in self._decoding)
            time_to_segment = min_seg * step - self._time_carry
            time_to_env = math.inf
            if self._env_wait:
                time_to_env = min(self._sequences[sid].env_return_time for sid in self._env_wait) - self.clock
            window = min(time_to_segment, time_to_env, target - self.clock)
            window = max(window, 0.0)

            tokens_float = (window + self._time_carry) / step
            tokens = int(math.floor(tokens_float + 1e-9))
            tokens = min(tokens, min_seg)
            self._time_carry = (window + self._time_carry) - tokens * step
            if tokens > 0:
                self._apply_decode(tokens, completed_now)
            self.stats.decode_busy_time += window
            self.clock += window
            if window <= _EPS and tokens == 0:
                # Avoid an infinite loop on degenerate windows.
                self.clock = min(target, self.clock + _EPS)
        self._completed.extend(completed_now)
        return completed_now

    def _apply_decode(self, tokens: int, completed_now: List[Trajectory]) -> None:
        """Advance every decoding sequence by ``tokens`` tokens."""
        self._mutation += 1  # contexts grow even when the batch set is unchanged
        self._ensure_growth_capacity(tokens)
        finished_segment: List[int] = []
        for seq_id in list(self._decoding):
            seq = self._sequences[seq_id]
            step_tokens = min(tokens, seq.segment_remaining)
            seq.tokens_done_in_turn += step_tokens
            seq.trajectory.advance(step_tokens, self.weight_version)
            self.kvcache.append_tokens(seq_id, step_tokens)
            self.stats.tokens_generated += step_tokens
            if seq.segment_remaining == 0:
                finished_segment.append(seq_id)
        for seq_id in finished_segment:
            seq = self._sequences[seq_id]
            env_latency = seq.schedule.env_latencies[seq.turn_index]
            last_turn = seq.turn_index == seq.schedule.num_turns - 1
            if last_turn:
                self._decoding.remove(seq_id)
                self.kvcache.free(seq_id)
                del self._sequences[seq_id]
                seq.status = SequenceStatus.DONE
                seq.trajectory.finish_time = self.clock
                seq.trajectory.replica_id = self.replica_id
                seq.trajectory.turns_done = seq.schedule.num_turns
                completed_now.append(seq.trajectory)
                self.stats.trajectories_completed += 1
            else:
                seq.turn_index += 1
                seq.tokens_done_in_turn = 0
                seq.trajectory.turns_done = seq.turn_index
                if env_latency > 0:
                    self._decoding.remove(seq_id)
                    seq.status = SequenceStatus.ENV_WAIT
                    seq.env_return_time = self.clock + env_latency
                    self._env_wait.append(seq_id)
        self._try_admit()

    def inject_stall(self, duration: float, *, busy: bool = True) -> None:
        """Advance the replica clock by ``duration`` without decoding.

        Used to charge non-decode GPU work that blocks generation, e.g. the
        KVCache re-prefill storms of partial-rollout systems or weight-load
        stalls.  ``busy=True`` books the time as decode-busy (the GPU is doing
        work, just not emitting tokens); ``busy=False`` books it as idle.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.clock += duration
        # Push any pending env returns accordingly: environment latency is
        # wall-clock, so env timers keep running during the stall (no shift).
        if busy:
            self.stats.decode_busy_time += duration
        else:
            self.stats.idle_time += duration

    def reprefill_all_inflight(self) -> float:
        """Charge a re-prefill of every in-flight sequence's cached context.

        Returns the stall duration charged.  This models the partial-rollout
        pause-and-sync cycle (§2.3): after a weight update, every interrupted
        trajectory must rebuild its KVCache before decoding can continue.
        """
        inflight = [self._sequences[sid] for sid in self._decoding + self._env_wait]
        total_context = sum(seq.context_tokens for seq in inflight)
        if total_context == 0:
            return 0.0
        # Each interrupted trajectory re-prefills its own context; the engine
        # batches these prefills, so the cost is the sum of per-sequence
        # prefill compute (attention cost is quadratic per sequence, not over
        # the concatenation).
        stall = sum(
            self.decode_model.prefill_time(seq.context_tokens, batch_size=1)
            for seq in inflight
        )
        self.stats.reprefill_tokens += total_context
        for seq in inflight:
            seq.trajectory.reprefill_count += 1
        self.inject_stall(stall, busy=True)
        return stall

    def set_weight_version(self, version: int) -> None:
        """Switch the replica to a new weight version (subsequent tokens use it)."""
        if version < self.weight_version:
            raise ValueError("weight version cannot go backwards")
        self.weight_version = version

    # ------------------------------------------------------------------ batch API
    def run_to_completion(self, max_time: float = math.inf) -> Tuple[float, List[Trajectory]]:
        """Drive the replica until every sequence finishes (baseline systems).

        Returns ``(elapsed_time, completed_trajectories)``.
        """
        start = self.clock
        completed: List[Trajectory] = []
        while self._sequences and self.clock - start < max_time:
            delta = self.next_event_in()
            if delta is None:
                break
            delta = min(delta, max_time - (self.clock - start))
            completed.extend(self.advance(delta))
        completed.extend(self.drain_completed())
        # drain_completed may duplicate those returned by advance; dedupe by id.
        unique: Dict[int, Trajectory] = {t.traj_id: t for t in completed}
        return self.clock - start, list(unique.values())


def build_sequence_states(
    trajectories: Sequence[Trajectory],
    schedules: Sequence[TurnSchedule],
) -> List[SequenceState]:
    """Pair trajectories with their pre-sampled turn schedules."""
    if len(trajectories) != len(schedules):
        raise ValueError("trajectories and schedules must align")
    return [SequenceState(trajectory=t, schedule=s) for t, s in zip(trajectories, schedules)]

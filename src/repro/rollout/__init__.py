"""Rollout module: replica generation engine, environments, replica sizing."""

from .generation import (
    ReplicaGenerationState,
    ReplicaStats,
    SequenceState,
    SequenceStatus,
    TurnSchedule,
    build_sequence_states,
)
from .environment import SimulatedEnvironment, TrajectoryFactory, difficulty_to_turns
from .reference import ScalarReplicaGenerationState
from .replica_config import RolloutReplicaConfig

__all__ = [
    "ReplicaGenerationState",
    "ScalarReplicaGenerationState",
    "ReplicaStats",
    "SequenceState",
    "SequenceStatus",
    "TurnSchedule",
    "build_sequence_states",
    "SimulatedEnvironment",
    "TrajectoryFactory",
    "difficulty_to_turns",
    "RolloutReplicaConfig",
]

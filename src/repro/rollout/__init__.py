"""Rollout module: replica generation engine, environments, replica sizing."""

from .generation import (
    ReplicaBatchView,
    ReplicaGenerationState,
    ReplicaStats,
    SequenceState,
    SequenceStatus,
    TurnSchedule,
    build_sequence_states,
)
from .environment import SimulatedEnvironment, TrajectoryFactory, difficulty_to_turns
from .reference import ScalarReplicaBatchView, ScalarReplicaGenerationState
from .replica_config import RolloutReplicaConfig

__all__ = [
    "ReplicaBatchView",
    "ReplicaGenerationState",
    "ScalarReplicaBatchView",
    "ScalarReplicaGenerationState",
    "ReplicaStats",
    "SequenceState",
    "SequenceStatus",
    "TurnSchedule",
    "build_sequence_states",
    "SimulatedEnvironment",
    "TrajectoryFactory",
    "difficulty_to_turns",
    "RolloutReplicaConfig",
]

"""Time-series recording helpers (throughput over time, utilisation traces).

Used for the timeline-style figures: Fig 9 (KVCache lifecycle), Fig 15
(throughput around a machine failure) and Fig 16 (repack on/off generation
throughput).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass
class TimeSeries:
    """A simple (time, value) series with window aggregation helpers."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1] - 1e-9:
            raise ValueError("timestamps must be non-decreasing")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, time: float) -> float:
        """Last recorded value at or before ``time`` (0.0 before the first point)."""
        index = bisect_right(self.times, time) - 1
        if index < 0:
            return 0.0
        return self.values[index]

    def window_mean(self, start: float, end: float) -> float:
        if end <= start:
            raise ValueError("end must exceed start")
        selected = [v for t, v in zip(self.times, self.values) if start <= t < end]
        if not selected:
            return self.value_at(start)
        return sum(selected) / len(selected)

    def as_tuples(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))


@dataclass
class EventCounterSeries:
    """Counts discrete events (e.g. tokens generated) and derives rates."""

    name: str
    times: List[float] = field(default_factory=list)
    counts: List[float] = field(default_factory=list)

    def record(self, time: float, count: float) -> None:
        if self.times and time < self.times[-1] - 1e-9:
            raise ValueError("timestamps must be non-decreasing")
        self.times.append(time)
        self.counts.append(count)

    def rate_series(self, bucket: float, horizon: Optional[float] = None) -> TimeSeries:
        """Aggregate counts into a per-``bucket``-second rate series."""
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        series = TimeSeries(name=f"{self.name}_rate")
        if not self.times:
            return series
        horizon = horizon if horizon is not None else max(self.times)
        num_buckets = int(horizon // bucket) + 1
        totals = [0.0] * num_buckets
        for time, count in zip(self.times, self.counts):
            index = min(num_buckets - 1, int(time // bucket))
            totals[index] += count
        for index, total in enumerate(totals):
            series.record(index * bucket, total / bucket)
        return series

    def total(self) -> float:
        return sum(self.counts)


def moving_average(values: Sequence[float], window: int) -> List[float]:
    """Simple trailing moving average used when plotting noisy rate series."""
    if window <= 0:
        raise ValueError("window must be positive")
    out: List[float] = []
    acc = 0.0
    for index, value in enumerate(values):
        acc += value
        if index >= window:
            acc -= values[index - window]
        out.append(acc / min(index + 1, window))
    return out

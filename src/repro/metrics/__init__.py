"""Metrics: throughput/speedup/scaling results and time-series helpers."""

from .results import StageBreakdown, SystemRunResult, scaling_efficiency, speedup
from .timeline import EventCounterSeries, TimeSeries, moving_average

__all__ = [
    "StageBreakdown",
    "SystemRunResult",
    "scaling_efficiency",
    "speedup",
    "EventCounterSeries",
    "TimeSeries",
    "moving_average",
]

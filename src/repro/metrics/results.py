"""Result containers shared by every simulated RL system.

The paper's headline metric is training throughput in tokens/second: total
prompt+response tokens in a global training batch divided by the RL iteration
time (the span between consecutive actor update completions), averaged over
several iterations after a warm-up (§8 "Metrics").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..trainer.trainer import IterationRecord


@dataclass
class StageBreakdown:
    """Per-iteration decomposition of where the time went (Fig 1b / Fig 3)."""

    generation_time: float = 0.0
    training_time: float = 0.0
    weight_sync_time: float = 0.0
    experience_prep_time: float = 0.0
    bubble_time: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.generation_time
            + self.training_time
            + self.weight_sync_time
            + self.experience_prep_time
            + self.bubble_time
        )

    def fractions(self) -> Dict[str, float]:
        total = self.total
        if total <= 0:
            return {}
        return {
            "generation": self.generation_time / total,
            "training": self.training_time / total,
            "weight_sync": self.weight_sync_time / total,
            "experience_prep": self.experience_prep_time / total,
            "bubble": self.bubble_time / total,
        }


@dataclass
class SystemRunResult:
    """Outcome of simulating one system on one configuration."""

    system: str
    model: str
    task: str
    total_gpus: int
    trainer_gpus: int
    rollout_gpus: int
    iterations: List[IterationRecord] = field(default_factory=list)
    breakdowns: List[StageBreakdown] = field(default_factory=list)
    #: Inherent staleness samples of all trained trajectories.
    staleness_samples: List[int] = field(default_factory=list)
    #: Wall-clock duration of the simulated run.
    wall_clock: float = 0.0
    #: Optional extra per-system measurements (repack stats, sync times, ...).
    extras: Dict[str, float] = field(default_factory=dict)

    def throughput(self, warmup_iterations: int = 0) -> float:
        """Mean tokens/s over iterations after ``warmup_iterations``."""
        records = self.iterations[warmup_iterations:]
        if not records:
            return 0.0
        total_tokens = sum(r.tokens_trained for r in records)
        total_time = sum(r.duration for r in records)
        if total_time <= 0:
            return 0.0
        return total_tokens / total_time

    def steady_throughput(self, last_k: int = 2) -> float:
        """Tokens/s over the last ``last_k`` iterations.

        Continuously-generating systems (AReaL, Laminar) start with a filled
        in-flight pipeline, so their first iterations consume that backlog and
        look faster than steady state.  Iteration durations grow monotonically
        toward the steady-state value as the backlog drains; the final
        iterations therefore give the best steady-state estimate.
        """
        if last_k <= 0:
            raise ValueError("last_k must be positive")
        records = self.iterations[-last_k:]
        if not records:
            return 0.0
        total_tokens = sum(r.tokens_trained for r in records)
        total_time = sum(r.duration for r in records)
        return total_tokens / total_time if total_time > 0 else 0.0

    def mean_iteration_time(self, warmup_iterations: int = 0) -> float:
        records = self.iterations[warmup_iterations:]
        if not records:
            return 0.0
        return sum(r.duration for r in records) / len(records)

    def mean_staleness(self) -> float:
        if not self.staleness_samples:
            return 0.0
        return sum(self.staleness_samples) / len(self.staleness_samples)

    def max_staleness(self) -> int:
        return max(self.staleness_samples) if self.staleness_samples else 0

    def mean_breakdown(self) -> StageBreakdown:
        if not self.breakdowns:
            return StageBreakdown()
        n = len(self.breakdowns)
        return StageBreakdown(
            generation_time=sum(b.generation_time for b in self.breakdowns) / n,
            training_time=sum(b.training_time for b in self.breakdowns) / n,
            weight_sync_time=sum(b.weight_sync_time for b in self.breakdowns) / n,
            experience_prep_time=sum(b.experience_prep_time for b in self.breakdowns) / n,
            bubble_time=sum(b.bubble_time for b in self.breakdowns) / n,
        )


def speedup(result: SystemRunResult, baseline: SystemRunResult, warmup: int = 0) -> float:
    """Throughput speedup of ``result`` over ``baseline``."""
    base = baseline.throughput(warmup)
    if base <= 0:
        raise ValueError("baseline throughput is zero")
    return result.throughput(warmup) / base


def scaling_efficiency(results: List[SystemRunResult], warmup: int = 0) -> float:
    """Strong-scaling efficiency as defined in §8.1.

    (throughput at largest scale / throughput at smallest scale) divided by
    (largest GPU count / smallest GPU count).
    """
    if len(results) < 2:
        raise ValueError("need at least two scales to compute scaling efficiency")
    ordered = sorted(results, key=lambda r: r.total_gpus)
    smallest, largest = ordered[0], ordered[-1]
    gpu_ratio = largest.total_gpus / smallest.total_gpus
    throughput_small = smallest.throughput(warmup)
    if throughput_small <= 0 or gpu_ratio <= 0:
        return 0.0
    throughput_ratio = largest.throughput(warmup) / throughput_small
    return throughput_ratio / gpu_ratio

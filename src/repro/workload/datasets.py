"""Synthetic datasets standing in for DAPO-Math-17k and the ReTool tasks.

The real evaluation trains on the open DAPO-Math-17k dataset with 2K-token
prompts, 16 responses per prompt (GRPO group size) and, for the tool-calling
task, up to 8 code-sandbox calls per trajectory (§8).  Here we synthesize a
prompt bank with the same structural properties: per-question difficulty that
drives both solve probability and response length, prompt-length variation,
and a multi-turn flag with a turn budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

import numpy as np

from ..types import Prompt
from .env_latency import EnvLatencyDistribution, CODE_SANDBOX, RULE_BASED_VERIFIER
from .length_dist import LengthDistribution, get_length_distribution


@dataclass(frozen=True)
class TaskSpec:
    """Describes one RL post-training task (math or tool-calling)."""

    name: str
    task_type: str  # "math" (single-turn) or "tool" (multi-turn)
    length_dist: LengthDistribution
    env_latency: EnvLatencyDistribution
    max_prompt_tokens: int = 2048
    max_response_tokens: int = 16384
    group_size: int = 16
    max_turns: int = 1

    def __post_init__(self) -> None:
        if self.task_type not in ("math", "tool"):
            raise ValueError("task_type must be 'math' or 'tool'")
        if self.group_size <= 0:
            raise ValueError("group_size must be positive")
        if self.max_turns <= 0:
            raise ValueError("max_turns must be positive")

    @property
    def multi_turn(self) -> bool:
        return self.task_type == "tool"


def math_task(model_size: str = "7B") -> TaskSpec:
    """Single-turn mathematical-reasoning task (DAPO-Math-17k style)."""
    return TaskSpec(
        name=f"dapo-math-{model_size}",
        task_type="math",
        length_dist=get_length_distribution("math", model_size),
        env_latency=RULE_BASED_VERIFIER,
        max_turns=1,
    )


def tool_task(model_size: str = "7B", max_turns: int = 8) -> TaskSpec:
    """Multi-turn tool-calling task (ReTool style, code sandbox, <=8 calls)."""
    return TaskSpec(
        name=f"retool-{model_size}",
        task_type="tool",
        length_dist=get_length_distribution("tool", model_size),
        env_latency=CODE_SANDBOX,
        max_turns=max_turns,
    )


@dataclass
class PromptDataset:
    """A bank of prompts with GRPO group replication.

    ``sample_batch(num_prompts)`` returns ``num_prompts * group_size`` prompts
    — 512 prompts x 16 responses = the paper's 8192-trajectory global batch.
    """

    task: TaskSpec
    num_questions: int = 17_000
    seed: int = 0
    _difficulties: np.ndarray = field(init=False, repr=False)
    _prompt_lengths: np.ndarray = field(init=False, repr=False)
    _next_prompt_id: int = field(default=0, init=False, repr=False)
    _next_group_id: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_questions <= 0:
            raise ValueError("num_questions must be positive")
        rng = np.random.default_rng(self.seed)
        # Beta(2, 2) difficulty: most questions are mid-difficulty, some easy/hard.
        self._difficulties = rng.beta(2.0, 2.0, self.num_questions)
        lengths = rng.lognormal(np.log(450.0), 0.6, self.num_questions)
        self._prompt_lengths = np.clip(lengths, 64, self.task.max_prompt_tokens).astype(np.int64)

    def __len__(self) -> int:
        return self.num_questions

    def difficulty(self, question_index: int) -> float:
        return float(self._difficulties[question_index % self.num_questions])

    def sample_batch(self, num_prompts: int, rng: np.random.Generator) -> List[Prompt]:
        """Sample ``num_prompts`` questions, each replicated ``group_size`` times."""
        if num_prompts <= 0:
            raise ValueError("num_prompts must be positive")
        indices = rng.integers(0, self.num_questions, num_prompts)
        prompts: List[Prompt] = []
        for index in indices:
            group_id = self._next_group_id
            self._next_group_id += 1
            for _ in range(self.task.group_size):
                prompts.append(
                    Prompt(
                        prompt_id=self._next_prompt_id,
                        group_id=group_id,
                        prompt_tokens=int(self._prompt_lengths[index]),
                        difficulty=float(self._difficulties[index]),
                        multi_turn=self.task.multi_turn,
                        max_turns=self.task.max_turns,
                    )
                )
                self._next_prompt_id += 1
        return prompts

    def iter_batches(self, num_prompts: int, rng: np.random.Generator) -> Iterator[List[Prompt]]:
        """Endless stream of prompt batches (the prompt pool never runs dry)."""
        while True:
            yield self.sample_batch(num_prompts, rng)

    def sample_response_lengths(self, prompts: List[Prompt], rng: np.random.Generator) -> np.ndarray:
        """Draw the eventual response length for each prompt in ``prompts``."""
        difficulties = [p.difficulty for p in prompts]
        return self.task.length_dist.sample(rng, len(prompts), difficulty=difficulties)

"""Heavy-tailed response-length distributions.

Figure 2 and Figure 17 of the paper show that response lengths on the
DAPO-Math-17k / AIME workloads are highly skewed: the 99th percentile can be
an order of magnitude above the median.  We model lengths with a two-component
lognormal mixture (a body of short chains-of-thought plus a long-reasoning
tail), truncated to the generation limit (16K output tokens in §8).

Each evaluated checkpoint has its own distribution (Fig 17): bigger models at
the evaluated training stage emit somewhat shorter, less variable responses.
The presets below are fit to preserve the paper's qualitative shape — median
in the low thousands, p99/p50 between ~4x and ~10x, hard cap at ``max_tokens``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class LengthDistribution:
    """Two-component lognormal mixture over response lengths (in tokens)."""

    name: str
    #: Mixture weight of the long-reasoning tail component.
    tail_weight: float
    #: Lognormal parameters of the body component.
    body_median: float
    body_sigma: float
    #: Lognormal parameters of the tail component.
    tail_median: float
    tail_sigma: float
    #: Hard truncation (the serving engine's max output length).
    max_tokens: int = 16384
    min_tokens: int = 16

    def __post_init__(self) -> None:
        if not 0 <= self.tail_weight <= 1:
            raise ValueError("tail_weight must be in [0, 1]")
        if self.body_median <= 0 or self.tail_median <= 0:
            raise ValueError("medians must be positive")
        if self.max_tokens <= self.min_tokens:
            raise ValueError("max_tokens must exceed min_tokens")

    def sample(self, rng: np.random.Generator, size: int = 1,
               difficulty: Optional[Sequence[float]] = None) -> np.ndarray:
        """Draw ``size`` response lengths.

        ``difficulty`` (optional, one value in [0, 1] per sample) shifts a
        sample toward the tail: hard problems require longer reasoning, which
        is what couples the length skew to the task distribution.
        """
        if size <= 0:
            raise ValueError("size must be positive")
        if difficulty is None:
            tail_prob = np.full(size, self.tail_weight)
        else:
            difficulty = np.asarray(difficulty, dtype=float)
            if difficulty.shape != (size,):
                raise ValueError("difficulty must have one entry per sample")
            # Difficulty 0 halves the tail probability, difficulty 1 triples it.
            tail_prob = np.clip(self.tail_weight * (0.5 + 2.5 * difficulty), 0.0, 1.0)

        is_tail = rng.random(size) < tail_prob
        body = rng.lognormal(np.log(self.body_median), self.body_sigma, size)
        tail = rng.lognormal(np.log(self.tail_median), self.tail_sigma, size)
        lengths = np.where(is_tail, tail, body)
        lengths = np.clip(lengths, self.min_tokens, self.max_tokens)
        return lengths.astype(np.int64)

    def percentile(self, q: float, rng: Optional[np.random.Generator] = None,
                   num_samples: int = 200_000) -> float:
        """Monte-Carlo estimate of the ``q``-th percentile of the distribution."""
        rng = rng or np.random.default_rng(0)
        return float(np.percentile(self.sample(rng, num_samples), q))

    def skew_ratio(self, rng: Optional[np.random.Generator] = None) -> float:
        """p99 / p50 ratio — the long-tail skew the paper highlights."""
        rng = rng or np.random.default_rng(0)
        samples = self.sample(rng, 200_000)
        return float(np.percentile(samples, 99) / np.percentile(samples, 50))

    def mean(self, rng: Optional[np.random.Generator] = None) -> float:
        rng = rng or np.random.default_rng(0)
        return float(self.sample(rng, 200_000).mean())


# -- Presets matching the paper's checkpoints (Fig 2, Fig 17) --------------------

#: AIME-style competition math with an intermediate 7B checkpoint (Fig 2 left):
#: long-tailed, p99/p50 close to an order of magnitude.
AIME_MATH_7B = LengthDistribution(
    name="math-7B",
    tail_weight=0.12,
    body_median=1100.0,
    body_sigma=0.85,
    tail_median=9000.0,
    tail_sigma=0.55,
)

#: 32B math checkpoint (Fig 17b): similar median, slightly lighter tail.
AIME_MATH_32B = LengthDistribution(
    name="math-32B",
    tail_weight=0.10,
    body_median=1400.0,
    body_sigma=0.80,
    tail_median=9500.0,
    tail_sigma=0.50,
)

#: 72B math checkpoint (Fig 17c): shorter, tighter responses.
AIME_MATH_72B = LengthDistribution(
    name="math-72B",
    tail_weight=0.08,
    body_median=1000.0,
    body_sigma=0.75,
    tail_median=7000.0,
    tail_sigma=0.50,
    max_tokens=12288,
)

#: 7B multi-turn tool-calling checkpoint (Fig 17d): short per-turn responses
#: with a moderate tail (the skew comes mostly from environment latency).
TOOL_7B = LengthDistribution(
    name="tool-7B",
    tail_weight=0.10,
    body_median=700.0,
    body_sigma=0.75,
    tail_median=5000.0,
    tail_sigma=0.60,
)

LENGTH_PRESETS = {
    "math-7B": AIME_MATH_7B,
    "math-32B": AIME_MATH_32B,
    "math-72B": AIME_MATH_72B,
    "tool-7B": TOOL_7B,
}


def get_length_distribution(task: str, model_size: str) -> LengthDistribution:
    """Pick the preset distribution for a (task, model size) pair."""
    key = f"{task}-{model_size}"
    try:
        return LENGTH_PRESETS[key]
    except KeyError:
        raise KeyError(
            f"no length distribution preset for {key!r}; known: {sorted(LENGTH_PRESETS)}"
        ) from None


@dataclass(frozen=True)
class EvolvingLengthDistribution:
    """Length distribution whose scale drifts over RL training iterations.

    §2.3 argues that trajectory lengths change as the model learns (growing
    for reasoning models, shrinking once the policy becomes concise), which is
    why a static staleness bound cannot stay optimal.  This wrapper scales a
    base distribution's medians by a per-iteration growth factor so the drift
    can be injected into long-horizon simulations and ablations.
    """

    base: LengthDistribution
    #: Multiplicative median growth per iteration (e.g. 1.01 = +1% / iter).
    growth_per_iteration: float = 1.0
    #: Cap on the cumulative growth factor.
    max_growth: float = 4.0

    def at_iteration(self, iteration: int) -> LengthDistribution:
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        factor = min(self.max_growth, self.growth_per_iteration ** iteration)
        return LengthDistribution(
            name=f"{self.base.name}@{iteration}",
            tail_weight=self.base.tail_weight,
            body_median=self.base.body_median * factor,
            body_sigma=self.base.body_sigma,
            tail_median=min(self.base.tail_median * factor, self.base.max_tokens * 0.9),
            tail_sigma=self.base.tail_sigma,
            max_tokens=self.base.max_tokens,
            min_tokens=self.base.min_tokens,
        )

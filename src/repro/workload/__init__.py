"""Workload generators: response lengths, environment latency, prompt banks."""

from .length_dist import (
    AIME_MATH_7B,
    AIME_MATH_32B,
    AIME_MATH_72B,
    TOOL_7B,
    EvolvingLengthDistribution,
    LENGTH_PRESETS,
    LengthDistribution,
    get_length_distribution,
)
from .env_latency import (
    CODE_SANDBOX,
    ENV_PRESETS,
    EnvLatencyDistribution,
    RULE_BASED_VERIFIER,
    get_env_latency,
)
from .datasets import PromptDataset, TaskSpec, math_task, tool_task

__all__ = [
    "AIME_MATH_7B",
    "AIME_MATH_32B",
    "AIME_MATH_72B",
    "TOOL_7B",
    "EvolvingLengthDistribution",
    "LENGTH_PRESETS",
    "LengthDistribution",
    "get_length_distribution",
    "CODE_SANDBOX",
    "ENV_PRESETS",
    "EnvLatencyDistribution",
    "RULE_BASED_VERIFIER",
    "get_env_latency",
    "PromptDataset",
    "TaskSpec",
    "math_task",
    "tool_task",
]

"""Environment interaction latency distributions for multi-turn tasks.

Figure 2 (right panel) shows code-sandbox execution latencies ranging from a
few seconds to several hundred seconds, driven by request queuing and task
complexity.  We model the latency of one environment interaction as a
lognormal body with a Pareto tail (queuing spikes), matching that shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class EnvLatencyDistribution:
    """Latency (seconds) of a single environment call (code execution, API)."""

    name: str
    #: Median latency of a normal execution.
    body_median: float
    body_sigma: float
    #: Probability that a call hits the congested/queuing regime.
    spike_prob: float
    #: Pareto scale/shape for the congested regime.
    spike_scale: float
    spike_alpha: float
    max_latency: float = 600.0
    min_latency: float = 0.2

    def __post_init__(self) -> None:
        if not 0 <= self.spike_prob <= 1:
            raise ValueError("spike_prob must be in [0, 1]")
        if self.body_median <= 0 or self.spike_scale <= 0 or self.spike_alpha <= 0:
            raise ValueError("latency parameters must be positive")
        if self.max_latency <= self.min_latency:
            raise ValueError("max_latency must exceed min_latency")

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` environment-call latencies in seconds."""
        if size <= 0:
            raise ValueError("size must be positive")
        body = rng.lognormal(np.log(self.body_median), self.body_sigma, size)
        spikes = self.spike_scale * (1.0 + rng.pareto(self.spike_alpha, size))
        is_spike = rng.random(size) < self.spike_prob
        latency = np.where(is_spike, body + spikes, body)
        return np.clip(latency, self.min_latency, self.max_latency)

    def percentile(self, q: float, rng: Optional[np.random.Generator] = None,
                   num_samples: int = 100_000) -> float:
        rng = rng or np.random.default_rng(0)
        return float(np.percentile(self.sample(rng, num_samples), q))

    def mean(self, rng: Optional[np.random.Generator] = None) -> float:
        rng = rng or np.random.default_rng(0)
        return float(self.sample(rng, 100_000).mean())


#: Shared code-sandbox service (Fig 2 right): median ~10 s, tail to hundreds.
CODE_SANDBOX = EnvLatencyDistribution(
    name="code-sandbox",
    body_median=9.0,
    body_sigma=0.9,
    spike_prob=0.08,
    spike_scale=60.0,
    spike_alpha=1.6,
)

#: Fast local verifier used by single-turn math (rule-based reward): negligible.
RULE_BASED_VERIFIER = EnvLatencyDistribution(
    name="rule-verifier",
    body_median=0.3,
    body_sigma=0.3,
    spike_prob=0.0,
    spike_scale=1.0,
    spike_alpha=2.0,
    max_latency=5.0,
    min_latency=0.05,
)

ENV_PRESETS = {
    "code-sandbox": CODE_SANDBOX,
    "rule-verifier": RULE_BASED_VERIFIER,
}


def get_env_latency(name: str) -> EnvLatencyDistribution:
    try:
        return ENV_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"no environment latency preset named {name!r}; known: {sorted(ENV_PRESETS)}"
        ) from None

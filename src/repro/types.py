"""Core data types shared across every module of the reproduction.

The lifecycle mirrors the paper's Data Module (§3.1):

``Prompt`` -> in-flight ``Trajectory`` (partial response pool) ->
completed ``Trajectory`` -> ``Experience`` (experience buffer) -> sampled
training batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Prompt:
    """A single training prompt (math question, coding task, ...)."""

    prompt_id: int
    #: GRPO group: prompts are replicated ``group_size`` times; all copies of
    #: the same question share ``group_id``.
    group_id: int
    prompt_tokens: int
    #: Difficulty in [0, 1]; drives both response length and solve probability.
    difficulty: float = 0.5
    #: Multi-turn (tool-calling) task marker and its turn budget.
    multi_turn: bool = False
    max_turns: int = 1


@dataclass
class Trajectory:
    """One response being generated (or already generated) for a prompt."""

    traj_id: int
    prompt: Prompt
    #: Total response tokens this trajectory will eventually contain.
    target_tokens: int
    #: Response tokens generated so far.
    generated_tokens: int = 0
    #: Actor weight version in use when generation (re)started.
    weight_version: int = 0
    #: Every distinct weight version that contributed tokens (len > 1 only for
    #: partial-rollout systems, which mix policy versions inside a trajectory).
    versions_used: List[int] = field(default_factory=list)
    #: Environment turns completed so far (multi-turn tasks).
    turns_done: int = 0
    #: Simulation timestamps.
    start_time: float = 0.0
    finish_time: Optional[float] = None
    #: Identifier of the rollout replica that finished the trajectory.
    replica_id: Optional[int] = None
    #: Number of times the trajectory was migrated by the repack mechanism.
    repack_count: int = 0
    #: Number of times partial-rollout re-prefilled this trajectory's cache.
    reprefill_count: int = 0

    def __post_init__(self) -> None:
        if self.target_tokens <= 0:
            raise ValueError("target_tokens must be positive")
        if not self.versions_used:
            self.versions_used = [self.weight_version]

    # -- progress -----------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.generated_tokens >= self.target_tokens

    @property
    def remaining_tokens(self) -> int:
        return max(0, self.target_tokens - self.generated_tokens)

    @property
    def total_tokens(self) -> int:
        """Prompt + response tokens (the throughput metric counts both)."""
        return self.prompt.prompt_tokens + self.generated_tokens

    @property
    def context_tokens(self) -> int:
        """Tokens currently resident in the KVCache for this trajectory."""
        return self.prompt.prompt_tokens + self.generated_tokens

    def advance(self, tokens: int, weight_version: int) -> None:
        """Record ``tokens`` newly generated under ``weight_version``."""
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        self.generated_tokens = min(self.target_tokens, self.generated_tokens + tokens)
        if weight_version not in self.versions_used:
            self.versions_used.append(weight_version)

    @property
    def mixed_versions(self) -> bool:
        """True if more than one policy version produced this trajectory."""
        return len(set(self.versions_used)) > 1

    def inherent_staleness(self, actor_version_at_finish: int) -> int:
        """Staleness as defined in §6: actor version at completion minus the
        version the trajectory was generated with (its oldest version)."""
        return max(0, actor_version_at_finish - min(self.versions_used))


@dataclass
class Experience:
    """A completed, scored trajectory ready for sampling by the trainer."""

    trajectory: Trajectory
    reward: float = 0.0
    #: Actor version when the experience entered the buffer.
    actor_version_at_completion: int = 0
    #: Optional priority for priority-based sampling strategies.
    priority: float = 0.0

    @property
    def staleness(self) -> int:
        return self.trajectory.inherent_staleness(self.actor_version_at_completion)

    @property
    def tokens(self) -> int:
        return self.trajectory.total_tokens


@dataclass
class WeightVersion:
    """A published set of actor weights."""

    version: int
    published_at: float
    size_bytes: float

"""GRPO with Clip-Higher, plus PPO-style and decoupled variants.

GRPO (Shao et al.) removes the critic by generating a *group* of responses per
prompt and normalising rewards within the group to obtain advantages.  The
evaluation uses GRPO with the asymmetric DAPO clipping range (Clip-Higher),
and AReaL uses its Decoupled PPO objective to tolerate mixed-version
trajectories.  All three are implemented over the softmax-linear policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .policy import SoftmaxPolicy
from .task import SyntheticReasoningTask


@dataclass
class GRPOConfig:
    """Hyperparameters (Table 3)."""

    group_size: int = 16
    learning_rate: float = 2.0
    clip_low: float = 0.2
    clip_high: float = 0.28
    temperature: float = 1.0
    num_minibatches: int = 4
    advantage_eps: float = 1e-6

    def __post_init__(self) -> None:
        if self.group_size <= 1:
            raise ValueError("group_size must be at least 2")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.clip_low < 0 or self.clip_high < 0:
            raise ValueError("clip ranges must be non-negative")
        if self.num_minibatches <= 0:
            raise ValueError("num_minibatches must be positive")


def group_normalized_advantages(rewards: np.ndarray, group_size: int,
                                eps: float = 1e-6) -> np.ndarray:
    """GRPO advantages: per-group standardised rewards.

    ``rewards`` must be laid out group-contiguously (all responses of prompt 0,
    then prompt 1, ...).
    """
    if rewards.ndim != 1:
        raise ValueError("rewards must be 1-D")
    if len(rewards) % group_size != 0:
        raise ValueError("rewards length must be a multiple of group_size")
    grouped = rewards.reshape(-1, group_size)
    mean = grouped.mean(axis=1, keepdims=True)
    std = grouped.std(axis=1, keepdims=True)
    advantages = (grouped - mean) / (std + eps)
    return advantages.reshape(-1)


@dataclass
class RolloutBatch:
    """A batch of (problem, strategy, reward, behaviour log-prob) samples."""

    problem_ids: np.ndarray
    strategies: np.ndarray
    rewards: np.ndarray
    behaviour_log_prob: np.ndarray

    def __len__(self) -> int:
        return len(self.problem_ids)


def generate_rollouts(
    task: SyntheticReasoningTask,
    behaviour_policy: SoftmaxPolicy,
    num_prompts: int,
    config: GRPOConfig,
    rng: np.random.Generator,
    mixture_policy: Optional[SoftmaxPolicy] = None,
    mixture_fraction: float = 0.0,
) -> RolloutBatch:
    """Sample a group-structured rollout batch from the behaviour policy.

    ``mixture_policy``/``mixture_fraction`` model partial rollout: a fraction
    of each trajectory's tokens were produced by a *different* policy version,
    but the recorded behaviour log-prob (used for importance correction) is
    taken from the nominal behaviour policy — exactly the mismatch that makes
    mixed-version trajectories biased.
    """
    problem_ids = np.repeat(rng.integers(0, task.num_problems, num_prompts), config.group_size)
    features = task.features[problem_ids]
    strategies = behaviour_policy.sample(features, rng, config.temperature)
    if mixture_policy is not None and mixture_fraction > 0:
        switch = rng.random(len(strategies)) < mixture_fraction
        alt = mixture_policy.sample(features, rng, config.temperature)
        strategies = np.where(switch, alt, strategies)
    rewards = task.sample_rewards(problem_ids, strategies, rng)
    behaviour_log_prob = behaviour_policy.log_prob(features, strategies)
    return RolloutBatch(problem_ids, strategies, rewards, behaviour_log_prob)


class GRPOTrainer:
    """Vanilla GRPO + Clip-Higher on the synthetic reasoning task."""

    name = "grpo"

    def __init__(self, task: SyntheticReasoningTask, config: Optional[GRPOConfig] = None,
                 seed: int = 0) -> None:
        self.task = task
        self.config = config or GRPOConfig()
        self.policy = SoftmaxPolicy(task.feature_dim, task.num_strategies)
        self.rng = np.random.default_rng(seed)
        self.updates = 0

    def compute_advantages(self, batch: RolloutBatch) -> np.ndarray:
        return group_normalized_advantages(
            batch.rewards, self.config.group_size, self.config.advantage_eps
        )

    def update(self, batch: RolloutBatch) -> Dict[str, float]:
        """One RL iteration: split the batch into mini-batches and step each."""
        advantages = self.compute_advantages(batch)
        features = self.task.features[batch.problem_ids]
        indices = np.arange(len(batch))
        stats: Dict[str, float] = {}
        for chunk in np.array_split(indices, self.config.num_minibatches):
            if len(chunk) == 0:
                continue
            grad, step_stats = self.policy.surrogate_gradient(
                features[chunk],
                batch.strategies[chunk],
                advantages[chunk],
                batch.behaviour_log_prob[chunk],
                clip_low=self.config.clip_low,
                clip_high=self.config.clip_high,
            )
            self.policy.apply_gradient(grad, self.config.learning_rate)
            stats = step_stats
        self.updates += 1
        stats["mean_reward"] = float(batch.rewards.mean())
        stats["policy_reward"] = self.policy.mean_reward(self.task)
        return stats


class DecoupledPPOTrainer(GRPOTrainer):
    """AReaL's Decoupled PPO: importance correction against a proximal policy.

    The behaviour distribution of a mixed-version trajectory is unknown, so
    Decoupled PPO recomputes log-probs under a *proximal* policy (a recent
    snapshot) and clips against it, which removes part — but not all — of the
    bias introduced by partial rollouts.
    """

    name = "decoupled_ppo"

    def __init__(self, task: SyntheticReasoningTask, config: Optional[GRPOConfig] = None,
                 seed: int = 0, proximal_refresh: int = 1) -> None:
        super().__init__(task, config, seed)
        self.proximal_policy = self.policy.copy()
        self.proximal_refresh = max(1, proximal_refresh)

    def update(self, batch: RolloutBatch) -> Dict[str, float]:
        features = self.task.features[batch.problem_ids]
        # Re-evaluate the behaviour log-prob under the proximal policy.
        proximal_log_prob = self.proximal_policy.log_prob(features, batch.strategies)
        corrected = RolloutBatch(
            problem_ids=batch.problem_ids,
            strategies=batch.strategies,
            rewards=batch.rewards,
            behaviour_log_prob=proximal_log_prob,
        )
        stats = super().update(corrected)
        if self.updates % self.proximal_refresh == 0:
            self.proximal_policy = self.policy.copy()
        return stats

"""Softmax-linear policy over reasoning strategies.

The policy maps a problem's feature vector to a distribution over the task's
K strategies through a linear layer followed by a softmax.  It exposes exactly
the quantities the RL algorithms need: sampling, log-probabilities, and the
gradient of the clipped surrogate objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .task import SyntheticReasoningTask


@dataclass
class SoftmaxPolicy:
    """theta has shape (feature_dim, num_strategies)."""

    feature_dim: int
    num_strategies: int
    theta: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.theta is None:
            self.theta = np.zeros((self.feature_dim, self.num_strategies))
        self.theta = np.asarray(self.theta, dtype=float)
        if self.theta.shape != (self.feature_dim, self.num_strategies):
            raise ValueError("theta shape mismatch")

    # ------------------------------------------------------------------ basics
    def copy(self) -> "SoftmaxPolicy":
        return SoftmaxPolicy(self.feature_dim, self.num_strategies, self.theta.copy())

    def logits(self, features: np.ndarray) -> np.ndarray:
        return features @ self.theta

    def probabilities(self, features: np.ndarray) -> np.ndarray:
        logits = self.logits(features)
        logits = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=-1, keepdims=True)

    def log_prob(self, features: np.ndarray, strategies: np.ndarray) -> np.ndarray:
        probs = self.probabilities(features)
        chosen = probs[np.arange(len(strategies)), strategies]
        return np.log(np.clip(chosen, 1e-12, 1.0))

    def sample(self, features: np.ndarray, rng: np.random.Generator,
               temperature: float = 1.0) -> np.ndarray:
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        logits = self.logits(features) / temperature
        logits = logits - logits.max(axis=-1, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=-1, keepdims=True)
        cdf = probs.cumsum(axis=-1)
        draws = rng.random((len(features), 1))
        return (draws < cdf).argmax(axis=-1)

    def entropy(self, features: np.ndarray) -> float:
        probs = self.probabilities(features)
        return float(-(probs * np.log(np.clip(probs, 1e-12, 1.0))).sum(axis=-1).mean())

    # ------------------------------------------------------------------ gradients
    def surrogate_gradient(
        self,
        features: np.ndarray,
        strategies: np.ndarray,
        advantages: np.ndarray,
        behaviour_log_prob: np.ndarray,
        clip_low: float = 0.2,
        clip_high: float = 0.28,
    ) -> Tuple[np.ndarray, dict]:
        """Gradient of the PPO/GRPO clipped surrogate w.r.t. theta.

        Uses the Clip-Higher asymmetric range of DAPO (§8): the ratio is
        clipped to [1 - clip_low, 1 + clip_high].
        """
        probs = self.probabilities(features)
        current_log_prob = np.log(
            np.clip(probs[np.arange(len(strategies)), strategies], 1e-12, 1.0)
        )
        ratio = np.exp(current_log_prob - behaviour_log_prob)
        clipped = np.clip(ratio, 1.0 - clip_low, 1.0 + clip_high)
        use_unclipped = (ratio * advantages) <= (clipped * advantages)
        active_ratio = np.where(use_unclipped, ratio, 0.0)

        # d log pi(a|x) / d theta = x ⊗ (onehot(a) - probs)
        onehot = np.zeros_like(probs)
        onehot[np.arange(len(strategies)), strategies] = 1.0
        weights = (active_ratio * advantages)[:, None] * (onehot - probs)
        grad = features.T @ weights / max(1, len(strategies))
        stats = {
            "mean_ratio": float(ratio.mean()),
            "clip_fraction": float(1.0 - use_unclipped.mean()),
            "mean_advantage": float(advantages.mean()),
        }
        return grad, stats

    def apply_gradient(self, grad: np.ndarray, learning_rate: float) -> None:
        if grad.shape != self.theta.shape:
            raise ValueError("gradient shape mismatch")
        self.theta = self.theta + learning_rate * grad

    # ------------------------------------------------------------------ evaluation
    def mean_reward(self, task: SyntheticReasoningTask) -> float:
        """Expected reward of the policy over the whole problem bank."""
        probs = self.probabilities(task.features)
        solve = 1.0 / (1.0 + np.exp(-task.solve_logits))
        expected = (probs * (2.0 * solve - 1.0)).sum(axis=-1)
        return float(expected.mean())

"""Synthetic reasoning task for the RL-algorithm substrate.

Fig 13 compares model convergence (training reward vs wall-clock time) across
systems.  We cannot train a real LLM here, so the algorithmic substrate uses a
parametric stand-in with the properties that matter for the comparison:

* a bank of problems with latent difficulty (as in DAPO-Math-17k);
* a policy that chooses one of K "reasoning strategies" per problem via a
  softmax over learned parameters — so policy-gradient updates, importance
  ratios, clipping and staleness all behave as they do for token-level
  policies;
* a reward of +1/-1 depending on whether the chosen strategy solves the
  problem, with per-problem strategy quality fixed at task creation.

Convergence speed *per update* is then governed by the RL algorithm and the
freshness of the behaviour policy, while wall-clock speed is governed by each
system's simulated iteration time — exactly the coupling Fig 13 studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np


@dataclass
class SyntheticReasoningTask:
    """A bank of problems, each with feature vector and per-strategy quality."""

    num_problems: int = 2048
    feature_dim: int = 16
    num_strategies: int = 8
    seed: int = 0
    #: Scale of the gap between good and bad strategies (larger = easier task).
    strategy_gap: float = 2.0

    def __post_init__(self) -> None:
        if self.num_problems <= 0 or self.feature_dim <= 0 or self.num_strategies <= 1:
            raise ValueError("task dimensions must be positive (and >= 2 strategies)")
        rng = np.random.default_rng(self.seed)
        self.features = rng.normal(0.0, 1.0, (self.num_problems, self.feature_dim))
        self.features /= np.linalg.norm(self.features, axis=1, keepdims=True)
        self.difficulty = rng.beta(2.0, 2.0, self.num_problems)
        # Per-problem, per-strategy solve logits.  The best strategy for a
        # problem depends on its features, so a linear policy can learn it.
        mixing = rng.normal(0.0, 1.0, (self.feature_dim, self.num_strategies))
        base = self.features @ mixing
        self.solve_logits = self.strategy_gap * base - 2.0 * self.difficulty[:, None]

    def solve_probability(self, problem_ids: np.ndarray, strategies: np.ndarray) -> np.ndarray:
        """Probability that the chosen strategy solves each problem."""
        logits = self.solve_logits[problem_ids, strategies]
        return 1.0 / (1.0 + np.exp(-logits))

    def sample_rewards(self, problem_ids: np.ndarray, strategies: np.ndarray,
                       rng: np.random.Generator) -> np.ndarray:
        """Rule-based reward in {-1, +1}."""
        prob = self.solve_probability(problem_ids, strategies)
        solved = rng.random(prob.shape) < prob
        return np.where(solved, 1.0, -1.0)

    def optimal_mean_reward(self) -> float:
        """Mean reward of the per-problem best strategy (convergence ceiling)."""
        best = self.solve_logits.max(axis=1)
        prob = 1.0 / (1.0 + np.exp(-best))
        return float((2.0 * prob - 1.0).mean())

    def random_mean_reward(self) -> float:
        """Mean reward of the uniform-random policy (convergence floor)."""
        prob = 1.0 / (1.0 + np.exp(-self.solve_logits))
        return float((2.0 * prob - 1.0).mean())

"""Numerical RL substrate: GRPO / Decoupled PPO on a synthetic reasoning task."""

from .convergence import (
    ConvergenceCurve,
    ConvergencePoint,
    SystemConvergenceProfile,
    compare_systems,
    convergence_speedup,
    run_convergence,
)
from .grpo import (
    DecoupledPPOTrainer,
    GRPOConfig,
    GRPOTrainer,
    RolloutBatch,
    generate_rollouts,
    group_normalized_advantages,
)
from .policy import SoftmaxPolicy
from .task import SyntheticReasoningTask

__all__ = [
    "ConvergenceCurve",
    "ConvergencePoint",
    "SystemConvergenceProfile",
    "compare_systems",
    "convergence_speedup",
    "run_convergence",
    "DecoupledPPOTrainer",
    "GRPOConfig",
    "GRPOTrainer",
    "RolloutBatch",
    "generate_rollouts",
    "group_normalized_advantages",
    "SoftmaxPolicy",
    "SyntheticReasoningTask",
]

"""GPU placements from Table 2 and rollout parallelism from Appendix A.2.

Table 2 lists, for every (system, model size, total GPU count), how many GPUs
serve the trainer and how many serve rollouts.  verl uses colocation (all GPUs
alternate between the two stages).  The rollout tensor-parallel size also
follows the appendix: TP=1 for the 7B model in AReaL/Laminar, TP=2 for the 7B
model in the other systems, TP=4 for 32B and TP=8 for 72B.

Systems are resolved through the :mod:`repro.systems` registry: a registered
variant (``laminar_norepack``, ``semi_sync``) declares which canonical
system's placements it reuses via ``SystemCapabilities.placement_like``, and
:func:`make_system_config` reads the per-system knobs (staleness bound, max
concurrency, repack) off the registered class instead of hard-coded tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..config import SystemConfig, default_trainer_parallel
from ..systems.base import (
    SystemRegistryError,
    get_system_class,
    placement_system,
)

#: Canonical system identifiers evaluated in the paper (Fig 11 series).
#: Registered variants resolve onto these via ``placement_like``.
SYSTEMS = ("verl", "one_step", "stream_gen", "areal", "laminar")

SYSTEM_LABELS = {
    "verl": "verl (synchronous, colocated)",
    "one_step": "One-step Staleness",
    "stream_gen": "Stream Generation",
    "areal": "AReaL (partial rollout)",
    "laminar": "Laminar",
}

#: Table 2 — (train GPUs, rollout GPUs) per (system, model, total GPUs).
#: verl entries are colocated: (total, 0).
PLACEMENTS: Dict[Tuple[str, str, int], Tuple[int, int]] = {
    # ---- verl (colocated) ----
    **{("verl", "7B", n): (n, 0) for n in (16, 32, 64, 128, 256)},
    **{("verl", "32B", n): (n, 0) for n in (32, 64, 128, 256, 512)},
    **{("verl", "72B", n): (n, 0) for n in (64, 128, 256, 512, 1024)},
    # ---- One-step staleness ----
    ("one_step", "7B", 16): (8, 8),
    ("one_step", "7B", 32): (8, 24),
    ("one_step", "7B", 64): (16, 48),
    ("one_step", "7B", 128): (32, 96),
    ("one_step", "7B", 256): (40, 216),
    ("one_step", "32B", 32): (16, 16),
    ("one_step", "32B", 64): (32, 32),
    ("one_step", "32B", 128): (48, 80),
    ("one_step", "32B", 256): (64, 192),
    ("one_step", "32B", 512): (80, 432),
    ("one_step", "72B", 64): (32, 32),
    ("one_step", "72B", 128): (64, 64),
    ("one_step", "72B", 256): (96, 160),
    ("one_step", "72B", 512): (192, 320),
    ("one_step", "72B", 1024): (256, 768),
    # ---- Stream generation (same placements as one-step in Table 2) ----
    ("stream_gen", "7B", 16): (8, 8),
    ("stream_gen", "7B", 32): (8, 24),
    ("stream_gen", "7B", 64): (16, 48),
    ("stream_gen", "7B", 128): (32, 96),
    ("stream_gen", "7B", 256): (40, 216),
    ("stream_gen", "32B", 32): (16, 16),
    ("stream_gen", "32B", 64): (32, 32),
    ("stream_gen", "32B", 128): (48, 80),
    ("stream_gen", "32B", 256): (64, 192),
    ("stream_gen", "32B", 512): (80, 432),
    ("stream_gen", "72B", 64): (32, 32),
    ("stream_gen", "72B", 128): (64, 64),
    ("stream_gen", "72B", 256): (96, 160),
    ("stream_gen", "72B", 512): (192, 320),
    ("stream_gen", "72B", 1024): (256, 768),
    # ---- AReaL ----
    ("areal", "7B", 16): (8, 8),
    ("areal", "7B", 32): (16, 16),
    ("areal", "7B", 64): (32, 32),
    ("areal", "7B", 128): (64, 64),
    ("areal", "7B", 256): (128, 128),
    ("areal", "32B", 32): (16, 16),
    ("areal", "32B", 64): (32, 32),
    ("areal", "32B", 128): (64, 64),
    ("areal", "32B", 256): (128, 128),
    ("areal", "32B", 512): (256, 256),
    ("areal", "72B", 64): (32, 32),
    ("areal", "72B", 128): (64, 64),
    ("areal", "72B", 256): (128, 128),
    ("areal", "72B", 512): (320, 192),
    ("areal", "72B", 1024): (640, 384),
    # ---- Laminar ----
    ("laminar", "7B", 16): (8, 8),
    ("laminar", "7B", 32): (24, 8),
    ("laminar", "7B", 64): (40, 24),
    ("laminar", "7B", 128): (80, 48),
    ("laminar", "7B", 256): (192, 64),
    ("laminar", "32B", 32): (16, 16),
    ("laminar", "32B", 64): (32, 32),
    ("laminar", "32B", 128): (64, 64),
    ("laminar", "32B", 256): (128, 128),
    ("laminar", "32B", 512): (256, 256),
    ("laminar", "72B", 64): (32, 32),
    ("laminar", "72B", 128): (64, 64),
    ("laminar", "72B", 256): (128, 128),
    ("laminar", "72B", 512): (320, 192),
    ("laminar", "72B", 1024): (768, 256),
}

#: Datacenter-scale placements beyond Table 2, extrapolated with each
#: system's scaling recipe (verl stays colocated; the pipelined systems keep
#: the 256-GPU trainer:rollout ratio trend).  They feed the fleet-scale bench
#: scenarios (``datacenter_1k``) and are deliberately *excluded* from
#: :func:`table2_rows`, which reproduces the paper's table verbatim.
EXTRAPOLATED_PLACEMENTS: Dict[Tuple[str, str, int], Tuple[int, int]] = {
    ("verl", "7B", 4096): (4096, 0),        # 2048 rollout replicas at TP=2
    ("one_step", "7B", 4096): (512, 3584),  # 1792 rollout replicas at TP=2
    ("stream_gen", "7B", 4096): (512, 3584),
    ("verl", "7B", 8192): (8192, 0),        # 4096 rollout replicas at TP=2
    ("one_step", "7B", 8192): (1024, 7168),  # 3584 rollout replicas at TP=2
    ("stream_gen", "7B", 8192): (1024, 7168),
}

#: GPU scales evaluated per model size (Fig 11).
MODEL_SCALES: Dict[str, List[int]] = {
    "7B": [16, 32, 64, 128, 256],
    "32B": [32, 64, 128, 256, 512],
    "72B": [64, 128, 256, 512, 1024],
}


def _placement_base(system: str) -> str:
    """The canonical system whose Table 2 placements ``system`` uses."""
    try:
        return placement_system(system)
    except SystemRegistryError:
        return system  # unregistered name: fall through to the table lookup


def rollout_tensor_parallel(system: str, model_size: str) -> int:
    """Rollout TP size per Appendix A.2 (variants follow their base system)."""
    base = _placement_base(system)
    if model_size == "32B":
        return 4
    if model_size == "72B":
        return 8
    # 7B: AReaL and Laminar maximise throughput with TP=1; others use TP=2.
    return 1 if base in ("areal", "laminar") else 2


def placement_for(system: str, model_size: str, total_gpus: int) -> Tuple[int, int]:
    """Trainer/rollout GPU split from Table 2 (variants follow their base).

    Datacenter-scale points past the end of Table 2 resolve through
    :data:`EXTRAPOLATED_PLACEMENTS`.
    """
    key = (_placement_base(system), model_size, total_gpus)
    try:
        return PLACEMENTS[key]
    except KeyError:
        pass
    try:
        return EXTRAPOLATED_PLACEMENTS[key]
    except KeyError:
        raise KeyError(
            f"no Table 2 placement for system={system!r}, model={model_size!r}, "
            f"GPUs={total_gpus}"
        ) from None


def make_system_config(
    system: str,
    model_size: str,
    total_gpus: int,
    task_type: str = "math",
    **overrides,
) -> SystemConfig:
    """Build the paper-accurate configuration for one evaluation grid point.

    ``system`` may be any name in the :mod:`repro.systems` registry; its
    placement, tensor parallelism, staleness bound, concurrency cap and
    repack setting come from the registered class's capabilities.
    """
    try:
        capabilities = get_system_class(system).capabilities
    except SystemRegistryError as exc:
        raise ValueError(str(exc)) from None
    base = _placement_base(system)
    trainer_gpus, rollout_gpus = placement_for(system, model_size, total_gpus)
    tp = rollout_tensor_parallel(system, model_size)
    config = SystemConfig(
        system=system,
        model_size=model_size,
        task_type=task_type,
        trainer_gpus=trainer_gpus,
        rollout_gpus=rollout_gpus,
        rollout_tensor_parallel=tp,
        trainer_parallel=default_trainer_parallel(model_size, trainer_gpus, base),
        staleness_bound=capabilities.default_staleness_bound,
        max_concurrency_per_replica=capabilities.default_max_concurrency,
        repack_enabled=capabilities.repack,
    )
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    return config


def table2_rows() -> List[Dict[str, object]]:
    """Reproduce Table 2 as a list of row dictionaries."""
    rows: List[Dict[str, object]] = []
    for (system, model_size, total), (train, rollout) in sorted(
        PLACEMENTS.items(), key=lambda kv: (SYSTEMS.index(kv[0][0]), kv[0][1], kv[0][2])
    ):
        rows.append(
            {
                "system": system,
                "model": model_size,
                "total_gpus": total,
                "trainer_gpus": train if rollout else total,
                "rollout_gpus": rollout if rollout else total,
                "colocated": rollout == 0,
            }
        )
    return rows

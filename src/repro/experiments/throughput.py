"""End-to-end training throughput (Fig 11, Fig 12, §8.1).

The batch-synchronous systems (verl, one-step staleness, stream generation)
are simulated directly for a few iterations.  The continuously-generating
systems (AReaL and Laminar) are evaluated at steady state by composing
component measurements from the same generation engine:

* Laminar: iteration time = max(training time + actor push stall,
  batch tokens / fleet generation rate), where the fleet rate uses the
  per-replica batch-cycle rate *with repack* (the replica is released once it
  reaches its ramp-down phase; the tail is consolidated on destination
  replicas at negligible marginal decode cost).
* AReaL: iteration time solves the fixed point
  T = max(T_train, B / (N * R_eff(T))) + T_sync, with
  R_eff(T) = R_continuous * (1 - T_reprefill / T), because every weight update
  interrupts all replicas and re-prefills every in-flight trajectory.

Both compositions are documented in DESIGN.md and validated against the full
event-driven :class:`~repro.systems.laminar.LaminarSystem` in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..systems import make_system
from ..systems.base import get_system_class
from ..config import SystemConfig
from ..systems.relay import RelayService
from ..llm.training_model import TrainingModel
from ..metrics.results import SystemRunResult
from ..sim.network import RDMA_LINK, gpu_direct_global_sync_time
from ..trainer.trainer import IterationRecord
from .generation_rate import (
    BatchCycleProfile,
    ContinuousRateProfile,
    continuous_replica_rate,
    replica_batch_cycle,
)
from .placements import MODEL_SCALES, SYSTEMS, make_system_config


#: Scale factor applied to the paper's 8192-trajectory global batch.  The
#: default of 1.0 evaluates the paper's exact batch geometry; benchmarks that
#: need to run quickly may pass a smaller value, at the cost of overstating the
#: long-tail penalty of the batch-synchronous systems (the tail is constant
#: while the batch shrinks).
DEFAULT_BATCH_SCALE = 1.0


@dataclass
class ThroughputPoint:
    """One (system, model, GPU count) evaluation-grid point."""

    system: str
    model_size: str
    task_type: str
    total_gpus: int
    throughput: float
    iteration_time: float
    generation_bound: bool
    details: Dict[str, float]

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "system": self.system,
            "model": self.model_size,
            "task": self.task_type,
            "gpus": self.total_gpus,
            "throughput_tok_s": self.throughput,
            "iteration_time_s": self.iteration_time,
        }
        row.update(self.details)
        return row


def _mean_tokens_per_trajectory(config: SystemConfig, seed: int = 0) -> float:
    task = config.task()
    rng = np.random.default_rng(seed)
    lengths = task.length_dist.sample(rng, 20_000)
    prompt = 450.0
    return float(lengths.mean() + prompt)


def _training_time(config: SystemConfig, batch_tokens: float) -> float:
    model = TrainingModel(model=config.model(), config=config.trainer_parallel, gpu=config.gpu)
    return model.iteration_time(batch_tokens, config.num_minibatches)


def measure_batch_system(config: SystemConfig) -> ThroughputPoint:
    """Direct DES simulation of a registered batch/continuous system."""
    system = make_system(config)
    result = system.run()
    warm = config.warmup_iterations
    breakdown = result.mean_breakdown()
    return ThroughputPoint(
        system=config.system,
        model_size=config.model_size,
        task_type=config.task_type,
        total_gpus=config.total_gpus,
        throughput=result.throughput(warm),
        iteration_time=result.mean_iteration_time(warm),
        generation_bound=breakdown.generation_time >= breakdown.training_time,
        details={
            "generation_time": breakdown.generation_time,
            "training_time": breakdown.training_time,
            "weight_sync_time": breakdown.weight_sync_time,
            "bubble_time": breakdown.bubble_time,
            "mean_staleness": result.mean_staleness(),
        },
    )


def measure_laminar(config: SystemConfig, cycle: Optional[BatchCycleProfile] = None) -> ThroughputPoint:
    """Steady-state Laminar throughput from the batch-cycle composition."""
    cycle = cycle or replica_batch_cycle(config, seed=config.seed)
    num_replicas = config.num_rollout_replicas()
    fleet_rate = num_replicas * (
        cycle.rate_with_repack if config.repack_enabled else cycle.rate_without_repack
    )
    mean_tokens = _mean_tokens_per_trajectory(config, config.seed)
    batch_tokens = config.global_batch_size * mean_tokens
    train_time = _training_time(config, batch_tokens)
    relay = RelayService(
        model=config.model(),
        rollout_machine_ids=list(range(max(1, config.rollout_gpus // 8))),
        rollout_tensor_parallel=config.rollout_tensor_parallel,
    )
    actor_stall = relay.actor_push_time()
    supply_time = batch_tokens / fleet_rate if fleet_rate > 0 else float("inf")
    iteration = max(train_time + actor_stall, supply_time)
    staleness_estimate = cycle.release_time / iteration if iteration > 0 else 0.0
    return ThroughputPoint(
        system=config.system,
        model_size=config.model_size,
        task_type=config.task_type,
        total_gpus=config.total_gpus,
        throughput=batch_tokens / iteration,
        iteration_time=iteration,
        generation_bound=supply_time > train_time + actor_stall,
        details={
            "generation_time": supply_time,
            "training_time": train_time,
            "weight_sync_time": actor_stall,
            "fleet_generation_rate": fleet_rate,
            "replica_cycle_time": cycle.full_duration,
            "replica_release_time": cycle.release_time,
            "estimated_max_staleness": float(np.ceil(staleness_estimate)),
            "mean_kvcache_utilization": cycle.mean_kvcache_utilization_to_release,
        },
    )


def measure_areal(config: SystemConfig, profile: Optional[ContinuousRateProfile] = None) -> ThroughputPoint:
    """Steady-state AReaL throughput from the continuous-rate fixed point."""
    profile = profile or continuous_replica_rate(config, seed=config.seed)
    num_replicas = config.num_rollout_replicas()
    mean_tokens = _mean_tokens_per_trajectory(config, config.seed)
    batch_tokens = config.global_batch_size * mean_tokens
    train_time = _training_time(config, batch_tokens)
    machines = max(1, config.rollout_gpus // 8)
    sync_time = gpu_direct_global_sync_time(config.model().weight_bytes, machines, RDMA_LINK)

    # Re-prefill storm: every in-flight trajectory on every replica rebuilds
    # its KVCache after each weight update.
    from ..llm.decode_model import DecodeModel

    decode_model = DecodeModel(
        model=config.model(), gpu=config.gpu, tensor_parallel=config.rollout_tensor_parallel
    )
    per_seq = decode_model.prefill_time(int(max(1.0, profile.mean_inflight_context)), 1)
    reprefill_time = profile.mean_inflight * per_seq

    raw_rate = num_replicas * profile.tokens_per_second
    iteration = max(train_time, batch_tokens / raw_rate if raw_rate > 0 else float("inf")) + sync_time
    for _ in range(100):
        overhead_fraction = min(0.95, (reprefill_time + sync_time) / max(iteration, 1e-9))
        effective_rate = raw_rate * (1.0 - overhead_fraction)
        supply = batch_tokens / effective_rate if effective_rate > 0 else float("inf")
        new_iteration = max(train_time, supply) + sync_time
        if abs(new_iteration - iteration) < 1e-3:
            iteration = new_iteration
            break
        # Damped update: the raw fixed-point map can oscillate when the
        # re-prefill overhead is comparable to the iteration time.
        iteration = 0.5 * iteration + 0.5 * new_iteration
    supply_time = batch_tokens / max(raw_rate, 1e-9)
    return ThroughputPoint(
        system=config.system,
        model_size=config.model_size,
        task_type=config.task_type,
        total_gpus=config.total_gpus,
        throughput=batch_tokens / iteration,
        iteration_time=iteration,
        generation_bound=iteration - sync_time > train_time + 1e-9,
        details={
            "generation_time": supply_time,
            "training_time": train_time,
            "weight_sync_time": sync_time,
            "reprefill_time_per_update": reprefill_time,
            "raw_generation_rate": raw_rate,
            "mean_inflight_per_replica": profile.mean_inflight,
        },
    )


#: Registered ``SystemCapabilities.throughput_method`` values → evaluators.
_MEASURERS = {
    "simulate": measure_batch_system,
    "laminar_cycle": measure_laminar,
    "areal_fixed_point": measure_areal,
}


def measure_config(config: SystemConfig) -> ThroughputPoint:
    """Evaluate one configuration with its system's declared method.

    The registered class's ``capabilities.throughput_method`` selects direct
    DES simulation, the Laminar batch-cycle composition, or the AReaL
    continuous-rate fixed point.
    """
    method = get_system_class(config.system).capabilities.throughput_method
    try:
        measurer = _MEASURERS[method]
    except KeyError:
        raise ValueError(
            f"system {config.system!r} declares unknown throughput method "
            f"{method!r}; known: {sorted(_MEASURERS)}"
        ) from None
    return measurer(config)


def measure_point(system: str, model_size: str, total_gpus: int, task_type: str = "math",
                  batch_scale: float = DEFAULT_BATCH_SCALE, seed: int = 0,
                  num_iterations: int = 3, warmup_iterations: int = 1) -> ThroughputPoint:
    """Measure one evaluation-grid point with the appropriate method."""
    config = make_system_config(system, model_size, total_gpus, task_type=task_type, seed=seed)
    if batch_scale < 1.0:
        config = config.scaled(batch_scale)
    config = replace(config, num_iterations=num_iterations, warmup_iterations=warmup_iterations)
    return measure_config(config)


def throughput_sweep(
    model_size: str,
    task_type: str = "math",
    systems: Iterable[str] = SYSTEMS,
    gpu_scales: Optional[List[int]] = None,
    batch_scale: float = DEFAULT_BATCH_SCALE,
    seed: int = 0,
) -> List[ThroughputPoint]:
    """Reproduce one panel of Fig 11 (or Fig 12 with ``task_type='tool'``)."""
    gpu_scales = gpu_scales or MODEL_SCALES[model_size]
    points: List[ThroughputPoint] = []
    for system in systems:
        if task_type == "tool" and system == "areal":
            # Fig 12 omits AReaL on the multi-turn task (its sandbox
            # integration is not evaluated in the paper).
            continue
        for gpus in gpu_scales:
            points.append(
                measure_point(system, model_size, gpus, task_type=task_type,
                              batch_scale=batch_scale, seed=seed)
            )
    return points


def speedup_table(points: List[ThroughputPoint], reference_system: str = "verl") -> Dict[str, Dict[int, float]]:
    """Per-system, per-scale speedup over the reference system."""
    reference = {p.total_gpus: p.throughput for p in points if p.system == reference_system}
    table: Dict[str, Dict[int, float]] = {}
    for point in points:
        base = reference.get(point.total_gpus)
        if not base:
            continue
        table.setdefault(point.system, {})[point.total_gpus] = point.throughput / base
    return table


def scaling_efficiency_from_points(points: List[ThroughputPoint], system: str) -> float:
    """§8.1 strong-scaling efficiency for one system over its GPU scales."""
    mine = sorted((p for p in points if p.system == system), key=lambda p: p.total_gpus)
    if len(mine) < 2:
        raise ValueError(f"need at least two scales for system {system!r}")
    smallest, largest = mine[0], mine[-1]
    gpu_ratio = largest.total_gpus / smallest.total_gpus
    tput_ratio = largest.throughput / smallest.throughput if smallest.throughput else 0.0
    return tput_ratio / gpu_ratio

"""Drivers for every remaining table and figure of the evaluation.

Each function returns plain Python data (dicts / lists) so the benchmark
harness and the examples can print the same rows/series the paper reports.
Figure 11/12 live in :mod:`repro.experiments.throughput`.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.convergence import (
    ConvergenceCurve,
    SystemConvergenceProfile,
    compare_systems,
)
from ..config import SystemConfig
from ..systems import (
    FailureEvent,
    FailureInjector,
    FailureKind,
    LaminarSystem,
    figure18_series,
    make_system,
    rollout_wait_comparison,
)
from ..llm import DecodeModel, QWEN_7B, QWEN_32B, QWEN_72B, get_model
from ..workload import get_env_latency, get_length_distribution
from .generation_rate import replica_batch_cycle
from .placements import make_system_config
from .throughput import measure_point


# --------------------------------------------------------------------------- Fig 1b
def figure1_time_breakdown(batch_scale: float = 1.0 / 8.0, seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Stage-time fractions of synchronous RL on single- and multi-turn tasks."""
    out: Dict[str, Dict[str, float]] = {}
    for task_type in ("math", "tool"):
        config = make_system_config("verl", "7B", 32, task_type=task_type, seed=seed)
        config = config.scaled(batch_scale)
        config = replace(config, num_iterations=2, warmup_iterations=0)
        result = make_system(config).run()
        out[task_type] = result.mean_breakdown().fractions()
    return out


# --------------------------------------------------------------------------- Fig 2 / 17
def figure2_distributions(num_samples: int = 100_000, seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Response-length and sandbox-latency distribution statistics."""
    rng = np.random.default_rng(seed)
    lengths = get_length_distribution("math", "7B").sample(rng, num_samples)
    latencies = get_env_latency("code-sandbox").sample(rng, num_samples)
    return {
        "response_length": {
            "p50": float(np.percentile(lengths, 50)),
            "p99": float(np.percentile(lengths, 99)),
            "skew_p99_over_p50": float(np.percentile(lengths, 99) / np.percentile(lengths, 50)),
            "mean": float(lengths.mean()),
            "max": float(lengths.max()),
        },
        "env_latency": {
            "p50": float(np.percentile(latencies, 50)),
            "p99": float(np.percentile(latencies, 99)),
            "mean": float(latencies.mean()),
            "max": float(latencies.max()),
        },
    }


def figure17_length_distributions(num_samples: int = 50_000, seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Per-checkpoint response-length statistics (Fig 17 a-d)."""
    rng = np.random.default_rng(seed)
    out: Dict[str, Dict[str, float]] = {}
    for key in ("math-7B", "math-32B", "math-72B", "tool-7B"):
        task, size = key.split("-")
        dist = get_length_distribution(task, size)
        samples = dist.sample(rng, num_samples)
        out[key] = {
            "p50": float(np.percentile(samples, 50)),
            "p95": float(np.percentile(samples, 95)),
            "p99": float(np.percentile(samples, 99)),
            "mean": float(samples.mean()),
            "max_tokens": float(dist.max_tokens),
        }
    return out


# --------------------------------------------------------------------------- Fig 4
def figure4_decode_latency(
    sequence_length: int = 4096,
    batch_sizes: Optional[List[int]] = None,
) -> Dict[str, Dict[int, float]]:
    """One-step decode latency (ms) vs decode batch size for 7B/32B and TP sizes."""
    batch_sizes = batch_sizes or [1, 4, 8, 16, 32, 64, 128, 256, 512]
    configs = [
        ("7B, TP=1", QWEN_7B, 1),
        ("7B, TP=2", QWEN_7B, 2),
        ("7B, TP=4", QWEN_7B, 4),
        ("32B, TP=2", QWEN_32B, 2),
        ("32B, TP=4", QWEN_32B, 4),
        ("32B, TP=8", QWEN_32B, 8),
    ]
    series: Dict[str, Dict[int, float]] = {}
    for label, model, tp in configs:
        decode = DecodeModel(model=model, tensor_parallel=tp)
        series[label] = {
            b: decode.decode_step_time(b, sequence_length) * 1e3 for b in batch_sizes
        }
    return series


# --------------------------------------------------------------------------- Fig 9
def figure9_kvcache_lifecycle(seed: int = 0, batch_size: int = 512) -> Dict[str, object]:
    """KVCache utilisation lifecycle of one 32B TP=4 replica over a 512-batch."""
    config = make_system_config("laminar", "32B", 128, seed=seed)
    cycle = replica_batch_cycle(config, batch_size=batch_size, seed=seed)
    return {
        "batch_size": cycle.batch_size,
        "full_duration_s": cycle.full_duration,
        "release_time_s": cycle.release_time,
        "release_fraction_of_cycle": cycle.release_time / cycle.full_duration,
        "mean_kvcache_utilization": cycle.mean_kvcache_utilization,
        "mean_kvcache_utilization_to_release": cycle.mean_kvcache_utilization_to_release,
        "tokens_generated": cycle.total_tokens,
    }


# --------------------------------------------------------------------------- Fig 10
def figure10_staleness_distribution(
    batch_scale: float = 1.0 / 8.0, num_iterations: int = 8, seed: int = 0
) -> Dict[str, object]:
    """Inherent staleness distribution of Laminar trajectories (7B, 64 GPUs)."""
    config = make_system_config("laminar", "7B", 64, seed=seed).scaled(batch_scale)
    config = replace(config, num_iterations=num_iterations, warmup_iterations=1)
    system = LaminarSystem(config)
    system.run()
    tracker = system.staleness
    by_bucket = {
        f"{int(lo)}-{int(hi)}s": dist
        for (lo, hi), dist in tracker.by_finish_time_bucket(bucket_seconds=120.0).items()
    }
    return {
        "distribution": tracker.distribution(),
        "max_staleness": tracker.max_staleness(),
        "mean_staleness": tracker.mean_staleness(),
        "fraction_at_most_3": tracker.fraction_at_most(3),
        "by_finish_time": by_bucket,
    }


# --------------------------------------------------------------------------- Fig 13
def figure13_profiles(model_size: str = "7B", total_gpus: int = 32,
                      seed: int = 0) -> List[SystemConvergenceProfile]:
    """Build per-system convergence profiles from the throughput model.

    Memoised per process: each profile set prices one full throughput
    measurement per system (tens of seconds at the paper's batch geometry),
    and the convergence benchmark grid asks for the identical set once per
    (system × scale) unit.  The profiles are frozen dataclasses, so sharing
    the tuple across callers is safe; a fresh list is returned each call.
    """
    return list(_figure13_profiles_cached(model_size, total_gpus, seed))


@lru_cache(maxsize=32)
def _figure13_profiles_cached(
    model_size: str, total_gpus: int, seed: int
) -> Tuple[SystemConvergenceProfile, ...]:
    profiles: List[SystemConvergenceProfile] = []
    spec = {
        "verl": dict(mean_staleness=0.0, max_staleness=0, mixture_fraction=0.0, algorithm="grpo"),
        "one_step": dict(mean_staleness=1.0, max_staleness=1, mixture_fraction=0.0, algorithm="grpo"),
        "stream_gen": dict(mean_staleness=1.0, max_staleness=1, mixture_fraction=0.0, algorithm="grpo"),
        "areal": dict(mean_staleness=2.5, max_staleness=4, mixture_fraction=0.35,
                      algorithm="decoupled_ppo"),
        "laminar": dict(mean_staleness=1.0, max_staleness=4, mixture_fraction=0.0, algorithm="grpo"),
    }
    for system, kwargs in spec.items():
        point = measure_point(system, model_size, total_gpus, seed=seed)
        profiles.append(
            SystemConvergenceProfile(name=system, iteration_time=point.iteration_time, **kwargs)
        )
    return tuple(profiles)


def figure13_convergence(model_size: str = "7B", total_gpus: int = 32,
                         num_iterations: int = 40, seed: int = 0) -> Dict[str, ConvergenceCurve]:
    """Reward-vs-wall-clock curves for every system (Fig 13)."""
    profiles = figure13_profiles(model_size, total_gpus, seed=seed)
    return compare_systems(profiles, num_iterations=num_iterations, seed=seed)


# --------------------------------------------------------------------------- Fig 14
def figure14_weight_sync(model_size: str = "32B",
                         rollout_gpu_counts: Optional[List[int]] = None) -> Dict[int, Dict[str, float]]:
    """Rollout waiting time during weight sync: Laminar relay vs GPU-direct."""
    rollout_gpu_counts = rollout_gpu_counts or [32, 64, 128, 256, 512]
    model = get_model(model_size)
    tp = 4 if model_size == "32B" else 8
    return {
        gpus: rollout_wait_comparison(model, gpus, tp) for gpus in rollout_gpu_counts
    }


# --------------------------------------------------------------------------- Fig 15
def figure15_fault_tolerance(batch_scale: float = 1.0 / 8.0, failure_time: float = 60.0,
                             seed: int = 0) -> Dict[str, object]:
    """Throughput timeline with a rollout-machine failure mid-run (32B setting
    scaled down to a 7B/64-GPU equivalent so the simulation stays fast)."""
    config = make_system_config("laminar", "7B", 64, seed=seed).scaled(batch_scale)
    config = replace(config, num_iterations=30, warmup_iterations=1)
    injector = FailureInjector()
    injector.add(FailureEvent(time=failure_time, kind=FailureKind.ROLLOUT_MACHINE, target=0))
    system = LaminarSystem(config, failure_injector=injector)
    result = system.run()
    records = system.manager.recovery_records
    rate = system.generation_rate_series(bucket=60.0)
    before = rate.window_mean(0.0, failure_time) if failure_time > 60 else 0.0
    recovered_at = records[0].recovered_at if records else failure_time
    window_end = min(result.wall_clock, recovered_at + 600.0)
    after = (
        rate.window_mean(recovered_at, window_end)
        if window_end > recovered_at + 60.0
        else before
    )
    during = rate.window_mean(failure_time, recovered_at) if recovered_at > failure_time else 0.0
    return {
        "failure_time": failure_time,
        "recovery_seconds": records[0].downtime if records else 0.0,
        "trajectories_redirected": records[0].trajectories_redirected if records else 0,
        "trajectories_lost": records[0].trajectories_lost if records else 0,
        "generation_rate_before": before,
        "generation_rate_during_outage": during,
        "generation_rate_after_recovery": after,
        "iterations_completed": len(result.iterations),
        "training_continued": len(result.iterations) > 0,
    }


# --------------------------------------------------------------------------- Fig 16 / Table 1
def figure16_repack_efficiency(model_size: str = "32B", total_gpus: int = 128,
                               seed: int = 0) -> Dict[str, object]:
    """Generation throughput and KVCache utilisation with and without repack."""
    config = make_system_config("laminar", model_size, total_gpus, seed=seed)
    cycle = replica_batch_cycle(config, seed=seed)
    with_repack = cycle.rate_with_repack
    without_repack = cycle.rate_without_repack
    return {
        "generation_rate_with_repack": with_repack,
        "generation_rate_without_repack": without_repack,
        "throughput_gain": with_repack / without_repack if without_repack else float("inf"),
        "kvcache_util_with_repack": cycle.mean_kvcache_utilization_to_release,
        "kvcache_util_without_repack": cycle.mean_kvcache_utilization,
        "replica_cycle_time": cycle.full_duration,
        "replica_release_time": cycle.release_time,
    }


def table1_repack_stats(batch_scale: float = 1.0 / 8.0, num_iterations: int = 6,
                        seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Table 1: trajectory latency, repack overhead and KVCache utilisation."""
    rows: Dict[str, Dict[str, float]] = {}
    for enabled in (True, False):
        config = make_system_config("laminar", "7B", 64, seed=seed).scaled(batch_scale)
        config = replace(config, num_iterations=num_iterations, warmup_iterations=1,
                         repack_enabled=enabled)
        system = LaminarSystem(config)
        if not enabled:
            # Disable both the periodic check and the post-update trigger.
            system.manager.repack_interval = float("inf")
            system.manager.batch_bound = 0 or 1
            system.manager.executor.plan_overhead = 0.0
        result = system.run()
        latencies = [s.generation_latency for s in system.staleness.samples]
        rows["w/ repack" if enabled else "w/o repack"] = {
            "mean_trajectory_latency": float(np.mean(latencies)) if latencies else 0.0,
            "max_trajectory_latency": float(np.max(latencies)) if latencies else 0.0,
            "repack_overhead_mean": result.extras.get("repack_overhead_mean", 0.0),
            "mean_kvcache_utilization": system.mean_kvcache_utilization(),
            "throughput": result.steady_throughput(2),
        }
    return rows


# --------------------------------------------------------------------------- Fig 18
def figure18_broadcast_latency() -> Dict[str, Dict[int, float]]:
    """Relay broadcast latency vs machine count for the 32B and 72B models."""
    return {
        "32B": figure18_series(QWEN_32B),
        "72B": figure18_series(QWEN_72B),
    }


# --------------------------------------------------------------------------- Table 3
def table3_hyperparameters() -> Dict[str, Dict[str, object]]:
    """Convergence-experiment hyperparameters (Table 3)."""
    base = {
        "algorithm": "GRPO",
        "learning_rate": 1e-6,
        "weight_decay": 0.1,
        "clip_eps_high": 0.28,
        "clip_eps_low": 0.2,
        "discount_gamma": 1.0,
        "gae_lambda": 1.0,
        "group_size": 16,
        "global_batch_size": 8192,
        "mini_batch_size": 512,
        "max_staleness": 0,
        "sampling": None,
        "per_rollout_max_concurrency": None,
    }
    table: Dict[str, Dict[str, object]] = {}
    table["verl"] = dict(base)
    for name in ("one_step", "stream_gen"):
        row = dict(base)
        row.update(mini_batch_size=2048, max_staleness=1)
        table[name] = row
    areal = dict(base)
    areal.update(
        algorithm="Decoupled PPO",
        learning_rate=2e-5,
        weight_decay=0.05,
        clip_eps_high=0.2,
        mini_batch_size=2048,
        max_staleness=4,
        sampling="FIFO",
        per_rollout_max_concurrency=256,
    )
    table["areal"] = areal
    laminar = dict(base)
    laminar.update(
        mini_batch_size=2048,
        max_staleness="4 (observed)",
        sampling="FIFO",
        per_rollout_max_concurrency=256,
    )
    table["laminar"] = laminar
    return table

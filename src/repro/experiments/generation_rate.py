"""Sustained generation-rate measurements for the continuous systems.

The batch-synchronous baselines are simulated directly (their iteration time
is the time for the slowest replica to finish a full batch).  For the
continuously-generating systems (AReaL and Laminar) the steady-state
throughput is composed from component rates measured here:

* :func:`replica_batch_cycle` — one Laminar replica working through one
  prompt batch: completion profile, the time at which the repack mechanism
  would release the replica, and the tokens generated.
* :func:`continuous_replica_rate` — one AReaL-style replica with continuous
  prompt top-up: the sustained full-KVCache decode rate and the average
  in-flight context (which prices the re-prefill storm).

Both run a single replica, so they are cheap, and both use the exact same
generation engine as every end-to-end simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..config import SystemConfig
from ..llm.decode_model import DecodeModel
from ..rollout.environment import TrajectoryFactory
from ..rollout.generation import ReplicaGenerationState
from ..rollout.replica_config import RolloutReplicaConfig
from ..workload.datasets import PromptDataset, TaskSpec


@dataclass
class BatchCycleProfile:
    """One replica's pass over one prompt batch."""

    batch_size: int
    total_tokens: int
    #: Time for every trajectory of the batch to finish on this replica alone.
    full_duration: float
    #: Time at which the repack release condition first holds (ramp-down and
    #: fewer than ``batch_bound`` remaining trajectories).
    release_time: float
    #: Tokens generated up to the release time.
    tokens_at_release: int
    #: Mean completion time of the batch's trajectories.
    mean_completion: float
    #: Mean KVCache utilisation sampled over the cycle.
    mean_kvcache_utilization: float
    mean_kvcache_utilization_to_release: float
    #: Sampled ``(time, utilisation)`` trace over the cycle (Fig 9 lifecycle).
    utilization_trace: List[Tuple[float, float]] = field(default_factory=list)

    #: Typical number of same-version ramp-down replicas consolidated together:
    #: Algorithm 1 releases all but one of them, and the remaining destination
    #: keeps decoding every tail at negligible marginal cost (memory-bound).
    consolidation_group: int = 4

    @property
    def rate_without_repack(self) -> float:
        """Sustained tokens/s when the replica must drain its own tail."""
        return self.total_tokens / self.full_duration if self.full_duration > 0 else 0.0

    @property
    def rate_with_repack(self) -> float:
        """Sustained fleet-average tokens/s per replica when repack absorbs tails.

        In a group of ``consolidation_group`` ramp-down replicas, all but one
        are released at ``release_time`` and immediately start a fresh batch;
        the one destination carries the consolidated tails to ``full_duration``
        with essentially unchanged decode latency (Fig 4).  The fleet-average
        cycle length is therefore a weighted mix of the two.
        """
        if self.release_time <= 0 or self.release_time >= self.full_duration:
            return self.rate_without_repack
        g = max(2, self.consolidation_group)
        effective_cycle = ((g - 1) * self.release_time + self.full_duration) / g
        return self.total_tokens / effective_cycle


def _make_replica(config: SystemConfig, replica_config: RolloutReplicaConfig) -> ReplicaGenerationState:
    return ReplicaGenerationState(
        replica_id=0,
        decode_model=replica_config.decode_model(),
        kvcache_config=replica_config.kvcache_config(),
        max_concurrency=config.max_concurrency_per_replica,
    )


def replica_prompt_batch(config: SystemConfig, task: TaskSpec,
                         replica_config: RolloutReplicaConfig) -> int:
    """Per-replica prompt batch size: saturate the KVCache with a waiting queue."""
    kv_tokens = replica_config.kvcache_config().total_tokens
    mean_tokens = task.length_dist.mean() + 512.0
    capacity = max(1, int(kv_tokens / mean_tokens))
    return int(min(config.max_concurrency_per_replica, max(capacity * 1.5, 8)))


def replica_batch_cycle(
    config: SystemConfig,
    batch_size: Optional[int] = None,
    seed: int = 0,
    sample_interval: float = 5.0,
) -> BatchCycleProfile:
    """Simulate one replica through one prompt batch (Laminar's unit of work)."""
    task = config.task()
    replica_config = RolloutReplicaConfig(
        model=config.model(),
        tensor_parallel=config.rollout_tensor_parallel,
        gpu=config.gpu,
        max_concurrency=config.max_concurrency_per_replica,
    )
    decode_model = replica_config.decode_model()
    batch_size = batch_size or replica_prompt_batch(config, task, replica_config)
    dataset = PromptDataset(task, seed=seed)
    factory = TrajectoryFactory(task, seed=seed + 1)
    rng = np.random.default_rng(seed + 2)
    prompts = dataset.sample_batch(max(1, -(-batch_size // task.group_size)), rng)[:batch_size]
    states = factory.make(prompts)
    replica = _make_replica(config, replica_config)
    replica.add_sequences(states)

    batch_bound = max(
        8, decode_model.batch_bound_for_latency_slack(int(task.length_dist.mean()) + 512, slack=2.0)
    )
    release_time = 0.0
    tokens_at_release = 0
    utilisation_samples: List[float] = []
    trace: List[Tuple[float, float]] = []
    utilisation_to_release: List[float] = []
    completions: List[float] = []
    next_sample = 0.0
    prev_util = 0.0
    peak_util = 0.0

    while replica.num_sequences > 0:
        delta = replica.next_event_in()
        if delta is None:
            break
        done = replica.advance(delta)
        completions.extend(t.finish_time for t in done)
        if replica.clock >= next_sample:
            util = replica.kvcache_utilization
            utilisation_samples.append(util)
            trace.append((replica.clock, util))
            peak_util = max(peak_util, util)
            if release_time == 0.0:
                utilisation_to_release.append(util)
                # §5.2 release condition: the replica is past its peak (genuine
                # ramp-down), no trajectories are waiting, and the remaining
                # in-flight count is below the roofline batch bound so that a
                # destination replica can absorb it at negligible latency cost.
                # Requiring half the batch to have completed guards against
                # declaring a barely-started (small) batch "long tail".
                ramp_down = (
                    replica.num_queued == 0
                    and util <= prev_util + 1e-12
                    and util < peak_util - 1e-9
                    and replica.num_sequences < batch_bound
                    and replica.num_sequences > 0
                    and len(completions) >= batch_size // 2
                )
                if ramp_down:
                    release_time = replica.clock
                    tokens_at_release = replica.stats.tokens_generated
            prev_util = util
            next_sample = replica.clock + sample_interval

    full_duration = replica.clock
    if release_time == 0.0:
        release_time = full_duration
        tokens_at_release = replica.stats.tokens_generated
    return BatchCycleProfile(
        batch_size=batch_size,
        total_tokens=replica.stats.tokens_generated,
        full_duration=full_duration,
        release_time=release_time,
        tokens_at_release=tokens_at_release,
        mean_completion=float(np.mean(completions)) if completions else 0.0,
        mean_kvcache_utilization=float(np.mean(utilisation_samples)) if utilisation_samples else 0.0,
        mean_kvcache_utilization_to_release=(
            float(np.mean(utilisation_to_release)) if utilisation_to_release else 0.0
        ),
        utilization_trace=trace,
    )


@dataclass
class KVCacheLifecycle:
    """Fig 9 lifecycle phases extracted from a batch-cycle utilisation trace.

    The trace of a healthy replica shows three phases: a *ramp* while
    admissions fill the cache, a *plateau* near peak utilisation while a
    waiting queue keeps freed space occupied, and a *drain* once the queue
    empties and the long tail shrinks the live batch.
    """

    peak_utilization: float
    #: Time to first reach 95% of peak utilisation (end of the ramp).
    ramp_seconds: float
    #: Fraction of the cycle spent at >= 90% of peak utilisation.
    plateau_fraction: float
    #: Time from the last >= 90%-of-peak sample to the end of the cycle.
    drain_seconds: float

    @classmethod
    def from_profile(cls, profile: BatchCycleProfile) -> "KVCacheLifecycle":
        trace = profile.utilization_trace
        if not trace or profile.full_duration <= 0:
            return cls(0.0, 0.0, 0.0, 0.0)
        peak = max(util for _, util in trace)
        if peak <= 0:
            return cls(0.0, 0.0, 0.0, profile.full_duration)
        ramp_end = next(t for t, util in trace if util >= 0.95 * peak)
        high = [t for t, util in trace if util >= 0.90 * peak]
        return cls(
            peak_utilization=float(peak),
            ramp_seconds=float(ramp_end),
            plateau_fraction=float(len(high) / len(trace)),
            drain_seconds=float(max(0.0, profile.full_duration - max(high))),
        )


@dataclass
class ContinuousRateProfile:
    """Sustained rate of one replica under continuous prompt replenishment."""

    tokens_per_second: float
    mean_inflight: float
    mean_inflight_context: float
    mean_decode_batch: float


def continuous_replica_rate(
    config: SystemConfig,
    horizon: float = 600.0,
    seed: int = 0,
) -> ContinuousRateProfile:
    """Simulate one replica with continuous top-up (AReaL-style generation)."""
    task = config.task()
    replica_config = RolloutReplicaConfig(
        model=config.model(),
        tensor_parallel=config.rollout_tensor_parallel,
        gpu=config.gpu,
        max_concurrency=config.max_concurrency_per_replica,
    )
    dataset = PromptDataset(task, seed=seed)
    factory = TrajectoryFactory(task, seed=seed + 1)
    rng = np.random.default_rng(seed + 2)
    replica = _make_replica(config, replica_config)
    target = replica_prompt_batch(config, task, replica_config)

    inflight_samples: List[int] = []
    context_samples: List[float] = []
    batch_samples: List[int] = []
    # Warm up for 20% of the horizon, then measure.
    warmup = horizon * 0.2
    tokens_at_warmup = 0

    while replica.clock < horizon:
        deficit = target - replica.num_sequences
        if deficit > 0:
            prompts = dataset.sample_batch(max(1, -(-deficit // task.group_size)), rng)[:deficit]
            replica.add_sequences(factory.make(prompts))
        delta = replica.next_event_in()
        if delta is None:
            break
        replica.advance(min(delta, horizon - replica.clock))
        if replica.clock >= warmup:
            if tokens_at_warmup == 0:
                tokens_at_warmup = replica.stats.tokens_generated
            inflight_samples.append(replica.num_decoding + replica.num_env_waiting)
            batch_samples.append(replica.num_decoding)
            contexts = [s.context_tokens for s in replica.sequences()
                        if s.status in ("decoding", "env_wait")]
            if contexts:
                context_samples.append(float(np.mean(contexts)))

    elapsed = max(1e-9, replica.clock - warmup)
    tokens = replica.stats.tokens_generated - tokens_at_warmup
    return ContinuousRateProfile(
        tokens_per_second=tokens / elapsed,
        mean_inflight=float(np.mean(inflight_samples)) if inflight_samples else 0.0,
        mean_inflight_context=float(np.mean(context_samples)) if context_samples else 0.0,
        mean_decode_batch=float(np.mean(batch_samples)) if batch_samples else 0.0,
    )

"""Failure injection and recovery modelling (§3.3, §4.3, Fig 15).

Laminar isolates faults: a rollout-machine failure neither halts the trainer
nor loses in-progress trajectories (they live in the partial response pool and
are redirected to healthy replicas of the same weight version), and relay
failures are repaired by rebuilding the broadcast chain in O(1).  This module
describes injected failures and the recovery cost model the Laminar simulator
applies.

Failure kinds are registered in a module-level registry
(:func:`register_failure_kind`), mirroring the systems registry: constructing
a :class:`FailureEvent` with an unknown kind raises with the registered list,
and :meth:`RecoveryModel.recovery_time` dispatches over the same names.  The
adversarial schedules in :mod:`repro.faults` extend the original crash kinds
with degradation kinds — spot preemption (with a warning lead), stragglers
and network degradation — that the Laminar runtime handles without treating
them as machine losses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

# --------------------------------------------------------------------------- kind registry
_KINDS: Dict[str, str] = {}


def register_failure_kind(name: str, description: str = "") -> str:
    """Register a failure kind name; returns it so class attributes read clean.

    Re-registering an existing name with a new description raises, matching
    the systems-registry duplicate rule.
    """
    if not name:
        raise ValueError("failure kind name must be non-empty")
    if name in _KINDS:
        raise ValueError(f"failure kind {name!r} is already registered")
    _KINDS[name] = description
    return name


def known_failure_kinds() -> List[str]:
    """Registered kind names, in registration order."""
    return list(_KINDS)


def failure_kind_description(name: str) -> str:
    try:
        return _KINDS[name]
    except KeyError:
        known = ", ".join(known_failure_kinds()) or "(none)"
        raise ValueError(
            f"unknown failure kind {name!r}; registered kinds: {known}"
        ) from None


class FailureKind:
    """Registered failure kinds.

    The first three are the paper's crash kinds (Fig 15); the rest are the
    adversarial-infrastructure kinds added by :mod:`repro.faults`.
    """

    ROLLOUT_MACHINE = register_failure_kind(
        "rollout_machine", "rollout machine crash; replicas lost until recovery")
    RELAY = register_failure_kind(
        "relay", "relay node loss; broadcast chain rebuilt in O(1)")
    TRAINER = register_failure_kind(
        "trainer", "trainer worker loss; restore from checkpoint")
    SPOT_WARNING = register_failure_kind(
        "spot_warning", "spot preemption notice; machine drains gracefully")
    SPOT_PREEMPTION = register_failure_kind(
        "spot_preemption", "spot instance reclaimed; replacement provisioned")
    STRAGGLER = register_failure_kind(
        "straggler", "machine slows down by `factor` (decode + env latency)")
    STRAGGLER_CLEAR = register_failure_kind(
        "straggler_clear", "straggling machine returns to full speed")
    NETWORK_DEGRADED = register_failure_kind(
        "network_degraded", "inter-machine bandwidth dips to `factor` of nominal")
    NETWORK_RESTORED = register_failure_kind(
        "network_restored", "inter-machine bandwidth back to nominal")
    LINK_FLAP = register_failure_kind(
        "link_flap", "machine link flaps for `duration`; syncs retry with backoff")


#: Kinds that remove a machine from service (crash-class, not degradation).
CRASH_KINDS = frozenset(
    {FailureKind.ROLLOUT_MACHINE, FailureKind.RELAY, FailureKind.TRAINER,
     FailureKind.SPOT_PREEMPTION}
)


@dataclass(frozen=True)
class FailureEvent:
    """One injected failure or degradation event."""

    time: float
    kind: str
    #: Machine (rollout/relay failures) or trainer-worker index; -1 = global.
    target: int
    #: Whether a same-GPU re-initialisation succeeds (§3.3 first attempt).
    reinit_succeeds: bool = False
    #: Degradation magnitude: slowdown multiplier for stragglers (> 1 is
    #: slower), bandwidth multiplier for network dips (< 1 is slower).
    factor: float = 1.0
    #: Length of the degradation window in seconds (0 = persistent / n/a).
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be non-negative")
        if self.kind not in _KINDS:
            known = ", ".join(known_failure_kinds()) or "(none)"
            raise ValueError(
                f"unknown failure kind {self.kind!r}; registered kinds: {known}"
            )
        if self.factor <= 0:
            raise ValueError("failure factor must be positive")
        if self.duration < 0:
            raise ValueError("failure duration must be non-negative")


@dataclass(frozen=True)
class RecoveryModel:
    """Recovery latencies (§3.3, §8.5)."""

    #: Heartbeat interval / detection latency for rollout machines.
    heartbeat_interval: float = 5.0
    #: Re-initialising a replica on the same GPUs (first recovery attempt).
    reinit_time: float = 30.0
    #: Allocating a replacement machine and bringing up rollouts + relay on it.
    #: §8.5 measures ~252 s end-to-end including detection and weight sync.
    machine_replacement_time: float = 240.0
    #: Rebuilding the relay broadcast chain around a failed node (§4.3).
    chain_rebuild_time: float = 0.5
    #: Restoring the trainer from its latest checkpoint.
    trainer_restore_time: float = 120.0
    #: Replacing a preempted spot machine: the warning already drained it, so
    #: there is no detection latency or re-init attempt, only provisioning.
    spot_replacement_time: float = 180.0

    def rollout_recovery_time(self, event: FailureEvent) -> float:
        """Wall-clock from failure to the replicas being back in service."""
        detection = self.heartbeat_interval
        if event.reinit_succeeds:
            return detection + self.reinit_time
        return detection + self.reinit_time + self.machine_replacement_time

    def relay_recovery_time(self) -> float:
        return self.chain_rebuild_time

    def trainer_recovery_time(self) -> float:
        return self.trainer_restore_time

    def spot_recovery_time(self) -> float:
        return self.spot_replacement_time

    def recovery_time(self, event: FailureEvent) -> float:
        """Recovery latency for any registered kind.

        Degradation kinds recover instantly once their window ends (the
        schedule carries the clearing event), so they cost zero here; unknown
        kinds raise with the registered list, matching the registry idiom.
        """
        if event.kind not in _KINDS:
            known = ", ".join(known_failure_kinds()) or "(none)"
            raise ValueError(
                f"unknown failure kind {event.kind!r}; registered kinds: {known}"
            )
        if event.kind == FailureKind.ROLLOUT_MACHINE:
            return self.rollout_recovery_time(event)
        if event.kind == FailureKind.RELAY:
            return self.relay_recovery_time()
        if event.kind == FailureKind.TRAINER:
            return self.trainer_recovery_time()
        if event.kind == FailureKind.SPOT_PREEMPTION:
            return self.spot_recovery_time()
        return 0.0


@dataclass
class FailureInjector:
    """Holds the failure schedule and tracks which events have fired."""

    events: List[FailureEvent] = field(default_factory=list)
    recovery: RecoveryModel = field(default_factory=RecoveryModel)
    _fired: List[FailureEvent] = field(default_factory=list, init=False)

    def add(self, event: FailureEvent) -> None:
        self.events.append(event)
        self.events.sort(key=lambda e: e.time)

    def due(self, now: float) -> List[FailureEvent]:
        """Pop every failure whose time has arrived."""
        fired = [e for e in self.events if e.time <= now]
        self.events = [e for e in self.events if e.time > now]
        self._fired.extend(fired)
        return fired

    @property
    def fired(self) -> List[FailureEvent]:
        return list(self._fired)

    def next_failure_time(self) -> Optional[float]:
        return self.events[0].time if self.events else None


@dataclass
class RecoveryRecord:
    """Outcome of handling one failure, for reporting (Fig 15)."""

    event: FailureEvent
    detected_at: float
    recovered_at: float
    trajectories_redirected: int = 0
    trajectories_lost: int = 0

    @property
    def downtime(self) -> float:
        return self.recovered_at - self.event.time

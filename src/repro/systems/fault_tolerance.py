"""Failure injection and recovery modelling (§3.3, §4.3, Fig 15).

Laminar isolates faults: a rollout-machine failure neither halts the trainer
nor loses in-progress trajectories (they live in the partial response pool and
are redirected to healthy replicas of the same weight version), and relay
failures are repaired by rebuilding the broadcast chain in O(1).  This module
describes injected failures and the recovery cost model the Laminar simulator
applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


class FailureKind:
    ROLLOUT_MACHINE = "rollout_machine"
    RELAY = "relay"
    TRAINER = "trainer"


@dataclass(frozen=True)
class FailureEvent:
    """One injected failure."""

    time: float
    kind: str
    #: Machine (rollout/relay failures) or trainer-worker index.
    target: int
    #: Whether a same-GPU re-initialisation succeeds (§3.3 first attempt).
    reinit_succeeds: bool = False

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be non-negative")
        if self.kind not in (FailureKind.ROLLOUT_MACHINE, FailureKind.RELAY, FailureKind.TRAINER):
            raise ValueError(f"unknown failure kind {self.kind!r}")


@dataclass(frozen=True)
class RecoveryModel:
    """Recovery latencies (§3.3, §8.5)."""

    #: Heartbeat interval / detection latency for rollout machines.
    heartbeat_interval: float = 5.0
    #: Re-initialising a replica on the same GPUs (first recovery attempt).
    reinit_time: float = 30.0
    #: Allocating a replacement machine and bringing up rollouts + relay on it.
    #: §8.5 measures ~252 s end-to-end including detection and weight sync.
    machine_replacement_time: float = 240.0
    #: Rebuilding the relay broadcast chain around a failed node (§4.3).
    chain_rebuild_time: float = 0.5
    #: Restoring the trainer from its latest checkpoint.
    trainer_restore_time: float = 120.0

    def rollout_recovery_time(self, event: FailureEvent) -> float:
        """Wall-clock from failure to the replicas being back in service."""
        detection = self.heartbeat_interval
        if event.reinit_succeeds:
            return detection + self.reinit_time
        return detection + self.reinit_time + self.machine_replacement_time

    def relay_recovery_time(self) -> float:
        return self.chain_rebuild_time

    def trainer_recovery_time(self) -> float:
        return self.trainer_restore_time


@dataclass
class FailureInjector:
    """Holds the failure schedule and tracks which events have fired."""

    events: List[FailureEvent] = field(default_factory=list)
    recovery: RecoveryModel = field(default_factory=RecoveryModel)
    _fired: List[FailureEvent] = field(default_factory=list, init=False)

    def add(self, event: FailureEvent) -> None:
        self.events.append(event)
        self.events.sort(key=lambda e: e.time)

    def due(self, now: float) -> List[FailureEvent]:
        """Pop every failure whose time has arrived."""
        fired = [e for e in self.events if e.time <= now]
        self.events = [e for e in self.events if e.time > now]
        self._fired.extend(fired)
        return fired

    @property
    def fired(self) -> List[FailureEvent]:
        return list(self._fired)

    def next_failure_time(self) -> Optional[float]:
        return self.events[0].time if self.events else None


@dataclass
class RecoveryRecord:
    """Outcome of handling one failure, for reporting (Fig 15)."""

    event: FailureEvent
    detected_at: float
    recovered_at: float
    trajectories_redirected: int = 0
    trajectories_lost: int = 0

    @property
    def downtime(self) -> float:
        return self.recovered_at - self.event.time

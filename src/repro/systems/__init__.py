"""Unified system registry: every orchestration behind one protocol.

``repro.systems`` holds everything that *is* an orchestration or belongs to
one — the :class:`System` protocol and string-keyed registry (:mod:`.base`),
the seven registered orchestrations (Laminar, the four §8 baselines and the
composed variants), and Laminar's component library (relays, repack,
staleness tracking, fault tolerance, the broadcast cost model).  The shared
substrate they all run on lives one layer down in :mod:`repro.runtime`.

Registered systems::

    verl             synchronous, on-policy, colocated (Fig 3a)
    one_step         k=1 bounded-staleness pipeline (Fig 3b)
    stream_gen       streaming mini-batch consumption (Fig 3c)
    areal            partial rollout, unbounded staleness (Fig 3d)
    semi_sync        bounded-staleness barrier hybrid (registry variant)
    laminar          trajectory-level asynchronous RL (§3-§6)
    laminar_norepack Laminar with repack ablated (Fig 16 / Table 1)

Adding an orchestration is: subclass :class:`System`, implement ``build``
(a process body over timeouts and ``AllOf`` joins), decorate with
``@register`` — the benchmark registry, experiment drivers and examples all
resolve systems by name from here.
"""

from .base import (
    COLOCATED_SWITCH_OVERHEAD,
    System,
    SystemCapabilities,
    SystemRegistryError,
    available_systems,
    get_system_class,
    make_system,
    placement_system,
    register,
    register_system,
    system_capabilities,
    unregister_system,
)
from .broadcast_model import (
    BroadcastBreakdown,
    broadcast_breakdown,
    broadcast_latency,
    broadcast_with_flap,
    degraded_broadcast_series,
    figure18_series,
    optimal_broadcast_latency,
    optimal_chunks,
    rollout_wait_comparison,
    storage_vs_relay,
)
from .fault_tolerance import (
    CRASH_KINDS,
    FailureEvent,
    FailureInjector,
    FailureKind,
    RecoveryModel,
    RecoveryRecord,
    failure_kind_description,
    known_failure_kinds,
    register_failure_kind,
)
from .relay import PullRecord, RelayService, WeightPublication
from .repack import (
    RepackExecutor,
    RepackPlan,
    RepackStats,
    ReplicaSnapshot,
    best_fit_consolidation,
    group_by_version,
    plan_repack,
)
from .rollout_manager import RolloutManager
from .staleness import StalenessSample, StalenessTracker

# Importing the orchestration modules registers them.
from .verl import VerlSynchronous
from .one_step import OneStepStaleness
from .stream_gen import StreamGeneration
from .areal import PartialRollout
from .semi_sync import SemiSyncBarrier
from .laminar import LaminarNoRepack, LaminarRuntime, LaminarSystem

__all__ = [
    # protocol + registry
    "COLOCATED_SWITCH_OVERHEAD",
    "System",
    "SystemCapabilities",
    "SystemRegistryError",
    "available_systems",
    "get_system_class",
    "make_system",
    "placement_system",
    "register",
    "register_system",
    "system_capabilities",
    "unregister_system",
    # orchestrations
    "VerlSynchronous",
    "OneStepStaleness",
    "StreamGeneration",
    "PartialRollout",
    "SemiSyncBarrier",
    "LaminarSystem",
    "LaminarNoRepack",
    "LaminarRuntime",
    # Laminar component library
    "BroadcastBreakdown",
    "broadcast_breakdown",
    "broadcast_latency",
    "broadcast_with_flap",
    "degraded_broadcast_series",
    "figure18_series",
    "optimal_broadcast_latency",
    "optimal_chunks",
    "rollout_wait_comparison",
    "storage_vs_relay",
    "CRASH_KINDS",
    "FailureEvent",
    "FailureInjector",
    "FailureKind",
    "RecoveryModel",
    "RecoveryRecord",
    "failure_kind_description",
    "known_failure_kinds",
    "register_failure_kind",
    "PullRecord",
    "RelayService",
    "WeightPublication",
    "RepackExecutor",
    "RepackPlan",
    "RepackStats",
    "ReplicaSnapshot",
    "best_fit_consolidation",
    "group_by_version",
    "plan_repack",
    "RolloutManager",
    "StalenessSample",
    "StalenessTracker",
]

"""The ``System`` protocol and the string-keyed system registry.

Every orchestration in the reproduction — Laminar, the four §8 baselines and
any composed variant (repack ablation, bounded-staleness hybrids) — is a
:class:`System`: it consumes the shared, identically-seeded
:class:`~repro.runtime.workload.WorkloadBundle`, declares its
:class:`SystemCapabilities`, and expresses its orchestration as a single
:meth:`System.build` process on a fresh discrete-event
:class:`~repro.sim.engine.Environment`.  Measured differences between systems
therefore come only from orchestration (the paper's controlled comparison,
§8 "alleviating implementation bias").

Systems are registered by name (:func:`register_system`, usually via the
``@register`` decorator on the class) and resolved by the benchmark registry,
the experiment drivers and the examples through :func:`get_system_class` /
:func:`make_system` — adding a new orchestration is: subclass
:class:`System`, implement ``build``, register, done.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Dict, Generator, List, Optional, Sequence, Tuple, Type

from ..config import SystemConfig
from ..metrics.results import SystemRunResult
from ..rollout.generation import ReplicaGenerationState, SequenceState
from ..runtime.components import CompletionPipeline, GlobalWeightSync
from ..runtime.harness import CompletionObserver, GenerationOutcome, generation_barrier
from ..runtime.workload import WorkloadBundle
from ..sim.engine import Environment
from ..types import Trajectory

#: Engine switch overhead (offload weights / rebuild decode engine) paid twice
#: per iteration by colocated synchronous systems such as verl's HybridEngine.
COLOCATED_SWITCH_OVERHEAD = 4.0


@dataclass(frozen=True)
class SystemCapabilities:
    """Declared properties of one orchestration, consumed by the registry,
    the placement tables and the benchmark executors."""

    #: One-line description shown by ``repro-bench list --systems``.
    description: str = ""
    #: Rollouts generate continuously (no per-iteration barrier).
    continuous: bool = False
    #: Generation and training share the same GPUs (verl's HybridEngine).
    colocated: bool = False
    #: Weight distribution mechanism: "switch", "global" or "relay".
    weight_sync: str = "global"
    #: Staleness regime: "on_policy", "bounded" or "unbounded".
    staleness: str = "on_policy"
    #: The system runs the repack mechanism (§5).
    repack: bool = False
    #: The system tolerates injected failures (§3.3 fault model).
    fault_tolerant: bool = False
    #: Which system's Table 2 placements / Appendix A.2 tensor-parallel sizes
    #: this system reuses ("" = its own name has entries).
    placement_like: str = ""
    #: Default ``SystemConfig.staleness_bound`` for this system.
    default_staleness_bound: int = 0
    #: Default ``SystemConfig.max_concurrency_per_replica``.
    default_max_concurrency: int = 8192
    #: How the throughput benchmark evaluates this system:
    #: "simulate" (direct DES run), "laminar_cycle" (batch-cycle composition)
    #: or "areal_fixed_point" (continuous-rate fixed point).
    throughput_method: str = "simulate"
    #: Span kinds this orchestration guarantees to emit on every traced run
    #: (registry-integrity contract checked by the observability tests).
    trace_spans: Tuple[str, ...] = ()
    #: Graceful-degradation policy for straggling machines (repro.faults):
    #: "wait" tolerates the slowdown; "preempt_requeue" migrates the
    #: machine's in-flight work to healthy replicas and drains it.
    straggler_policy: str = "wait"
    #: Retry behaviour when a weight-sync path hits a degraded/flapping
    #: link: "none" (the sync simply takes longer) or "bounded_backoff"
    #: (capped exponential backoff, counted in the run's extras).
    sync_retry: str = "none"

    def summary(self) -> str:
        """Compact capability string for tables."""
        parts = [
            "continuous" if self.continuous else "batch-barrier",
            "colocated" if self.colocated else "disaggregated",
            f"sync={self.weight_sync}",
            f"staleness={self.staleness}",
        ]
        if self.repack:
            parts.append("repack")
        if self.fault_tolerant:
            parts.append("fault-tolerant")
        if self.straggler_policy != "wait":
            parts.append(f"stragglers={self.straggler_policy}")
        if self.sync_retry != "none":
            parts.append(f"sync-retry={self.sync_retry}")
        return ", ".join(parts)


class System(ABC):
    """Base class every registered orchestration implements.

    The protocol is three members: :attr:`name` (the registry key),
    :attr:`capabilities`, and :meth:`build`, which returns the process body
    orchestrating ``num_iterations`` RL iterations on the run's environment.
    The shared :meth:`run` driver owns the environment lifecycle, so the
    clock of every system is pure event time — timeouts and ``AllOf`` joins
    on one :class:`Environment`.
    """

    name: ClassVar[str] = "system"
    capabilities: ClassVar[SystemCapabilities] = SystemCapabilities()

    #: Continuous systems: stop admitting new prompts once buffered plus
    #: in-flight trajectories exceed this many global batches (keeps the
    #: trainer/rollout pipeline in balance, as an experience-buffer eviction
    #: policy would in production).
    run_ahead_batches: float = 3.0

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.workload = WorkloadBundle.from_config(config)
        self.model = self.workload.model
        self.task = self.workload.task
        self.dataset = self.workload.dataset
        self.factory = self.workload.factory
        self.environment = self.workload.environment
        self.rng = self.workload.rng
        self.trainer = self.workload.trainer
        self.buffer = self.workload.buffer
        self.replica_config = self.workload.replica_config
        self.decode_model = self.workload.decode_model
        self.pipeline = self._build_pipeline()
        self.weight_sync = self._build_weight_sync()
        self._next_replica_id = 0

    # ------------------------------------------------------------------ construction hooks
    def _build_pipeline(self) -> CompletionPipeline:
        """Completion pipeline factory (Laminar adds staleness tracking and
        the partial-response pool)."""
        return CompletionPipeline(environment=self.environment, buffer=self.buffer)

    def _build_weight_sync(self):
        """Weight-sync factory: the baselines' blocking GPU-direct collective
        by default; relay-based systems override."""
        return GlobalWeightSync.from_config(self.config, self.model)

    # ------------------------------------------------------------------ helpers
    def num_generation_replicas(self) -> int:
        return self.config.num_rollout_replicas()

    def make_replicas(self, count: int, weight_version: int) -> List[ReplicaGenerationState]:
        replicas = []
        for _ in range(count):
            replicas.append(self.workload.make_replica(self._next_replica_id, weight_version))
            self._next_replica_id += 1
        return replicas

    def run_ahead_budget(self, replicas: Sequence[ReplicaGenerationState],
                         per_replica_target: int) -> int:
        """Trajectories that may still be admitted under the run-ahead cap.

        The cap never starves the natural generation pipeline: every replica
        can always hold (a bit more than) its own per-replica target.
        """
        in_flight = sum(r.num_sequences for r in replicas)
        pipeline_floor = int(1.25 * len(replicas) * per_replica_target)
        cap = max(int(self.run_ahead_batches * self.config.global_batch_size),
                  pipeline_floor)
        return max(0, cap - in_flight - len(self.buffer))

    def sample_batch_states(self, weight_version: int) -> List[SequenceState]:
        """Sample one global batch worth of prompts and build sequence states."""
        prompts = self.dataset.sample_batch(self.config.num_prompts_per_batch, self.rng)
        return self.factory.make(prompts, weight_version=weight_version)

    def generate_batch_process(
        self,
        env: Environment,
        weight_version: int,
        origin: Optional[float] = None,
        on_complete: Optional[CompletionObserver] = None,
    ) -> Generator:
        """Sub-process: synchronous full-batch generation across fresh replicas.

        Sequences are distributed round-robin over the replicas; the ``AllOf``
        join completes when the slowest replica finishes (the global barrier
        of the synchronous and k-step-staleness designs).  With ``origin``
        set the replicas run as anchored drains whose wake-ups land at
        ``origin + local clock`` and whose completions stream to
        ``on_complete`` at their exact finish instants.

        This is the fleet-stepping hook for every barrier orchestration
        (verl, one_step, stream_gen, semi_sync): under the default
        ``repro.runtime.stepping_mode()`` the barrier runs as one fleet
        process instead of one engine process per replica, bit-identically.
        """
        states = self.sample_batch_states(weight_version)
        replicas = self.make_replicas(self.num_generation_replicas(), weight_version)
        buckets: List[List[SequenceState]] = [[] for _ in replicas]
        for index, state in enumerate(states):
            buckets[index % len(replicas)].append(state)
        for replica, bucket in zip(replicas, buckets):
            replica.add_sequences(bucket)
        outcome = yield from generation_barrier(env, replicas, origin, on_complete)
        return outcome

    def generate_full_batch(self, weight_version: int) -> GenerationOutcome:
        """Run one generation barrier on a private environment (tests, probes)."""
        env = Environment()
        process = env.process(
            self.generate_batch_process(env, weight_version),
            name=f"{self.name}-generation",
        )
        return env.run(until=process)

    def score_and_buffer(self, trajectories: Sequence[Trajectory], actor_version: int) -> None:
        self.pipeline.process(trajectories, actor_version)

    def global_sync_time(self) -> float:
        """GPU-direct global weight synchronization latency (NCCL-style)."""
        return self.weight_sync.sync_time()

    def record_batch_staleness(self, env: Environment, result: SystemRunResult,
                               batch) -> None:
        """Append the batch's staleness samples, mirroring them as a trace
        instant on the trainer track when a recorder is attached."""
        values = [exp.staleness for exp in batch]
        result.staleness_samples.extend(values)
        tracer = env.tracer
        if tracer.enabled and values:
            tracer.instant("trainer", "staleness", env.now,
                           args={"mean": sum(values) / len(values),
                                 "max": max(values), "batch": len(values)})

    def batch_tokens(self, trajectories: Sequence[Trajectory]) -> int:
        return sum(t.total_tokens for t in trajectories)

    def new_result(self) -> SystemRunResult:
        return SystemRunResult(
            system=self.name,
            model=self.config.model_size,
            task=self.config.task_type,
            total_gpus=self.config.total_gpus,
            trainer_gpus=self.config.trainer_gpus,
            rollout_gpus=self.config.rollout_gpus or self.config.trainer_gpus,
        )

    def run(self, num_iterations: Optional[int] = None) -> SystemRunResult:
        """Simulate ``num_iterations`` RL iterations on the event engine."""
        num_iterations = num_iterations or self.config.num_iterations
        result = self.new_result()
        env = Environment()
        main = env.process(
            self.build(env, result, num_iterations), name=f"{self.name}-main"
        )
        env.run(until=main)
        result.wall_clock = env.now
        return result

    # ------------------------------------------------------------------ interface
    @abstractmethod
    def build(self, env: Environment, result: SystemRunResult,
              num_iterations: int) -> Generator:
        """Process body simulating ``num_iterations`` RL iterations."""


# --------------------------------------------------------------------------- registry
_REGISTRY: Dict[str, Type[System]] = {}


class SystemRegistryError(KeyError):
    """Raised for duplicate registrations and unknown system lookups."""


def register_system(cls: Type[System], replace_existing: bool = False) -> Type[System]:
    """Register a :class:`System` subclass under its ``name``.

    Duplicate names raise :class:`SystemRegistryError` unless
    ``replace_existing`` is set (tests); the class itself is returned so the
    function doubles as a decorator via :func:`register`.
    """
    name = cls.name
    if not name or name == System.name:
        raise SystemRegistryError(f"system class {cls.__name__} needs a unique name")
    if name in _REGISTRY and not replace_existing:
        raise SystemRegistryError(
            f"system {name!r} is already registered (by "
            f"{_REGISTRY[name].__name__}); pass replace_existing=True to override"
        )
    _REGISTRY[name] = cls
    return cls


def register(cls: Type[System]) -> Type[System]:
    """Class decorator: ``@register`` above a :class:`System` subclass."""
    return register_system(cls)


def unregister_system(name: str) -> None:
    """Remove a registration (tests only)."""
    _REGISTRY.pop(name, None)


def available_systems() -> List[str]:
    """Registered system names, in registration order."""
    return list(_REGISTRY)


def get_system_class(name: str) -> Type[System]:
    """Resolve a system name to its class, or raise listing the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_systems()) or "(none)"
        raise SystemRegistryError(
            f"unknown system {name!r}; registered systems: {known}"
        ) from None


def make_system(config: SystemConfig, **kwargs) -> System:
    """Instantiate the registered system matching ``config.system``."""
    return get_system_class(config.system)(config, **kwargs)


def system_capabilities(name: str) -> SystemCapabilities:
    return get_system_class(name).capabilities


def placement_system(name: str) -> str:
    """The system whose Table 2 placements ``name`` uses (itself by default)."""
    cls = get_system_class(name)
    return cls.capabilities.placement_like or cls.name

"""Rollout manager: monitoring, repack triggering and failover (§3.1, §5.1).

The rollout manager runs on a CPU machine, isolated from GPU failures.  It
periodically collects progress metrics from every rollout replica, groups them
by weight version, runs the Best-Fit consolidation algorithm inside each
group, and executes the resulting plans.  It also reacts to machine failures:
the in-progress trajectories of a failed machine (safe in the partial response
pool) are redirected to healthy replicas holding the same weight version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..data.partial_response_pool import PartialResponsePool
from ..rollout.generation import ReplicaGenerationState, SequenceState
from .fault_tolerance import FailureEvent, RecoveryModel, RecoveryRecord
from .repack import (
    RepackExecutor,
    RepackPlan,
    ReplicaSnapshot,
    RepackStats,
    plan_repack,
)


@dataclass
class RolloutManager:
    """Control-plane coordinator for all rollout replicas."""

    c_max: float = 0.99
    batch_bound: int = 512
    repack_interval: float = 5.0
    recovery: RecoveryModel = field(default_factory=RecoveryModel)
    executor: RepackExecutor = field(default_factory=RepackExecutor)
    last_check_time: float = 0.0
    recovery_records: List[RecoveryRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ monitoring
    def collect_snapshots(
        self, replicas: Dict[int, ReplicaGenerationState]
    ) -> List[ReplicaSnapshot]:
        """§5.1 step 1: gather per-replica progress metrics."""
        snapshots: List[ReplicaSnapshot] = []
        for replica_id, replica in replicas.items():
            prev = replica.prev_utilization
            current = replica.observe_utilization()
            snapshots.append(
                ReplicaSnapshot(
                    replica_id=replica_id,
                    weight_version=replica.weight_version,
                    kvcache_used=current,
                    kvcache_prev=prev,
                    num_requests=replica.num_sequences,
                    has_waiting=replica.num_queued > 0,
                )
            )
        return snapshots

    def due_for_check(self, now: float) -> bool:
        return now - self.last_check_time >= self.repack_interval - 1e-9

    # ------------------------------------------------------------------ repack
    def maybe_repack(
        self,
        replicas: Dict[int, ReplicaGenerationState],
        now: float,
        force: bool = False,
    ) -> Tuple[List[int], float]:
        """Run the repack check (periodic, or forced after a trainer update).

        Returns ``(released_replica_ids, overhead_seconds)``.
        """
        if not force and not self.due_for_check(now):
            return [], 0.0
        self.last_check_time = now
        snapshots = self.collect_snapshots(replicas)
        plans = plan_repack(snapshots, self.c_max, self.batch_bound)
        released: List[int] = []
        overhead = 0.0
        for plan in plans.values():
            overhead += self.executor.execute(plan, replicas)
            released.extend(plan.sources)
        return released, overhead

    @property
    def repack_stats(self) -> RepackStats:
        return self.executor.stats

    # ------------------------------------------------------------------ failover
    def handle_machine_failure(
        self,
        event: FailureEvent,
        failed_replica_ids: Sequence[int],
        replicas: Dict[int, ReplicaGenerationState],
        partial_pool: Optional[PartialResponsePool],
        now: float,
    ) -> RecoveryRecord:
        """Redirect the failed machine's in-flight work to healthy replicas.

        In-progress trajectories are recovered from the partial response pool
        (their streamed tokens are intact) and handed to healthy replicas with
        the same weight version; if none exists, they are re-queued on the
        least-loaded healthy replica (which re-prefixes them with its version,
        equivalent to waiting for a replacement machine but simpler to model).
        """
        detected_at = now + self.recovery.heartbeat_interval
        orphans: List[SequenceState] = []
        for replica_id in failed_replica_ids:
            replica = replicas.pop(replica_id, None)
            if replica is None:
                continue
            states = replica.remove_all()
            orphans.extend(states)
        redirected = 0
        lost = 0
        healthy = list(replicas.values())
        for state in orphans:
            state.needs_reprefill = True
            if partial_pool is not None and state.trajectory.traj_id in partial_pool:
                partial_pool.migrate(state.trajectory.traj_id, -1)
            target = self._pick_failover_target(healthy, state)
            if target is None:
                lost += 1
                if partial_pool is not None:
                    partial_pool.discard(state.trajectory.traj_id)
                continue
            target.add_sequences([state])
            if partial_pool is not None and state.trajectory.traj_id in partial_pool:
                partial_pool.migrate(state.trajectory.traj_id, target.replica_id)
            redirected += 1
        record = RecoveryRecord(
            event=event,
            detected_at=detected_at,
            recovered_at=event.time + self.recovery.rollout_recovery_time(event),
            trajectories_redirected=redirected,
            trajectories_lost=lost,
        )
        self.recovery_records.append(record)
        return record

    @staticmethod
    def _pick_failover_target(
        healthy: List[ReplicaGenerationState], state: SequenceState
    ) -> Optional[ReplicaGenerationState]:
        if not healthy:
            return None
        version = min(state.trajectory.versions_used)
        same_version = [r for r in healthy if r.weight_version == version]
        pool = same_version or healthy
        return min(pool, key=lambda r: r.num_sequences)

"""Stream-generation baseline (Fig 3c).

Like the one-step pipeline, actor and rollouts are disaggregated, but the
actor starts training on the *current* batch's early mini-batches (built from
the trajectories that complete first) while the long-tail trajectories of the
same batch are still being generated.  The final mini-batch still waits for
the very slowest trajectory, and the global weight synchronization still
couples every rollout at the iteration boundary.

The mini-batch pipeline is expressed as events, not as a precomputed
recurrence: the anchored replica drains stream every trajectory completion at
its exact finish instant, and the streaming-trainer process wakes on those
completion events, runs each optimizer step as soon as its mini-batch's data
is ready (and the previous step has finished), and ends the iteration with
the global-sync wait.  The iteration boundary is the ``AllOf`` join of the
generation barrier and the trainer process.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, Generator, List, Tuple

from ..metrics.results import StageBreakdown, SystemRunResult
from ..runtime.harness import EventBox
from ..sim.engine import Environment
from ..types import Trajectory
from .base import System, SystemCapabilities, register


@register
class StreamGeneration(System):
    """Streaming mini-batch consumption with a global sync per iteration."""

    name = "stream_gen"
    capabilities = SystemCapabilities(
        description="stream generation: train on early mini-batches while the "
                    "same batch's long tail is still generating",
        weight_sync="global",
        staleness="bounded",
        default_staleness_bound=1,
        default_max_concurrency=8192,
        trace_spans=("iteration", "generation", "training", "weight_sync"),
    )

    def build(self, env: Environment, result: SystemRunResult,
              num_iterations: int) -> Generator:
        tracer = env.tracer
        sync_time = self.global_sync_time()
        num_minibatches = self.config.num_minibatches
        minibatch_trajs = self.config.global_batch_size // num_minibatches

        for _ in range(num_iterations):
            start = env.now
            # Completion stream: ``(finish_time, replica_pos, arrival_idx,
            # tokens)`` rows, delivered at the exact finish instants and kept
            # sorted incrementally.  The tuple order reproduces the stable
            # completion-time sort of the replica-major trajectory list.
            arrived: List[Tuple[float, int, int, int]] = []
            counters: Dict[int, int] = {}
            data_box = EventBox(env)

            def on_complete(pos: int, fresh: List[Trajectory],
                            arrived=arrived, counters=counters,
                            data_box=data_box) -> None:
                for trajectory in fresh:
                    index = counters.get(pos, 0)
                    counters[pos] = index + 1
                    insort(
                        arrived,
                        (trajectory.finish_time, pos, index, trajectory.total_tokens),
                    )
                data_box.notify()

            generation = env.process(
                self._generation(env, start, on_complete),
                name=f"{self.name}-generation",
            )
            trainer = env.process(
                self._stream_trainer(env, start, arrived, data_box,
                                     num_minibatches, minibatch_trajs, sync_time),
                name=f"{self.name}-trainer",
            )
            yield env.all_of([generation, trainer])

            outcome = generation.value
            total_train_time = trainer.value
            self.score_and_buffer(outcome.trajectories, self.trainer.weight_version)
            batch = self.buffer.sample(self.config.global_batch_size)
            record = self.trainer.record_iteration(batch, start, env.now)

            result.iterations.append(record)
            result.breakdowns.append(
                StageBreakdown(
                    generation_time=outcome.duration,
                    training_time=total_train_time,
                    weight_sync_time=sync_time,
                    bubble_time=outcome.bubble_time,
                )
            )
            self.record_batch_staleness(env, result, batch)
            if tracer.enabled:
                tracer.span("rollout", "generation", start, start + outcome.duration,
                            args={"tokens": outcome.tokens_generated})
                tracer.span("trainer", "iteration", start, env.now,
                            args={"iteration": len(result.iterations)})
        result.extras["global_sync_time"] = sync_time

    # ------------------------------------------------------------------ stages
    def _generation(self, env: Environment, origin: float, on_complete) -> Generator:
        outcome = yield from self.generate_batch_process(
            env, self.trainer.weight_version, origin=origin, on_complete=on_complete
        )
        return outcome

    def _stream_trainer(
        self,
        env: Environment,
        origin: float,
        arrived: List[Tuple[float, int, int, int]],
        data_box: EventBox,
        num_minibatches: int,
        minibatch_trajs: int,
        sync_time: float,
    ) -> Generator:
        """Process body: consume mini-batches as their data becomes ready.

        The trainer's local cursor tracks the end of the running optimizer
        step; each step starts at ``max(cursor, data ready)`` and the wake-up
        lands at ``origin + cursor`` exactly (anchored, like the drains).
        Returns the total optimizer-step time of the iteration.
        """
        tracer = env.tracer
        expected = self.config.global_batch_size
        cursor = 0.0
        total_train_time = 0.0
        for j in range(num_minibatches):
            needed = min(expected, (j + 1) * minibatch_trajs)
            while len(arrived) < needed:
                yield data_box.wait()
            data_ready = arrived[needed - 1][0]
            mb_tokens = sum(
                row[3] for row in arrived[j * minibatch_trajs:(j + 1) * minibatch_trajs]
            )
            mb_time = self.trainer.minibatch_time(mb_tokens)
            mb_start = max(cursor, data_ready)
            cursor = mb_start + mb_time
            total_train_time += mb_time
            if tracer.enabled:
                tracer.span("trainer", "training", origin + mb_start,
                            origin + cursor,
                            args={"minibatch": j, "tokens": mb_tokens})
            yield env.timeout_until(origin + cursor)
        # Iteration boundary: the blocking global weight synchronization.
        if tracer.enabled:
            tracer.span("sync", "weight_sync", origin + cursor,
                        origin + (cursor + sync_time))
        yield env.timeout_until(origin + (cursor + sync_time))
        return total_train_time

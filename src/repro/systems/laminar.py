"""Laminar: trajectory-level asynchronous RL post-training (§3-§6).

This module is the whole Laminar orchestration — the *policy*
(:class:`LaminarSystem`: placement, refill, failover, repack accounting) and
the *mechanism* (:class:`LaminarRuntime`: the discrete-event processes) that
previous revisions split across ``core/laminar.py`` and
``runtime/laminar_runtime.py``.  The runtime expresses the control flow as
four kinds of processes on one environment:

* one **replica driver** per rollout replica
  (:func:`~repro.runtime.harness.replica_driver`): sleeps until the replica's
  own next internal event, pulls the newest weights from the colocated relay
  and refills with fresh prompts whenever the replica goes idle;
* a **trainer process**: waits for the experience buffer to hold a global
  batch, computes for the exact iteration time, publishes the new weights to
  the master relay, and triggers the post-update repack (§5.1);
* a **rollout-manager process**: the periodic repack check and the KVCache
  utilisation observers (Fig 9), on the configured check interval;
* a **failure process** plus one **recovery process** per outage (§3.3):
  failures land at their exact injected timestamps; a trainer failure
  interrupts the trainer process with the checkpoint-restore time as the
  interrupt cause.

Repack pulls and stall injections mutate replicas under their sleeping
drivers; the runtime interrupts the affected drivers
(:meth:`Process.interrupt`) so they recompute their next event.  The repack
path broadcasts a ``touch`` to *every* driver (sources were emptied,
destinations grew, and the shared migration stall moved all the clocks) —
that is affordable because the engine's next-event reductions are cached
against its per-replica mutation counter, so drivers whose replica was not
actually mutated re-derive their event in O(1) instead of re-scanning their
decode batch.

Simulated time jumps from event to event (trajectory completions, trainer
updates, repack checks, failures), so trainer/failure/repack timestamps are
exact rather than aligned to simulation rounds.

Under the default fleet stepping mode (:mod:`repro.runtime.fleet`), the
per-replica drivers above are a *semantic* description: ``ReplicaFleet``
runs them all from one ``FleetStepper`` process whose call sequence per
replica is bit-identical to the dedicated-driver mode.  ``touch`` /
``notify_refill`` / retirement (``replica()`` returning ``None``) are the
hooks both modes share, so repack pulls, refills and failovers need no
mode-specific code here.

:class:`LaminarNoRepack` is the registered repack ablation (Fig 16 /
Table 1): the same system with the repack mechanism disabled, as a composable
registry variant rather than a post-construction hack.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from typing import Dict, Generator, List, Optional

import numpy as np

from ..config import SystemConfig
from ..data.partial_response_pool import PartialResponsePool
from ..metrics.results import StageBreakdown, SystemRunResult
from ..metrics.timeline import EventCounterSeries, TimeSeries
from ..rollout.generation import ReplicaGenerationState
from ..runtime.components import CompletionPipeline, RelayWeightSync
from ..runtime.harness import ReplicaFleet, _EPS
from ..sim.cluster import GPUS_PER_MACHINE
from ..sim.engine import Environment, Interrupt
from ..types import Trajectory
from .base import System, SystemCapabilities, register
from .fault_tolerance import FailureEvent, FailureInjector, FailureKind, RecoveryModel
from .rollout_manager import RolloutManager
from .staleness import StalenessTracker


@register
class LaminarSystem(System):
    """End-to-end simulator of the Laminar architecture."""

    name = "laminar"
    capabilities = SystemCapabilities(
        description="Laminar: trajectory-level asynchronous RL with relay "
                    "weight sync, repack and fault isolation",
        continuous=True,
        weight_sync="relay",
        staleness="unbounded",
        repack=True,
        fault_tolerant=True,
        default_staleness_bound=0,
        default_max_concurrency=1024,
        throughput_method="laminar_cycle",
        trace_spans=("iteration", "training", "weight_sync", "weight_pull"),
        straggler_policy="preempt_requeue",
        sync_retry="bounded_backoff",
    )

    #: Safety cap on simulated time (seconds).
    max_sim_time: float = 2.0e6

    #: Straggler slowdown factor at/above which the graceful-degradation
    #: policy preempts the machine's in-flight work and requeues it on
    #: healthy replicas instead of waiting the slowdown out (repro.faults).
    STRAGGLER_PREEMPT_FACTOR: float = 2.0

    def __init__(
        self,
        config: SystemConfig,
        failure_injector: Optional[FailureInjector] = None,
        recovery: Optional[RecoveryModel] = None,
    ) -> None:
        if config.rollout_gpus <= 0:
            raise ValueError("Laminar requires a disaggregated placement (rollout_gpus > 0)")
        super().__init__(config)
        self.relay = self.weight_sync.relay
        self.recovery = recovery or RecoveryModel()
        self.failures = failure_injector or FailureInjector(recovery=self.recovery)
        self.failures.recovery = self.recovery

        # Rollout machines and replicas.
        self.num_rollout_machines = max(1, config.rollout_gpus // GPUS_PER_MACHINE)
        self.replicas: Dict[int, ReplicaGenerationState] = {}
        self.replica_machine: Dict[int, int] = {}
        total_replicas = config.num_rollout_replicas()
        for machine in range(self.num_rollout_machines):
            for _ in range(self._replicas_per_machine()):
                if len(self.replicas) >= total_replicas:
                    break
                self._create_replica(machine_id=machine, weight_version=0)

        batch_bound = self.decode_model.batch_bound_for_latency_slack(
            context_length=int(self.task.length_dist.mean()) + 512, slack=2.0
        )
        self.manager = RolloutManager(
            c_max=self.replica_config.kvcache_config().c_max,
            batch_bound=max(8, batch_bound),
            repack_interval=config.repack_interval,
            recovery=self.recovery,
        )
        if not config.repack_enabled:
            self._disable_repack()
        self._per_replica_batch = self._compute_per_replica_batch()
        # Observability.
        self.generation_tokens = EventCounterSeries(name="generation_tokens")
        self.training_tokens = EventCounterSeries(name="training_tokens")
        self.kvcache_series: Dict[int, TimeSeries] = {}
        self._failure_happened = False
        self._result: Optional[SystemRunResult] = None
        # Adversarial-infrastructure state (repro.faults).
        self.straggling_machines: Dict[int, float] = {}
        self.draining_machines: set[int] = set()
        self.stragglers_handled = 0
        self.straggler_requeues = 0
        self.preemption_warnings = 0
        self.spot_preemptions = 0
        self.network_events = 0

    # ------------------------------------------------------------------ construction hooks
    def _build_pipeline(self) -> CompletionPipeline:
        self.partial_pool = PartialResponsePool()
        self.staleness = StalenessTracker()
        return CompletionPipeline(
            environment=self.environment,
            buffer=self.buffer,
            staleness=self.staleness,
            partial_pool=self.partial_pool,
        )

    def _build_weight_sync(self) -> RelayWeightSync:
        return RelayWeightSync.from_config(self.config, self.model)

    # ------------------------------------------------------------------ setup helpers
    def _disable_repack(self) -> None:
        """Turn off both repack triggers and the (now never-paid) overhead."""
        self.manager.repack_interval = float("inf")
        self.manager.batch_bound = 1
        self.manager.executor.plan_overhead = 0.0

    def _replicas_per_machine(self) -> int:
        """Rollout replicas hosted per machine.

        A machine hosts one replica per tensor-parallel group of its GPUs, but
        never more GPUs than the configuration actually allocates to rollouts
        (``rollout_gpus < 8`` means a partially-populated machine).  Initial
        placement and failure recovery must agree on this number — recovery
        used to recompute it without the ``rollout_gpus`` clamp, so a
        recovered machine could come back hosting more replicas than it
        originally did.
        """
        gpus_on_machine = min(GPUS_PER_MACHINE, self.config.rollout_gpus)
        return max(1, gpus_on_machine // self.config.rollout_tensor_parallel)

    def _create_replica(self, machine_id: int, weight_version: int) -> ReplicaGenerationState:
        replica = self.workload.make_replica(self._next_replica_id, weight_version)
        self.replicas[self._next_replica_id] = replica
        self.replica_machine[self._next_replica_id] = machine_id
        self._next_replica_id += 1
        return replica

    def _compute_per_replica_batch(self) -> int:
        """Per-replica prompt batch: saturate the KVCache with a waiting queue."""
        kv_tokens = self.replica_config.kvcache_config().total_tokens
        mean_reserved = self.task.length_dist.mean() + 512.0
        capacity = max(1, int(kv_tokens / mean_reserved))
        return int(min(self.config.max_concurrency_per_replica, max(capacity * 1.5, 8)))

    def _run_ahead_budget(self) -> int:
        return self.run_ahead_budget(list(self.replicas.values()), self._per_replica_batch)

    # ------------------------------------------------------------------ replica intake
    def _refill_replica(self, replica: ReplicaGenerationState, now: float) -> bool:
        """Give an idle replica a fresh prompt batch with the newest weights.

        Returns False when the run-ahead budget is exhausted (the replica's
        driver then sleeps until the trainer consumes a batch), or when the
        replica's machine is draining (spot warning, or a straggler the
        preempt-and-requeue policy took out of rotation).
        """
        if self.replica_machine[replica.replica_id] in self.draining_machines:
            return False
        budget = self._run_ahead_budget()
        if budget <= 0:
            return False
        count = min(self._per_replica_batch, budget)
        # Pull the newest weights from the colocated relay (any time, PCIe).
        machine_id = self.replica_machine[replica.replica_id]
        pull = self.weight_sync.pull(machine_id, now, replica.replica_id)
        replica.set_weight_version(max(replica.weight_version, pull.version))
        replica.inject_stall(pull.wait_time, busy=True)
        prompts = self.dataset.sample_batch(
            max(1, -(-count // self.task.group_size)), self.rng
        )[:count]
        states = self.factory.make(prompts, weight_version=replica.weight_version,
                                   start_time=now)
        replica.add_sequences(states)
        for state in states:
            self.partial_pool.register(state.trajectory, replica.replica_id)
        return True

    # ------------------------------------------------------------------ completions
    def _handle_completions(self, completed: List[Trajectory]) -> None:
        self.pipeline.process(completed, self.trainer.weight_version)

    # ------------------------------------------------------------------ repack / failures
    def _charge_repack_overhead(self, released: List[int], overhead: float) -> None:
        if overhead <= 0:
            return
        destinations = [r for r in self.replicas.values() if not r.is_idle]
        if destinations:
            share = overhead / len(destinations)
            for replica in destinations:
                replica.inject_stall(share, busy=True)

    def _apply_rollout_failure(self, event: FailureEvent, now: float) -> float:
        """Fail a rollout machine; returns the time its replacement is up."""
        self._failure_happened = True
        failed_ids = [
            rid for rid, machine in self.replica_machine.items()
            if machine == event.target and rid in self.replicas
        ]
        self.manager.handle_machine_failure(
            event, failed_ids, self.replicas, self.partial_pool, now
        )
        for rid in failed_ids:
            self.replica_machine.pop(rid, None)
        # Relay chain rebuild is sub-second and does not block rollouts.
        self.relay.fail_machine(event.target)
        return event.time + self.recovery.rollout_recovery_time(event)

    # ------------------------------------------------------------------ degradation (repro.faults)
    def _machine_replicas(self, machine_id: int) -> List[int]:
        return [rid for rid, machine in self.replica_machine.items()
                if machine == machine_id and rid in self.replicas]

    def _drain_machine(self, machine_id: int, now: float) -> int:
        """Migrate a machine's in-flight work to healthy replicas.

        The graceful sibling of :meth:`_apply_rollout_failure`: the machine's
        replicas stay alive (and stop being refilled via
        ``draining_machines``), their sequences move to the least-loaded
        healthy replica of the same weight version, and nothing is lost —
        there is no detection latency because the trigger was a warning or a
        policy decision, not a crash.
        """
        drain_ids = set(self._machine_replicas(machine_id))
        healthy = [
            replica for rid, replica in self.replicas.items()
            if rid not in drain_ids
            and self.replica_machine.get(rid) not in self.draining_machines
        ]
        if not healthy:
            return 0
        moved = 0
        for rid in sorted(drain_ids):
            for state in self.replicas[rid].remove_all():
                state.needs_reprefill = True
                target = RolloutManager._pick_failover_target(healthy, state)
                target.add_sequences([state])
                if state.trajectory.traj_id in self.partial_pool:
                    self.partial_pool.migrate(state.trajectory.traj_id, target.replica_id)
                moved += 1
        return moved

    def _apply_straggler(self, event: FailureEvent, now: float) -> tuple:
        """Degrade a machine; apply the declared straggler policy.

        Below :attr:`STRAGGLER_PREEMPT_FACTOR` the policy is *wait* (the
        slowdown is tolerated; repack keeps consolidating around it).  At or
        above it, the machine's work is preempted and requeued on healthy
        replicas and the machine drains until the slowdown clears.
        """
        machine_id = event.target
        self.straggling_machines[machine_id] = event.factor
        self.stragglers_handled += 1
        policy, moved = "wait", 0
        if (event.factor >= self.STRAGGLER_PREEMPT_FACTOR
                and machine_id not in self.draining_machines):
            moved = self._drain_machine(machine_id, now)
            self.draining_machines.add(machine_id)
            self.straggler_requeues += moved
            policy = "preempt_requeue"
        for rid in self._machine_replicas(machine_id):
            self.replicas[rid].set_slowdown(decode=event.factor, env=event.factor)
        return policy, moved

    def _clear_straggler(self, machine_id: int) -> None:
        self.straggling_machines.pop(machine_id, None)
        self.draining_machines.discard(machine_id)
        for rid in self._machine_replicas(machine_id):
            self.replicas[rid].set_slowdown(decode=1.0, env=1.0)

    def _apply_spot_warning(self, event: FailureEvent, now: float) -> int:
        """Drain a machine ahead of its announced preemption (zero loss)."""
        self.preemption_warnings += 1
        moved = self._drain_machine(event.target, now)
        self.draining_machines.add(event.target)
        return moved

    def _apply_spot_preemption(self, event: FailureEvent, now: float) -> float:
        """Reclaim a spot machine; returns when its replacement is up.

        If a warning drained it first, the failover finds empty replicas and
        loses nothing; an unwarned preemption degenerates to the crash path.
        """
        self._failure_happened = True
        self.spot_preemptions += 1
        failed_ids = self._machine_replicas(event.target)
        self.manager.handle_machine_failure(
            event, failed_ids, self.replicas, self.partial_pool, now
        )
        for rid in failed_ids:
            self.replica_machine.pop(rid, None)
        self.draining_machines.discard(event.target)
        self.straggling_machines.pop(event.target, None)
        self.relay.fail_machine(event.target)
        return event.time + self.recovery.spot_recovery_time()

    def _apply_network(self, event: FailureEvent) -> None:
        """Degraded-network events mutate the relay's link model in place."""
        self.network_events += 1
        if event.kind == FailureKind.NETWORK_DEGRADED:
            self.relay.set_bandwidth_factor(event.factor)
        elif event.kind == FailureKind.NETWORK_RESTORED:
            self.relay.set_bandwidth_factor(1.0)
        elif event.kind == FailureKind.LINK_FLAP:
            self.relay.start_flap(event.target, event.time + event.duration)

    def _recover_machine(self, machine_id: int, now: float) -> List[ReplicaGenerationState]:
        """Re-admit a machine: catch up its relay, then re-host its replicas."""
        self.relay.recover_machine(machine_id, now)
        created: List[ReplicaGenerationState] = []
        for _ in range(self._replicas_per_machine()):
            if len(self.replicas) >= self.config.num_rollout_replicas():
                break
            replica = self._create_replica(machine_id, self.trainer.weight_version)
            replica.clock = now
            created.append(replica)
        return created

    # ------------------------------------------------------------------ main loop
    def build(self, env: Environment, result: SystemRunResult,
              num_iterations: int) -> Generator:
        """Process body: spawn the runtime's processes and wait for the run
        to finish (``num_iterations`` trainer updates or the time cap)."""
        self._result = result
        runtime = LaminarRuntime(self, env)
        done = runtime.start(num_iterations)
        yield env.any_of([done, env.timeout(self.max_sim_time)])

    def run(self, num_iterations: Optional[int] = None) -> SystemRunResult:
        """Simulate ``num_iterations`` trainer updates on the event engine."""
        result = super().run(num_iterations)
        self._finalise(result.wall_clock)
        return result

    # ------------------------------------------------------------------ results
    def record_kvcache_sample(self, replica_id: int, time: float, utilization: float) -> None:
        """KVCache utilisation observer (Fig 9), fed by the manager process."""
        series = self.kvcache_series.setdefault(
            replica_id, TimeSeries(name=f"kvcache_{replica_id}")
        )
        series.record(time, utilization)

    def _finalise(self, now: float) -> None:
        result = self._result
        result.wall_clock = now
        stats = self.manager.repack_stats
        result.extras.update(
            {
                "repacks": float(stats.num_repacks),
                "replicas_released": float(stats.replicas_released),
                "trajectories_moved": float(stats.trajectories_moved),
                "repack_overhead_total": stats.total_overhead,
                "repack_overhead_mean": stats.mean_overhead(),
                "relay_mean_pull_wait": self.relay.mean_pull_wait(),
                "relay_best_pull_wait": self.relay.best_pull_wait(),
                "actor_stall_total": self.relay.total_actor_stall(),
                "max_inherent_staleness": float(self.staleness.max_staleness()),
                "mean_inherent_staleness": self.staleness.mean_staleness(),
                "failures_handled": float(len(self.manager.recovery_records)),
            }
        )
        # Adversarial-infrastructure extras only appear on runs that actually
        # saw chaos, so nominal runs keep their committed metric sets.
        if (self.stragglers_handled or self.preemption_warnings
                or self.spot_preemptions or self.network_events
                or self.relay.sync_retries):
            result.extras.update(
                {
                    "stragglers_handled": float(self.stragglers_handled),
                    "straggler_requeues": float(self.straggler_requeues),
                    "preemption_warnings": float(self.preemption_warnings),
                    "spot_preemptions": float(self.spot_preemptions),
                    "network_events": float(self.network_events),
                    "sync_retries": float(self.relay.sync_retries),
                    "retry_backoff_total": self.relay.retry_backoff_total,
                }
            )

    # -- convenience accessors ---------------------------------------------------
    @property
    def result(self) -> SystemRunResult:
        return self._result

    def generation_rate_series(self, bucket: float = 60.0) -> TimeSeries:
        return self.generation_tokens.rate_series(bucket)

    def mean_kvcache_utilization(self) -> float:
        series = list(self.kvcache_series.values())
        if not series:
            return 0.0
        values = [v for s in series for v in s.values]
        return float(np.mean(values)) if values else 0.0


@register
class LaminarNoRepack(LaminarSystem):
    """Laminar with the repack mechanism ablated (Fig 16 / Table 1).

    The registry variant proving orchestration composability: identical
    placement, relay sync and fault model, but neither the periodic nor the
    post-update repack trigger ever fires and no repack overhead is charged.
    """

    name = "laminar_norepack"
    capabilities = SystemCapabilities(
        description="Laminar repack ablation: identical orchestration with "
                    "the repack mechanism disabled",
        continuous=True,
        weight_sync="relay",
        staleness="unbounded",
        repack=False,
        fault_tolerant=True,
        default_staleness_bound=0,
        default_max_concurrency=1024,
        placement_like="laminar",
        throughput_method="laminar_cycle",
        trace_spans=("iteration", "training", "weight_sync", "weight_pull"),
        straggler_policy="preempt_requeue",
        sync_retry="bounded_backoff",
    )

    def __init__(self, config: SystemConfig, **kwargs) -> None:
        if config.repack_enabled:
            config = dataclass_replace(config, repack_enabled=False)
        super().__init__(config, **kwargs)


class LaminarRuntime(ReplicaFleet):
    """Discrete-event main loop for one :class:`LaminarSystem` run.

    Pure mechanism: all policy (what to refill, how to score, who hosts which
    replica) stays on the system object.  The runtime shares the run's
    environment with :meth:`LaminarSystem.build`, which joins on the
    :meth:`start`-returned completion event.
    """

    def __init__(self, system: LaminarSystem, env: Environment) -> None:
        super().__init__(env)
        self.system = system
        self._num_iterations = 0
        self._trainer_ready = 0.0
        self._last_completion = 0.0
        self._tokens_seen = {rid: 0 for rid in system.replicas}
        self._trainer_process = None
        self._done = self.env.event()

    # ------------------------------------------------------------------ entry point
    def start(self, num_iterations: int):
        """Spawn the runtime's processes; returns the run-completion event."""
        env, system = self.env, self.system
        self._num_iterations = num_iterations
        for replica_id in list(system.replicas):
            self.spawn(replica_id)
        self._trainer_process = env.process(self._trainer(), name="trainer")
        env.process(self._manager(), name="rollout-manager")
        env.process(self._failures(), name="failure-injector")
        return self._done

    # ------------------------------------------------------------------ fleet hooks
    def replica(self, replica_id: int) -> Optional[ReplicaGenerationState]:
        return self.system.replicas.get(replica_id)

    def refill(self, replica: ReplicaGenerationState) -> None:
        env = self.env
        tracer = env.tracer
        if not tracer.enabled:
            self.system._refill_replica(replica, env.now)
            return
        # The refill's only clock movement is the relay pull stall, so the
        # clock delta *is* the pull wait — observed, not recomputed.
        clock_before = replica.clock
        if self.system._refill_replica(replica, env.now):
            tracer.span(f"replica-{replica.replica_id}", "weight_pull",
                        env.now, env.now + (replica.clock - clock_before),
                        args={"version": replica.weight_version})

    def on_advance(self, replica: ReplicaGenerationState, completed: List[Trajectory]) -> None:
        system = self.system
        generated = replica.stats.tokens_generated
        delta = generated - self._tokens_seen.get(replica.replica_id, 0)
        self._tokens_seen[replica.replica_id] = generated
        if delta > 0:
            system.generation_tokens.record(self.env.now, delta)
        if completed:
            system._handle_completions(completed)
            if system.buffer.can_sample(system.config.global_batch_size):
                self.notify_data()

    # ------------------------------------------------------------------ trainer
    def _trainer(self):
        env, system = self.env, self.system
        batch_size = system.config.global_batch_size
        while len(system.trainer.iterations) < self._num_iterations:
            # Idle phase: wait out any checkpoint restore, then wait for data.
            while True:
                wait = self._trainer_ready - env.now
                if wait > _EPS:
                    try:
                        yield env.timeout(wait)
                    except Interrupt as interrupt:
                        self._restore_while_idle(float(interrupt.cause))
                    continue
                if system.buffer.can_sample(batch_size):
                    break
                try:
                    yield self.data_event()
                except Interrupt as interrupt:
                    self._restore_while_idle(float(interrupt.cause))
            batch = system.buffer.sample(batch_size)
            self.notify_refill()  # run-ahead budget freed
            tokens = sum(exp.tokens for exp in batch)
            compute = system.trainer.iteration_compute_time(tokens)
            train_begin = env.now
            finish = env.now + compute
            while finish - env.now > _EPS:
                try:
                    yield env.timeout(finish - env.now)
                except Interrupt as interrupt:
                    # Trainer failure mid-iteration: the restore slips the
                    # completion of the current update (§3.3).
                    finish += float(interrupt.cause)
            # Bring every replica up to the update instant before the version
            # bump: trajectories that completed during the training window are
            # scored with the pre-update actor version.
            for replica in list(system.replicas.values()):
                self.catch_up(replica)
            # Publish to the master relay; the actor stalls only for the push.
            publication = system.weight_sync.publish(system.trainer.weight_version + 1, env.now)
            completion = env.now + publication.actor_stall
            record = system.trainer.record_iteration(batch, self._last_completion, completion)
            system.training_tokens.record(completion, record.tokens_trained)
            result = system._result
            result.iterations.append(record)
            result.breakdowns.append(
                StageBreakdown(
                    generation_time=max(0.0, record.duration - compute),
                    training_time=compute,
                    weight_sync_time=publication.actor_stall,
                )
            )
            system.record_batch_staleness(env, result, batch)
            if env.tracer.enabled:
                # The training span covers checkpoint-restore slips too (the
                # trainer really occupied its GPUs until ``finish``).
                env.tracer.span("trainer", "training", train_begin, env.now,
                                args={"tokens": tokens, "compute": compute})
                env.tracer.span("sync", "weight_sync", env.now, completion,
                                args={"mechanism": "relay",
                                      "actor_stall": publication.actor_stall})
                env.tracer.span("trainer", "iteration", record.start_time,
                                completion,
                                args={"iteration": len(result.iterations)})
            self._last_completion = completion
            # §5.1: a repack is also triggered right after each trainer update.
            self._repack(force=True)
        if not self._done.triggered:
            self._done.succeed()

    def _restore_while_idle(self, restore: float) -> None:
        self._trainer_ready = max(self._trainer_ready, self.env.now + restore)

    # ------------------------------------------------------------------ repack / manager
    def _repack(self, force: bool) -> None:
        env, system = self.env, self.system
        if not force and not system.manager.due_for_check(env.now):
            return
        for replica in list(system.replicas.values()):
            self.catch_up(replica)
        released, overhead = system.manager.maybe_repack(system.replicas, env.now, force=force)
        system._charge_repack_overhead(released, overhead)
        if released and env.tracer.enabled:
            env.tracer.span("manager", "repack", env.now, env.now + overhead,
                            args={"released": len(released),
                                  "overhead": overhead, "forced": force})
        if released:
            # Sources were emptied and destinations grew (plus the shared
            # migration stall): every sleeping driver must recompute.
            self.touch()
            self.notify_refill()

    def _manager(self):
        env, system = self.env, self.system
        while True:
            yield env.timeout(system.manager.repack_interval)
            self._repack(force=False)
            self._observe_kvcache()

    def _observe_kvcache(self) -> None:
        system = self.system
        tracer = self.env.tracer
        for replica_id in list(system.replicas)[:4]:
            replica = system.replicas[replica_id]
            utilization = replica.kvcache_utilization
            system.record_kvcache_sample(replica_id, self.env.now, utilization)
            if tracer.enabled:
                tracer.counter(f"replica-{replica_id}", "kvcache_utilization",
                               self.env.now, utilization)

    # ------------------------------------------------------------------ failures
    def _failures(self):
        env, system = self.env, self.system
        while True:
            next_time = system.failures.next_failure_time()
            if next_time is None:
                return
            if next_time > env.now:
                # Absolute-time wake-up: ``timeout(next - now)`` can land a
                # float ulp *below* the injected timestamp, in which case
                # ``due(now)`` pops nothing and this loop would spin without
                # ever yielding again.
                yield env.timeout_until(next_time)
            for event in system.failures.due(env.now):
                self._apply_failure(event)

    def _apply_failure(self, event: FailureEvent) -> None:
        env, system = self.env, self.system
        if env.tracer.enabled:
            if event.kind == FailureKind.TRAINER:
                track = "trainer"
            elif event.target < 0:
                track = "network"
            else:
                track = f"machine-{event.target}"
            env.tracer.instant(track, "failure", env.now,
                               args={"kind": str(event.kind),
                                     "target": event.target})
        if event.kind == FailureKind.ROLLOUT_MACHINE:
            # Bring every replica up to the failure instant so the streamed
            # tokens in the partial response pool are exact, then fail over.
            for replica in list(system.replicas.values()):
                self.catch_up(replica)
            recovery_at = system._apply_rollout_failure(event, env.now)
            if env.tracer.enabled:
                # The recovery deadline is known the instant the failure is
                # applied, so the outage is recordable as one complete span —
                # trace analytics attributes it to the "recovery" family.
                env.tracer.span(f"machine-{event.target}", "recovery",
                                env.now, max(env.now, recovery_at),
                                args={"kind": str(event.kind)})
            env.process(
                self._recovery(recovery_at, event.target),
                name=f"recover-machine-{event.target}",
            )
            self.touch()
            self.notify_refill()
        elif event.kind == FailureKind.RELAY:
            system.relay.fail_machine(event.target)
            relay_recovery_at = event.time + system.recovery.relay_recovery_time()
            if env.tracer.enabled:
                env.tracer.span(f"machine-{event.target}", "recovery",
                                env.now, max(env.now, relay_recovery_at),
                                args={"kind": str(event.kind)})
            env.process(
                self._relay_recovery(relay_recovery_at, event.target),
                name=f"recover-relay-{event.target}",
            )
        elif event.kind == FailureKind.TRAINER:
            # The trainer restarts from its checkpoint; rollouts keep going.
            # Mid-iteration the completion slips; while idle the next
            # iteration may not start until the restore finishes.
            restore = system.recovery.trainer_recovery_time()
            if self._trainer_process is not None and self._trainer_process.is_alive:
                if env.tracer.enabled:
                    env.tracer.span("trainer", "recovery", env.now,
                                    env.now + restore,
                                    args={"kind": str(event.kind)})
                self._trainer_process.interrupt(cause=restore)
        elif event.kind == FailureKind.STRAGGLER:
            for replica in list(system.replicas.values()):
                self.catch_up(replica)
            policy, moved = system._apply_straggler(event, env.now)
            if env.tracer.enabled:
                env.tracer.instant(f"machine-{event.target}", "straggler", env.now,
                                   args={"factor": event.factor,
                                         "policy": policy, "requeued": moved})
            self.touch()
            self.notify_refill()
        elif event.kind == FailureKind.STRAGGLER_CLEAR:
            for replica in list(system.replicas.values()):
                self.catch_up(replica)
            system._clear_straggler(event.target)
            if env.tracer.enabled:
                env.tracer.instant(f"machine-{event.target}", "straggler_clear",
                                   env.now, args={})
            self.touch()
            self.notify_refill()
        elif event.kind == FailureKind.SPOT_WARNING:
            for replica in list(system.replicas.values()):
                self.catch_up(replica)
            moved = system._apply_spot_warning(event, env.now)
            if env.tracer.enabled:
                env.tracer.instant(f"machine-{event.target}", "spot_warning",
                                   env.now, args={"drained": moved,
                                                  "lead": event.duration})
            self.touch()
            self.notify_refill()
        elif event.kind == FailureKind.SPOT_PREEMPTION:
            for replica in list(system.replicas.values()):
                self.catch_up(replica)
            recovery_at = system._apply_spot_preemption(event, env.now)
            if env.tracer.enabled:
                env.tracer.span(f"machine-{event.target}", "recovery",
                                env.now, max(env.now, recovery_at),
                                args={"kind": str(event.kind)})
            env.process(
                self._recovery(recovery_at, event.target),
                name=f"recover-machine-{event.target}",
            )
            self.touch()
            self.notify_refill()
        elif event.kind in (FailureKind.NETWORK_DEGRADED,
                            FailureKind.NETWORK_RESTORED,
                            FailureKind.LINK_FLAP):
            # Pure link-model mutations: replica clocks are untouched, so no
            # catch-up or driver wake-up is needed — the next publish/pull
            # simply sees the degraded network.
            system._apply_network(event)

    def _recovery(self, at: float, machine_id: int):
        env, system = self.env, self.system
        if at - env.now > _EPS:
            yield env.timeout(at - env.now)
        created = system._recover_machine(machine_id, env.now)
        if env.tracer.enabled:
            env.tracer.instant(f"machine-{machine_id}", "recovery", env.now,
                               args={"replicas": len(created)})
        for replica in created:
            self._tokens_seen.setdefault(replica.replica_id, 0)
            self.spawn(replica.replica_id)
        self.notify_refill()

    def _relay_recovery(self, at: float, machine_id: int):
        """A relay outage rebuilds only the relay chain: the machine's rollout
        replicas never died, so no replicas may be (re)hosted here — doing so
        used to hand a concurrently-failed machine's replica budget to the
        relay's machine."""
        env, system = self.env, self.system
        if at - env.now > _EPS:
            yield env.timeout(at - env.now)
        system.relay.recover_machine(machine_id, env.now)
        if env.tracer.enabled:
            env.tracer.instant(f"machine-{machine_id}", "recovery", env.now,
                               args={"component": "relay"})

"""Dynamic trajectory repacking (§5, Algorithm 1).

When a rollout replica is stuck on a handful of long-tail trajectories it is
barely using its GPUs (decode is memory-bound, see Fig 4) and, worse, it
cannot update to fresher weights.  The repack mechanism consolidates those
in-flight trajectories from several such replicas onto a few destination
replicas of the *same weight version*, releasing the sources to pull the
latest weights and start fresh, on-policy generation.

This module implements:

* the idleness signal (§5.2): a replica is a repack candidate when its
  KVCache utilisation is below ``C_max``, non-increasing, and its remaining
  request count is below the roofline batch bound ``B``;
* Algorithm 1 — Best-Fit trajectory consolidation — verbatim;
* :class:`RepackExecutor`, which applies a plan to live replica states and
  accounts the (small) migration overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..rollout.generation import ReplicaGenerationState


@dataclass
class ReplicaSnapshot:
    """Metrics the rollout manager collects from one replica (§5.1 step 1)."""

    replica_id: int
    weight_version: int
    #: KVCache utilisation in [0, 1] (C_used).
    kvcache_used: float
    #: KVCache utilisation at the previous observation (C_prev).
    kvcache_prev: float
    #: Number of in-flight trajectories (N_reqs).
    num_requests: int
    #: True when the replica still has waiting (unadmitted) trajectories.
    has_waiting: bool = False

    def is_candidate(self, c_max: float, batch_bound: int) -> bool:
        """Line 3 of Algorithm 1: ramp-down phase and below the batch bound."""
        if self.has_waiting or self.num_requests == 0:
            return False
        return (
            self.kvcache_used < min(c_max, self.kvcache_prev)
            and self.num_requests < batch_bound
        )


@dataclass
class RepackPlan:
    """The consolidation plan P: ordered (source, destination) replica pairs."""

    pairs: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def sources(self) -> List[int]:
        return [s for s, _ in self.pairs]

    @property
    def destinations(self) -> List[int]:
        return sorted({d for _, d in self.pairs})

    @property
    def num_released(self) -> int:
        return len(self.pairs)

    def __bool__(self) -> bool:
        return bool(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)


def best_fit_consolidation(
    snapshots: Sequence[ReplicaSnapshot],
    c_max: float,
    batch_bound: int,
) -> RepackPlan:
    """Algorithm 1: Best-Fit Trajectory Consolidation.

    ``snapshots`` must all belong to the same weight-version group (§5.1 step 1
    groups replicas by version before calling the packing algorithm).
    """
    if batch_bound <= 0:
        raise ValueError("batch_bound must be positive")
    versions = {snap.weight_version for snap in snapshots}
    if len(versions) > 1:
        raise ValueError(
            f"repack operates within one weight-version group, got versions {sorted(versions)}"
        )

    # Line 3: candidate set S.
    candidates = [s for s in snapshots if s.is_candidate(c_max, batch_bound)]
    # Line 4: release the smallest KVCache footprints first.
    candidates.sort(key=lambda s: (s.kvcache_used, s.replica_id))

    plan = RepackPlan()
    emptied: set[int] = set()
    # Loads already assigned to each destination by the current plan.
    assigned_cache: Dict[int, float] = {}
    assigned_reqs: Dict[int, int] = {}
    by_id = {s.replica_id: s for s in candidates}

    def can_fit(dest: ReplicaSnapshot, src: ReplicaSnapshot) -> bool:
        cache_load = dest.kvcache_used + assigned_cache.get(dest.replica_id, 0.0)
        req_load = dest.num_requests + assigned_reqs.get(dest.replica_id, 0)
        return (
            cache_load + src.kvcache_used <= c_max
            and req_load + src.num_requests <= batch_bound
        )

    for source in candidates:
        if source.replica_id in emptied:
            continue
        valid = [
            d for d in candidates
            if d.replica_id not in emptied
            and d.replica_id != source.replica_id
            and can_fit(d, source)
        ]
        if not valid:
            continue
        # Line 11: choose the destination that becomes most densely packed.
        best = max(
            valid,
            key=lambda d: (
                d.kvcache_used + assigned_cache.get(d.replica_id, 0.0),
                -d.replica_id,
            ),
        )
        plan.pairs.append((source.replica_id, best.replica_id))
        emptied.add(source.replica_id)
        assigned_cache[best.replica_id] = (
            assigned_cache.get(best.replica_id, 0.0) + source.kvcache_used
        )
        assigned_reqs[best.replica_id] = (
            assigned_reqs.get(best.replica_id, 0) + source.num_requests
        )
    return plan


def group_by_version(snapshots: Sequence[ReplicaSnapshot]) -> Dict[int, List[ReplicaSnapshot]]:
    """§5.1 step 1: group replica snapshots by their weight version."""
    groups: Dict[int, List[ReplicaSnapshot]] = {}
    for snap in snapshots:
        groups.setdefault(snap.weight_version, []).append(snap)
    return groups


def plan_repack(
    snapshots: Sequence[ReplicaSnapshot],
    c_max: float,
    batch_bound: int,
) -> Dict[int, RepackPlan]:
    """Run Algorithm 1 independently inside every weight-version group."""
    plans: Dict[int, RepackPlan] = {}
    for version, group in group_by_version(snapshots).items():
        plan = best_fit_consolidation(group, c_max, batch_bound)
        if plan:
            plans[version] = plan
    return plans


@dataclass
class RepackStats:
    """Cumulative repack accounting (Table 1)."""

    num_repacks: int = 0
    replicas_released: int = 0
    trajectories_moved: int = 0
    total_overhead: float = 0.0

    def mean_overhead(self) -> float:
        if self.num_repacks == 0:
            return 0.0
        return self.total_overhead / self.num_repacks


class RepackExecutor:
    """Applies repack plans to live replica generation states."""

    #: Fixed control-plane overhead per executed plan (metric collection +
    #: planning + RPC fan-out); Table 1 reports 0.69 s end-to-end.
    plan_overhead: float = 0.2
    #: Per-moved-trajectory transfer overhead (tokens are already in the
    #: partial response pool; only metadata and KVCache handoff remain).
    per_trajectory_overhead: float = 0.002

    def __init__(self) -> None:
        self.stats = RepackStats()

    def execute(
        self,
        plan: RepackPlan,
        replicas: Dict[int, ReplicaGenerationState],
    ) -> float:
        """Move trajectories per ``plan``; returns the overhead charged.

        Destinations re-prefill the migrated contexts (charged to the
        destination replica), sources are left empty and free to pull new
        weights.
        """
        if not plan:
            return 0.0
        moved = 0
        for source_id, dest_id in plan.pairs:
            source = replicas.get(source_id)
            dest = replicas.get(dest_id)
            if source is None or dest is None:
                continue
            states = source.remove_all()
            for state in states:
                state.needs_reprefill = True
                state.trajectory.repack_count += 1
            dest.add_sequences(states)
            moved += len(states)
        overhead = self.plan_overhead + self.per_trajectory_overhead * moved
        self.stats.num_repacks += 1
        self.stats.replicas_released += plan.num_released
        self.stats.trajectories_moved += moved
        self.stats.total_overhead += overhead
        return overhead

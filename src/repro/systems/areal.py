"""AReaL-style partial-rollout baseline (Fig 3d).

Rollouts generate continuously at full concurrency (no per-iteration barrier):
every replica runs as its own driver process that tops itself up with fresh
prompts, and the trainer process consumes a global batch from the experience
buffer the instant enough trajectories have completed.  Whenever the actor
publishes new weights, every rollout is interrupted: all in-flight
trajectories switch to the new policy version mid-generation, which requires
rebuilding (re-prefilling) their KVCache.  A single trajectory may therefore
mix several policy versions (``Trajectory.versions_used``), the re-prefill
storm costs GPU time on every iteration, and the trajectory staleness is
unbounded.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from ..metrics.results import StageBreakdown, SystemRunResult
from ..rollout.generation import ReplicaGenerationState
from ..runtime.harness import ReplicaFleet
from ..sim.engine import Environment
from ..types import Trajectory
from .base import System, SystemCapabilities, register


class _ContinuousFleet(ReplicaFleet):
    """Driver hooks: top-up on idle, score completions straight into the buffer.

    The hooks are stepping-mode agnostic: ``ReplicaFleet.spawn`` runs the
    replicas under one ``FleetStepper`` process (default) or one driver
    process each (``stepping("process")``), bit-identically either way.
    """

    def __init__(self, env: Environment, system: "PartialRollout") -> None:
        super().__init__(env)
        self.system = system
        self._by_id = {replica.replica_id: replica for replica in system.replicas}

    def replica(self, replica_id: int) -> Optional[ReplicaGenerationState]:
        return self._by_id.get(replica_id)

    def refill(self, replica: ReplicaGenerationState) -> None:
        self.system._top_up(replica)

    def on_advance(self, replica: ReplicaGenerationState, completed: List[Trajectory]) -> None:
        system = self.system
        if completed:
            system.score_and_buffer(completed, system.trainer.weight_version)
            if system.buffer.can_sample(system.config.global_batch_size):
                self.notify_data()
        system._top_up(replica)


@register
class PartialRollout(System):
    """Continuous generation with pause-and-sync partial rollouts (AReaL)."""

    name = "areal"
    capabilities = SystemCapabilities(
        description="AReaL partial rollout: continuous generation, "
                    "pause-and-sync weight updates, unbounded staleness",
        continuous=True,
        weight_sync="global",
        staleness="unbounded",
        default_staleness_bound=10 ** 6,
        default_max_concurrency=1024,
        throughput_method="areal_fixed_point",
        trace_spans=("iteration", "training", "weight_sync"),
    )

    def __init__(self, config) -> None:
        super().__init__(config)
        self.replicas: List[ReplicaGenerationState] = []
        self._target_inflight = 0

    # ------------------------------------------------------------------ helpers
    def _concurrency_target(self) -> int:
        """How many sequences to keep queued+in-flight per replica.

        Enough to keep the KVCache saturated (so freed space is refilled
        immediately) without building an unbounded waiting queue.
        """
        if self._target_inflight:
            return self._target_inflight
        kv_tokens = self.replica_config.kvcache_config().total_tokens
        mean_reserved = self.task.length_dist.mean() + 512.0
        capacity = max(1, int(kv_tokens / mean_reserved))
        self._target_inflight = min(
            self.config.max_concurrency_per_replica, int(capacity * 1.3) + 1
        )
        return self._target_inflight

    def _run_ahead_budget(self) -> int:
        return self.run_ahead_budget(self.replicas, self._concurrency_target())

    def _top_up(self, replica: ReplicaGenerationState) -> None:
        deficit = self._concurrency_target() - replica.num_sequences
        deficit = min(deficit, self._run_ahead_budget())
        if deficit <= 0:
            return
        prompts = self.dataset.sample_batch(
            max(1, -(-deficit // self.task.group_size)), self.rng
        )[:deficit]
        states = self.factory.make(prompts, weight_version=replica.weight_version)
        replica.add_sequences(states)

    # ------------------------------------------------------------------ main loop
    def build(self, env: Environment, result: SystemRunResult,
              num_iterations: int) -> Generator:
        tracer = env.tracer
        sync_time = self.global_sync_time()
        self.replicas = self.make_replicas(self.num_generation_replicas(), weight_version=0)
        fleet = _ContinuousFleet(env, self)
        for replica in self.replicas:
            fleet.spawn(replica.replica_id)

        total_reprefill_stall = 0.0
        for _ in range(num_iterations):
            iteration_start = env.now
            # --- wait for a global batch of completed trajectories --------------
            # The drivers score completions into the buffer as they happen; the
            # wake-up lands at the exact completion timestamp of the last
            # trajectory needed.
            while not self.buffer.can_sample(self.config.global_batch_size):
                yield fleet.data_event()
            batch = self.buffer.sample(self.config.global_batch_size)
            fleet.notify_refill()  # run-ahead budget freed
            tokens = sum(exp.tokens for exp in batch)
            train_time = self.trainer.iteration_compute_time(tokens)

            # Generation continues (the drivers keep running) while the actor
            # computes its update.  Bring every replica up to the update
            # instant *before* recording it, so trajectories that completed
            # during the training window are scored with the pre-update
            # actor version.
            train_start = env.now
            yield env.timeout(train_time)
            for replica in self.replicas:
                fleet.catch_up(replica)
            record = self.trainer.record_iteration(batch, iteration_start, env.now)

            # --- partial rollout: interrupt, sync weights, re-prefill -----------
            reprefill_stall = 0.0
            for replica in self.replicas:
                replica.inject_stall(sync_time, busy=False)
                reprefill_stall += replica.reprefill_all_inflight()
                replica.set_weight_version(self.trainer.weight_version)
            fleet.touch()  # stalled replicas: drivers recompute their next event
            total_reprefill_stall += reprefill_stall

            result.iterations.append(record)
            result.breakdowns.append(
                StageBreakdown(
                    generation_time=record.duration,
                    training_time=train_time,
                    weight_sync_time=sync_time,
                    bubble_time=reprefill_stall / max(1, len(self.replicas)),
                )
            )
            self.record_batch_staleness(env, result, batch)
            result.extras["mixed_version_fraction"] = float(
                np.mean([exp.trajectory.mixed_versions for exp in batch])
            )
            if tracer.enabled:
                tracer.span("trainer", "training", train_start,
                            train_start + train_time, args={"tokens": tokens})
                tracer.span("sync", "weight_sync", env.now, env.now + sync_time,
                            args={"mechanism": "pause_and_sync"})
                tracer.instant("rollout", "reprefill", env.now,
                               args={"stall": reprefill_stall})
                tracer.span("trainer", "iteration", iteration_start, env.now,
                            args={"iteration": len(result.iterations)})
        # The pause-and-sync stall of the final update is still outstanding on
        # the replica clocks; the run ends at the last update completion.
        result.extras["global_sync_time"] = sync_time
        result.extras["total_reprefill_stall"] = total_reprefill_stall

"""Semi-synchronous bounded-staleness barrier hybrid (registry variant).

A new Fig 11-style series sitting between the one-step pipeline and the fully
continuous designs, composed entirely from the shared runtime pieces — the
composability proof for the system registry:

* like the one-step pipeline, every batch is generated behind a full
  ``AllOf`` barrier on disaggregated rollout GPUs and the actor pays a
  blocking GPU-direct global weight synchronization per update;
* unlike it, the rollout fleet is decoupled from the iteration boundary by a
  bounded-staleness *window*: the producer process keeps generating barriered
  batches until it runs ``staleness_bound`` batches ahead of the trainer,
  then blocks on the trainer's consumption event.

With ``staleness_bound = 1`` the schedule degenerates to the one-step
pipeline; larger bounds hide generation jitter (the long-tail barrier of a
slow batch overlaps several training iterations) at the cost of staleness up
to the bound.  The iteration clock is pure event arithmetic: producer and
trainer are peer processes coupled only by ready/consumed events, and every
stage is a timeout or an ``AllOf`` join.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, List

from ..metrics.results import StageBreakdown, SystemRunResult
from ..runtime.harness import EventBox, GenerationOutcome
from ..sim.engine import Environment
from .base import System, SystemCapabilities, register


@register
class SemiSyncBarrier(System):
    """Barriered generation running up to k batches ahead of the trainer."""

    name = "semi_sync"
    capabilities = SystemCapabilities(
        description="semi-synchronous hybrid: barriered batches generated up "
                    "to k ahead, blocking global sync per update",
        weight_sync="global",
        staleness="bounded",
        placement_like="one_step",
        default_staleness_bound=2,
        default_max_concurrency=8192,
        trace_spans=("iteration", "generation", "training", "weight_sync"),
    )

    def build(self, env: Environment, result: SystemRunResult,
              num_iterations: int) -> Generator:
        tracer = env.tracer
        sync_time = self.global_sync_time()
        window = max(1, self.config.staleness_bound)
        ready: Deque[GenerationOutcome] = deque()
        consumed: List[int] = [0]
        data_box = EventBox(env)
        slot_box = EventBox(env)

        def producer() -> Generator:
            for index in range(num_iterations):
                # Bounded-staleness window: never run more than ``window``
                # batches ahead of the last consumed batch.
                while index - consumed[0] >= window:
                    yield slot_box.wait()
                batch_start = env.now
                outcome = yield from self.generate_batch_process(
                    env, self.trainer.weight_version, origin=env.now
                )
                if tracer.enabled:
                    tracer.span("rollout", "generation", batch_start, env.now,
                                args={"batch": index,
                                      "tokens": outcome.tokens_generated})
                ready.append(outcome)
                data_box.notify()

        env.process(producer(), name=f"{self.name}-producer")

        for _ in range(num_iterations):
            start = env.now
            while not ready:
                yield data_box.wait()
            wait_time = env.now - start
            outcome = ready.popleft()
            consumed[0] += 1
            slot_box.notify()

            self.score_and_buffer(outcome.trajectories, self.trainer.weight_version)
            batch = self.buffer.sample(self.config.global_batch_size)
            tokens = sum(exp.tokens for exp in batch)
            train_time = self.trainer.iteration_compute_time(tokens)
            train_start = env.now
            yield env.timeout(train_time)
            # Blocking global sync couples every rollout to the new weights.
            yield env.timeout(sync_time)
            record = self.trainer.record_iteration(batch, start, env.now)

            result.iterations.append(record)
            result.breakdowns.append(
                StageBreakdown(
                    generation_time=outcome.duration,
                    training_time=train_time,
                    weight_sync_time=sync_time,
                    bubble_time=outcome.bubble_time + wait_time,
                )
            )
            self.record_batch_staleness(env, result, batch)
            if tracer.enabled:
                tracer.span("trainer", "training", train_start,
                            train_start + train_time, args={"tokens": tokens})
                tracer.span("sync", "weight_sync", train_start + train_time,
                            env.now)
                tracer.span("trainer", "iteration", start, env.now,
                            args={"iteration": len(result.iterations),
                                  "wait": wait_time})
        result.extras["global_sync_time"] = sync_time
        result.extras["staleness_window"] = float(window)

"""Relay workers: the distributed parameter service (§4).

The actor pushes each new weight version to a single *master relay* (a CPU
process on one rollout machine) and immediately resumes training; the master
reshards the weights to the rollout layout and broadcasts them to the relay
on every other rollout machine through a chain-pipelined RDMA broadcast
(Appendix D).  A rollout replica can pull the newest weights from its
colocated relay at any time over PCIe, without stalling the actor or any
other rollout.

:class:`RelayService` is the bookkeeping model used by the Laminar simulator:
it records when each weight version becomes available on each machine, the
actor's stall time per publication, and every rollout pull (for Fig 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..llm.model_spec import ModelSpec
from ..sim.network import (
    LinkSpec,
    PCIE_LINK,
    RDMA_LINK,
    RDMA_SINGLE_NIC_LINK,
    RetryPolicy,
    chain_pipelined_broadcast_time,
)


#: Time for the master relay to reshard a published model to the rollout
#: tensor-parallel layout (CPU memcpy bound; §4.2).  Seconds per gigabyte.
RESHARD_SECONDS_PER_GB = 0.05
#: Fixed per-publication overhead on the actor side (launch, registration).
PUBLISH_OVERHEAD = 0.05


@dataclass
class WeightPublication:
    """One published weight version and its availability on each machine."""

    version: int
    publish_time: float
    actor_stall: float
    master_available_at: float
    broadcast_complete_at: float
    #: Per-machine availability time (master machine is earliest).
    available_at: Dict[int, float] = field(default_factory=dict)


@dataclass
class PullRecord:
    """One rollout's weight pull (for the Fig 14 waiting-time distribution)."""

    replica_id: int
    machine_id: int
    version: int
    request_time: float
    wait_time: float
    #: True if the version was already resident on the local relay.
    local_hit: bool


class RelayService:
    """Hierarchical relay workers with chain-pipelined broadcast."""

    def __init__(
        self,
        model: ModelSpec,
        rollout_machine_ids: List[int],
        rollout_tensor_parallel: int,
        inter_link: LinkSpec = RDMA_SINGLE_NIC_LINK,
        pcie_link: LinkSpec = PCIE_LINK,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if not rollout_machine_ids:
            raise ValueError("need at least one rollout machine")
        self.model = model
        self.machine_ids = list(rollout_machine_ids)
        self.rollout_tensor_parallel = max(1, rollout_tensor_parallel)
        self.inter_link = inter_link
        self.pcie_link = pcie_link
        self.retry_policy = retry_policy or RetryPolicy()
        self.master_machine = self.machine_ids[0]
        self.publications: Dict[int, WeightPublication] = {}
        self.pulls: List[PullRecord] = []
        self.failed_machines: set[int] = set()
        self.master_failovers = 0
        self.chain_rebuilds = 0
        # Degraded-network state (repro.faults): a bandwidth multiplier on
        # the inter-machine link plus per-machine flap windows.  Sync paths
        # ride out flaps with the bounded-backoff retry policy.
        self.bandwidth_factor = 1.0
        self._flap_until: Dict[int, float] = {}
        self.sync_retries = 0
        self.retry_backoff_total = 0.0
        # Version 0 (the initial checkpoint) is available everywhere at t=0.
        self.publications[0] = WeightPublication(
            version=0,
            publish_time=0.0,
            actor_stall=0.0,
            master_available_at=0.0,
            broadcast_complete_at=0.0,
            available_at={m: 0.0 for m in self.machine_ids},
        )

    # ------------------------------------------------------------------ degradation
    def effective_inter_link(self) -> LinkSpec:
        """Inter-machine link under the current bandwidth factor."""
        return self.inter_link.scaled(self.bandwidth_factor)

    def set_bandwidth_factor(self, factor: float) -> None:
        """Set the inter-machine bandwidth multiplier (1.0 = nominal)."""
        if factor <= 0:
            raise ValueError("bandwidth factor must be positive")
        self.bandwidth_factor = factor

    def start_flap(self, machine_id: int, until: float) -> None:
        """Declare ``machine_id``'s link unreachable until ``until``."""
        if machine_id not in self.machine_ids:
            raise KeyError(f"machine {machine_id} is not a rollout machine")
        self._flap_until[machine_id] = max(self._flap_until.get(machine_id, 0.0), until)

    def flap_remaining(self, machine_id: int, time: float) -> float:
        """Seconds of link flap left on ``machine_id`` at ``time`` (0 if up)."""
        return max(0.0, self._flap_until.get(machine_id, 0.0) - time)

    def _ride_out_flap(self, machine_id: int, time: float) -> float:
        """Bounded-backoff wait to get a sync through a flapping link."""
        outage = self.flap_remaining(machine_id, time)
        if outage <= 0:
            return 0.0
        wait, retries = self.retry_policy.wait_through(outage)
        self.sync_retries += retries
        self.retry_backoff_total += wait
        return wait

    # ------------------------------------------------------------------ topology
    @property
    def num_machines(self) -> int:
        return len(self.healthy_machines())

    def healthy_machines(self) -> List[int]:
        return [m for m in self.machine_ids if m not in self.failed_machines]

    def fail_machine(self, machine_id: int) -> float:
        """Mark a machine failed; rebuild the broadcast chain (§4.3).

        Returns the repair latency, a constant-time operation (<1 s).
        """
        if machine_id not in self.machine_ids:
            raise KeyError(f"machine {machine_id} is not a rollout machine")
        self.failed_machines.add(machine_id)
        self.chain_rebuilds += 1
        repair = 0.5
        if machine_id == self.master_machine:
            healthy = self.healthy_machines()
            if not healthy:
                raise RuntimeError("all relay machines have failed")
            self.master_machine = healthy[0]
            self.master_failovers += 1
            repair += 0.5  # trainer is re-pointed at the new master relay
        return repair

    def recover_machine(self, machine_id: int, time: float) -> float:
        """Re-admit a machine: its relay syncs the newest weights from the master.

        Returns the time at which the machine's relay is caught up.
        """
        self.failed_machines.discard(machine_id)
        latest = self.latest_version()
        catch_up = self.effective_inter_link().transfer_time(self.model.weight_bytes)
        publication = self.publications[latest]
        publication.available_at[machine_id] = max(time, publication.master_available_at) + catch_up
        return max(time, publication.master_available_at) + catch_up

    # ------------------------------------------------------------------ publish
    def actor_push_time(self) -> float:
        """Actor stall: one RDMA transfer of the full weights to the master relay."""
        return self.effective_inter_link().transfer_time(self.model.weight_bytes) + PUBLISH_OVERHEAD

    def reshard_time(self) -> float:
        return RESHARD_SECONDS_PER_GB * self.model.weight_bytes / 1e9

    def broadcast_time(self) -> float:
        """Chain-pipelined broadcast from the master to all other relays."""
        return chain_pipelined_broadcast_time(
            self.model.weight_bytes, self.num_machines, link=self.effective_inter_link()
        )

    def publish(self, version: int, time: float) -> WeightPublication:
        """Record the actor publishing ``version`` at ``time``.

        The actor stalls only for the push to the master relay; resharding and
        the chain broadcast run in the background on CPUs (§3.2 steps 5-6).
        """
        if version in self.publications:
            raise ValueError(f"version {version} already published")
        if version != self.latest_version() + 1:
            raise ValueError("weight versions must be published in order")
        actor_stall = self.actor_push_time()
        master_ready = time + actor_stall + self.reshard_time()
        broadcast_done = master_ready + self.broadcast_time()
        available: Dict[int, float] = {}
        healthy = self.healthy_machines()
        for index, machine_id in enumerate(healthy):
            if machine_id == self.master_machine:
                arrival = master_ready
            else:
                # The chain delivers machines progressively; interpolate their
                # completion between master_ready and broadcast_done.
                fraction = (index + 1) / max(1, len(healthy))
                arrival = master_ready + fraction * (broadcast_done - master_ready)
                # A flapping link delays delivery: the chain segment retries
                # with bounded backoff until the flap window has passed.
                flap_end = self._flap_until.get(machine_id, 0.0)
                if arrival < flap_end:
                    arrival += self._ride_out_flap(machine_id, arrival)
            available[machine_id] = arrival
        publication = WeightPublication(
            version=version,
            publish_time=time,
            actor_stall=actor_stall,
            master_available_at=master_ready,
            broadcast_complete_at=broadcast_done,
            available_at=available,
        )
        self.publications[version] = publication
        return publication

    def latest_version(self) -> int:
        return max(self.publications)

    # ------------------------------------------------------------------ pull
    def available_version(self, machine_id: int, time: float) -> int:
        """Newest version whose weights are resident on ``machine_id`` at ``time``."""
        best = 0
        for version, publication in self.publications.items():
            available = publication.available_at.get(machine_id)
            if available is not None and available <= time and version > best:
                best = version
        return best

    def pull_latency(self, machine_id: int, time: float, replica_id: int = -1) -> PullRecord:
        """A rollout pulls the newest weights from its colocated relay.

        Best case (§8.3): the weights are already in the relay's CPU memory and
        the rollout only pays the PCIe load of its shard, with the TP group
        loading its shards in parallel.  If a newer version is mid-broadcast
        and strictly newer than what is resident, the rollout does NOT wait —
        it takes the resident version (rollouts never block on the broadcast).
        """
        resident = self.available_version(machine_id, time)
        shard_bytes = self.model.weight_bytes / self.rollout_tensor_parallel
        load = self.pcie_link.transfer_time(shard_bytes)
        record = PullRecord(
            replica_id=replica_id,
            machine_id=machine_id,
            version=resident,
            request_time=time,
            wait_time=load,
            local_hit=True,
        )
        self.pulls.append(record)
        return record

    def pull_specific_version(
        self, machine_id: int, version: int, time: float, replica_id: int = -1
    ) -> PullRecord:
        """Pull a specific version, waiting for its broadcast if necessary.

        Used during failover when a replacement replica must join an existing
        weight-version group (§3.3).
        """
        publication = self.publications.get(version)
        if publication is None:
            raise KeyError(f"version {version} was never published")
        available = publication.available_at.get(machine_id)
        if available is None:
            available = publication.broadcast_complete_at
        wait_for_broadcast = max(0.0, available - time)
        if wait_for_broadcast > 0:
            # The joining replica must fetch through the inter-machine link;
            # if its link is flapping, bounded-backoff retries ride it out.
            wait_for_broadcast += self._ride_out_flap(machine_id, time)
        shard_bytes = self.model.weight_bytes / self.rollout_tensor_parallel
        load = self.pcie_link.transfer_time(shard_bytes)
        record = PullRecord(
            replica_id=replica_id,
            machine_id=machine_id,
            version=version,
            request_time=time,
            wait_time=wait_for_broadcast + load,
            local_hit=wait_for_broadcast <= 0.0,
        )
        self.pulls.append(record)
        return record

    # ------------------------------------------------------------------ statistics
    def mean_pull_wait(self) -> float:
        if not self.pulls:
            return 0.0
        return sum(p.wait_time for p in self.pulls) / len(self.pulls)

    def best_pull_wait(self) -> float:
        if not self.pulls:
            return 0.0
        return min(p.wait_time for p in self.pulls)

    def total_actor_stall(self) -> float:
        return sum(p.actor_stall for p in self.publications.values())

"""Synchronous colocated baseline (verl v0.5 with HybridEngine placement).

All GPUs alternate between the generation and training stages (§2.2, Fig 3a):
generate the full global batch, switch the engines, train on it, switch back.
The stages run strictly in sequence on the event clock — the generation stage
is an ``AllOf`` join over the replica processes and ends only when the single
slowest long-tail trajectory completes (the bubbles Laminar removes), and the
switch/training stages are plain timeouts on the same environment.
"""

from __future__ import annotations

from typing import Generator

from ..metrics.results import StageBreakdown, SystemRunResult
from ..sim.engine import Environment
from .base import COLOCATED_SWITCH_OVERHEAD, System, SystemCapabilities, register


@register
class VerlSynchronous(System):
    """Fully synchronous, on-policy, colocated RL training."""

    name = "verl"
    capabilities = SystemCapabilities(
        description="verl v0.5: fully synchronous, on-policy, colocated "
                    "(HybridEngine) RL training",
        colocated=True,
        weight_sync="switch",
        staleness="on_policy",
        default_staleness_bound=0,
        default_max_concurrency=8192,
        trace_spans=("iteration", "generation", "training", "weight_sync"),
    )

    def build(self, env: Environment, result: SystemRunResult,
              num_iterations: int) -> Generator:
        tracer = env.tracer
        for _ in range(num_iterations):
            start = env.now
            # --- generation stage: all GPUs act as rollout replicas ------------
            outcome = yield from self.generate_batch_process(env, self.trainer.weight_version)
            gen_end = env.now
            yield env.timeout(COLOCATED_SWITCH_OVERHEAD)
            # --- training stage: same GPUs switch to the actor -----------------
            self.score_and_buffer(outcome.trajectories, self.trainer.weight_version)
            batch = self.buffer.sample(self.config.global_batch_size)
            tokens = sum(exp.tokens for exp in batch)
            train_time = self.trainer.iteration_compute_time(tokens)
            yield env.timeout(train_time + COLOCATED_SWITCH_OVERHEAD)
            record = self.trainer.record_iteration(batch, start, env.now)
            result.iterations.append(record)
            result.breakdowns.append(
                StageBreakdown(
                    generation_time=outcome.duration,
                    training_time=train_time,
                    weight_sync_time=2 * COLOCATED_SWITCH_OVERHEAD,
                    bubble_time=outcome.bubble_time,
                )
            )
            self.record_batch_staleness(env, result, batch)
            if tracer.enabled:
                index = len(result.iterations)
                train_start = gen_end + COLOCATED_SWITCH_OVERHEAD
                tracer.span("rollout", "generation", start, gen_end,
                            args={"tokens": outcome.tokens_generated})
                tracer.span("sync", "weight_sync", gen_end, train_start,
                            args={"mechanism": "switch"})
                tracer.span("trainer", "training", train_start,
                            train_start + train_time, args={"tokens": tokens})
                tracer.span("sync", "weight_sync", train_start + train_time,
                            env.now, args={"mechanism": "switch"})
                tracer.span("trainer", "iteration", start, env.now,
                            args={"iteration": index})

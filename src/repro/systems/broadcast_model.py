"""Appendix D: analytical model of the chain-based pipelined broadcast.

Provides the closed-form latency expressions (Eq. 1, the optimal chunk count
k*, and T*(p)) plus the comparison against the baselines' GPU-direct global
synchronization — the data behind Fig 14 and Fig 18.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..llm.model_spec import ModelSpec
from ..sim.network import (
    LinkSpec,
    PCIE_LINK,
    RDMA_LINK,
    RDMA_SINGLE_NIC_LINK,
    RetryPolicy,
    chain_pipelined_broadcast_time,
    gpu_direct_global_sync_time,
    optimal_chain_broadcast_time,
    optimal_chunk_count,
    storage_system_sync_time,
)


@dataclass(frozen=True)
class BroadcastBreakdown:
    """Decomposition of T*(p) into the Appendix-D terms."""

    bandwidth_term: float
    latency_term: float
    pipeline_term: float

    @property
    def total(self) -> float:
        return self.bandwidth_term + self.latency_term + self.pipeline_term


def broadcast_latency(model: ModelSpec, num_machines: int,
                      link: LinkSpec = RDMA_SINGLE_NIC_LINK, chunks: int | None = None) -> float:
    """Latency of broadcasting ``model``'s weights to ``num_machines`` relays."""
    return chain_pipelined_broadcast_time(model.weight_bytes, num_machines, chunks, link)


def broadcast_breakdown(model: ModelSpec, num_machines: int,
                        link: LinkSpec = RDMA_SINGLE_NIC_LINK) -> BroadcastBreakdown:
    """The three terms of T*(p): bandwidth, latency and pipeline (Appendix D.3)."""
    nbytes = model.weight_bytes
    t_byte = 1.0 / link.bandwidth
    p = num_machines
    if p <= 2:
        return BroadcastBreakdown(nbytes * t_byte, max(0, p - 1) * link.startup, 0.0)
    pipeline = 2.0 * ((p - 2) * nbytes * t_byte * link.startup) ** 0.5
    return BroadcastBreakdown(
        bandwidth_term=nbytes * t_byte,
        latency_term=(p - 2) * link.startup,
        pipeline_term=pipeline,
    )


def figure18_series(model: ModelSpec, machine_counts: List[int] | None = None,
                    link: LinkSpec = RDMA_SINGLE_NIC_LINK) -> Dict[int, float]:
    """Relay broadcast latency vs number of machines (Fig 18)."""
    machine_counts = machine_counts or [4, 8, 16, 32, 64, 128]
    return {m: broadcast_latency(model, m, link) for m in machine_counts}


def rollout_wait_comparison(
    model: ModelSpec,
    rollout_gpus: int,
    rollout_tensor_parallel: int,
    gpus_per_machine: int = 8,
    broadcast_wait_fraction: float = 0.15,
) -> Dict[str, float]:
    """Fig 14 comparison: rollout waiting time, Laminar relay vs GPU-direct sync.

    * ``gpu_direct``: every rollout participates in a blocking NCCL broadcast
      from the actor, whose latency grows with the number of rollout machines.
    * ``laminar_best``: the weights are already resident on the colocated relay
      and the rollout only pays the parallel PCIe shard load.
    * ``laminar_mean``: a fraction of pulls land while the relay broadcast is
      still in flight and additionally wait for part of it; with trajectory-
      level asynchrony the fraction is small (§8.3).
    """
    if rollout_gpus <= 0:
        raise ValueError("rollout_gpus must be positive")
    machines = max(1, rollout_gpus // gpus_per_machine)
    gpu_direct = gpu_direct_global_sync_time(model.weight_bytes, machines)
    shard = model.weight_bytes / max(1, rollout_tensor_parallel)
    pcie_load = PCIE_LINK.transfer_time(shard)
    broadcast = broadcast_latency(model, machines)
    return {
        "gpu_direct": gpu_direct,
        "laminar_best": pcie_load,
        "laminar_mean": pcie_load + broadcast_wait_fraction * broadcast,
        "relay_broadcast": broadcast,
        "num_machines": float(machines),
    }


def storage_vs_relay(model: ModelSpec, num_readers: int) -> Dict[str, float]:
    """§4.1 motivation: NFS/Redis-style weight sync vs the relay design."""
    return {
        "storage_system": storage_system_sync_time(model.weight_bytes, num_readers),
        "relay_chain": broadcast_latency(model, max(2, num_readers)),
    }


def degraded_broadcast_series(
    model: ModelSpec,
    num_machines: int,
    bandwidth_factors: List[float],
    link: LinkSpec = RDMA_SINGLE_NIC_LINK,
) -> Dict[float, float]:
    """Broadcast latency under each bandwidth-dip factor (repro.faults).

    Each factor scales the inter-machine link's bandwidth; the chunked-chain
    expression re-optimises its chunk count for the degraded link, so the
    series shows how gracefully the pipeline absorbs a dip (the latency term
    is unchanged — only the bandwidth and pipeline terms grow).
    """
    series: Dict[float, float] = {}
    for factor in bandwidth_factors:
        series[factor] = broadcast_latency(model, num_machines, link.scaled(factor))
    return series


def broadcast_with_flap(
    model: ModelSpec,
    num_machines: int,
    flap_seconds: float,
    policy: RetryPolicy | None = None,
    link: LinkSpec = RDMA_SINGLE_NIC_LINK,
) -> Dict[str, float]:
    """Chain broadcast latency when one chain link flaps for ``flap_seconds``.

    The broadcast pays the nominal chain time plus the bounded-backoff wait
    needed to get the flapped segment through (the relay's §4.3 rebuild is
    the crash path; a flap is ridden out with retries instead).
    """
    policy = policy or RetryPolicy()
    nominal = broadcast_latency(model, num_machines, link)
    backoff, retries = policy.wait_through(flap_seconds)
    return {
        "nominal": nominal,
        "retry_backoff": backoff,
        "retries": float(retries),
        "total": nominal + backoff,
    }


def optimal_chunks(model: ModelSpec, num_machines: int, link: LinkSpec = RDMA_SINGLE_NIC_LINK) -> int:
    return optimal_chunk_count(model.weight_bytes, num_machines, link)


def optimal_broadcast_latency(model: ModelSpec, num_machines: int,
                              link: LinkSpec = RDMA_SINGLE_NIC_LINK) -> float:
    return optimal_chain_broadcast_time(model.weight_bytes, num_machines, link)

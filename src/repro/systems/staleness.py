"""Inherent-staleness bookkeeping (§6, Fig 10).

Under trajectory-level asynchrony each trajectory's staleness is *emergent*:
it equals the number of actor updates that completed while the trajectory was
being generated.  This module tracks per-trajectory staleness at completion
time and aggregates the distribution over finish-time ranges, which is exactly
what Figure 10 plots.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..types import Trajectory


@dataclass
class StalenessSample:
    """Staleness of one trajectory at the moment its generation finished."""

    traj_id: int
    finish_time: float
    generation_latency: float
    staleness: int


@dataclass
class StalenessTracker:
    """Collects staleness samples and produces Fig 10-style histograms."""

    samples: List[StalenessSample] = field(default_factory=list)

    def record(self, trajectory: Trajectory, actor_version_at_finish: int) -> StalenessSample:
        if trajectory.finish_time is None:
            raise ValueError("trajectory has no finish_time yet")
        sample = StalenessSample(
            traj_id=trajectory.traj_id,
            finish_time=trajectory.finish_time,
            generation_latency=trajectory.finish_time - trajectory.start_time,
            staleness=trajectory.inherent_staleness(actor_version_at_finish),
        )
        self.samples.append(sample)
        return sample

    def __len__(self) -> int:
        return len(self.samples)

    # -- aggregation -----------------------------------------------------------
    def distribution(self) -> Dict[int, float]:
        """Overall staleness distribution as fractions summing to 1."""
        if not self.samples:
            return {}
        counts = Counter(s.staleness for s in self.samples)
        total = len(self.samples)
        return {staleness: count / total for staleness, count in sorted(counts.items())}

    def max_staleness(self) -> int:
        return max((s.staleness for s in self.samples), default=0)

    def mean_staleness(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.staleness for s in self.samples) / len(self.samples)

    def by_finish_time_bucket(
        self, bucket_seconds: float = 1800.0
    ) -> Dict[Tuple[float, float], Dict[int, float]]:
        """Staleness distribution per finish-time range (Fig 10 x-axis buckets).

        Figure 10 uses half-hour buckets over an 8-hour run; the bucket width
        is configurable so scaled-down simulations produce meaningful plots.
        """
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        buckets: Dict[Tuple[float, float], Counter] = {}
        for sample in self.samples:
            index = int(sample.finish_time // bucket_seconds)
            key = (index * bucket_seconds, (index + 1) * bucket_seconds)
            buckets.setdefault(key, Counter())[sample.staleness] += 1
        result: Dict[Tuple[float, float], Dict[int, float]] = {}
        for key in sorted(buckets):
            counter = buckets[key]
            total = sum(counter.values())
            result[key] = {s: c / total for s, c in sorted(counter.items())}
        return result

    def fraction_at_most(self, staleness: int) -> float:
        """Fraction of trajectories with staleness <= the given value."""
        if not self.samples:
            return 0.0
        hits = sum(1 for s in self.samples if s.staleness <= staleness)
        return hits / len(self.samples)

"""One-step staleness pipeline baseline (Fig 3b).

Actor and rollouts live on disjoint GPU sets.  While the actor trains on the
batch generated during the previous iteration, the rollouts generate the next
batch with the previous weights (k = 1 bounded staleness).  At the end of the
iteration a blocking GPU-direct global weight synchronization distributes the
new weights to every rollout.

The iteration clock is pure event arithmetic: the training stage and the
generation barrier run as concurrent processes started at the iteration
origin, the iteration's compute phase ends at their ``AllOf`` join (the
pipeline hides whichever stage is shorter), and the blocking global sync is a
plain timeout after the join.  The generation barrier — an ``AllOf`` over
anchored replica drains — still ends only when the slowest long-tail
trajectory finishes.
"""

from __future__ import annotations

from typing import Generator

from ..metrics.results import StageBreakdown, SystemRunResult
from ..sim.engine import Environment
from .base import System, SystemCapabilities, register


@register
class OneStepStaleness(System):
    """k=1 bounded-staleness pipelined RL training."""

    name = "one_step"
    capabilities = SystemCapabilities(
        description="one-step staleness pipeline: train on batch i while "
                    "generating batch i+1, blocking global sync per iteration",
        weight_sync="global",
        staleness="bounded",
        default_staleness_bound=1,
        default_max_concurrency=8192,
        trace_spans=("iteration", "generation", "training", "weight_sync"),
    )

    def build(self, env: Environment, result: SystemRunResult,
              num_iterations: int) -> Generator:
        tracer = env.tracer
        sync_time = self.global_sync_time()

        # Pipeline fill: generate the first batch before training can start.
        fill_start = env.now
        outcome = yield from self.generate_batch_process(env, 0, origin=env.now)
        if tracer.enabled:
            tracer.span("rollout", "generation", fill_start, env.now,
                        args={"tokens": outcome.tokens_generated,
                              "phase": "pipeline_fill"})
            tracer.span("sync", "weight_sync", env.now, env.now + sync_time)
        yield env.timeout(sync_time)
        self.score_and_buffer(outcome.trajectories, self.trainer.weight_version)

        for _ in range(num_iterations):
            start = env.now
            batch = self.buffer.sample(self.config.global_batch_size)
            tokens = sum(exp.tokens for exp in batch)
            train_time = self.trainer.iteration_compute_time(tokens)

            # Rollouts generate the next batch with the current (pre-update)
            # weights while the actor trains; both stages start at the
            # iteration origin and the iteration's compute phase is their
            # AllOf join.  The blocking global sync then couples every
            # rollout to the new weights.
            generation = env.process(
                self._generation(env, start), name=f"{self.name}-generation"
            )
            training = env.process(self._training(env, train_time),
                                   name=f"{self.name}-training")
            yield env.all_of([generation, training])
            join = env.now
            yield env.timeout(sync_time)
            outcome = generation.value
            record = self.trainer.record_iteration(batch, start, env.now)
            # The freshly generated batch becomes visible only now, after the
            # global synchronization barrier.
            self.score_and_buffer(outcome.trajectories, self.trainer.weight_version)

            stage_time = max(train_time, outcome.duration)
            result.iterations.append(record)
            result.breakdowns.append(
                StageBreakdown(
                    generation_time=outcome.duration,
                    training_time=train_time,
                    weight_sync_time=sync_time,
                    bubble_time=outcome.bubble_time + max(0.0, stage_time - outcome.duration),
                )
            )
            self.record_batch_staleness(env, result, batch)
            if tracer.enabled:
                tracer.span("rollout", "generation", start, start + outcome.duration,
                            args={"tokens": outcome.tokens_generated})
                tracer.span("trainer", "training", start, start + train_time,
                            args={"tokens": tokens})
                tracer.span("sync", "weight_sync", join, env.now)
                tracer.span("trainer", "iteration", start, env.now,
                            args={"iteration": len(result.iterations)})
        result.extras["global_sync_time"] = sync_time

    # ------------------------------------------------------------------ stages
    def _generation(self, env: Environment, origin: float) -> Generator:
        outcome = yield from self.generate_batch_process(
            env, self.trainer.weight_version, origin=origin
        )
        return outcome

    def _training(self, env: Environment, train_time: float) -> Generator:
        yield env.timeout(train_time)

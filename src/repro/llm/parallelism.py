"""Parallelism layouts and per-GPU shard sizes.

The baselines and Laminar place the actor with FSDP (+ Ulysses sequence
parallelism) or Megatron TP/PP, and rollouts with vLLM tensor parallelism
(Table 2 / Appendix A.2).  This module computes shard sizes, memory footprints
and the communication volumes that the weight-synchronization models need.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model_spec import FP32_BYTES, ModelSpec


@dataclass(frozen=True)
class ParallelConfig:
    """A parallelism layout over a group of GPUs."""

    tensor_parallel: int = 1
    pipeline_parallel: int = 1
    data_parallel: int = 1
    sequence_parallel: int = 1

    def __post_init__(self) -> None:
        for name in ("tensor_parallel", "pipeline_parallel", "data_parallel", "sequence_parallel"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def model_shards(self) -> int:
        """GPUs across which one model replica is sharded."""
        return self.tensor_parallel * self.pipeline_parallel

    @property
    def world_size(self) -> int:
        return self.model_shards * self.data_parallel

    def shard_bytes(self, model: ModelSpec) -> float:
        """Weight bytes held by a single GPU."""
        return model.weight_bytes / self.model_shards


def rollout_parallel_config(model: ModelSpec, tensor_parallel: int) -> ParallelConfig:
    """vLLM-style rollout layout: pure TP within one machine."""
    return ParallelConfig(tensor_parallel=tensor_parallel)


def fsdp_trainer_config(num_gpus: int, fsdp_size: int, sequence_parallel: int = 1) -> ParallelConfig:
    """verl-style FSDP trainer layout (DDP across FSDP groups)."""
    if num_gpus % fsdp_size != 0:
        raise ValueError(f"num_gpus={num_gpus} not divisible by fsdp_size={fsdp_size}")
    return ParallelConfig(
        tensor_parallel=fsdp_size,
        data_parallel=num_gpus // fsdp_size,
        sequence_parallel=sequence_parallel,
    )


def megatron_trainer_config(
    num_gpus: int, tensor_parallel: int, pipeline_parallel: int
) -> ParallelConfig:
    """AReaL-style Megatron layout: DP derived from the remaining GPUs."""
    shards = tensor_parallel * pipeline_parallel
    if num_gpus % shards != 0:
        raise ValueError(
            f"num_gpus={num_gpus} not divisible by TP*PP={shards}"
        )
    return ParallelConfig(
        tensor_parallel=tensor_parallel,
        pipeline_parallel=pipeline_parallel,
        data_parallel=num_gpus // shards,
    )


@dataclass(frozen=True)
class TrainingMemoryModel:
    """Per-GPU memory footprint of the actor under mixed-precision training.

    Weights (bf16) + gradients (bf16) + Adam moments (2 x fp32) + fp32 master
    weights, all sharded across the FSDP/TP group, plus activation memory that
    scales with the per-GPU token count.
    """

    model: ModelSpec
    config: ParallelConfig
    activation_bytes_per_token: float = 0.0

    def parameter_state_bytes(self) -> float:
        per_param = (
            self.model.dtype_bytes  # weights
            + self.model.dtype_bytes  # gradients
            + 2 * FP32_BYTES  # Adam m, v
            + FP32_BYTES  # master weights
        )
        return self.model.num_parameters * per_param / self.config.model_shards

    def activation_bytes(self, tokens_per_gpu: int) -> float:
        per_token = self.activation_bytes_per_token
        if per_token <= 0:
            # Rough transformer activation estimate with checkpointing:
            # ~ 2 * hidden * layers bytes/token in bf16, reduced by SP.
            per_token = (
                2.0
                * self.model.hidden_size
                * self.model.num_layers
                * self.model.dtype_bytes
                / self.config.sequence_parallel
            )
        return per_token * tokens_per_gpu

    def total_bytes(self, tokens_per_gpu: int) -> float:
        return self.parameter_state_bytes() + self.activation_bytes(tokens_per_gpu)

    def fits(self, gpu_memory_bytes: float, tokens_per_gpu: int, reserve: float = 0.1) -> bool:
        """True if the footprint fits in GPU memory with a ``reserve`` fraction spare."""
        return self.total_bytes(tokens_per_gpu) <= gpu_memory_bytes * (1.0 - reserve)


def rollout_free_memory_for_kvcache(
    model: ModelSpec,
    gpu_memory_bytes: float,
    tensor_parallel: int,
    activation_reserve_fraction: float = 0.1,
) -> float:
    """GPU memory left for the KVCache after weights and activation reserve.

    vLLM reserves the model shard plus a working-set fraction; everything else
    becomes KVCache blocks.  Returns bytes available on ONE GPU of the
    tensor-parallel group.
    """
    if not 0 <= activation_reserve_fraction < 1:
        raise ValueError("activation_reserve_fraction must be in [0, 1)")
    shard = model.weight_bytes / tensor_parallel
    free = gpu_memory_bytes * (1.0 - activation_reserve_fraction) - shard
    return max(0.0, free)

"""Transformer architecture specifications and parameter/byte/FLOP math.

The evaluation uses Qwen2.5 models at 7B, 32B and 72B (§8).  All latency
models in :mod:`repro.llm` derive their costs from the architecture numbers
below, so the reproduction tracks how model size shifts the decode roofline,
weight-transfer volumes and training FLOPs.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Bytes per parameter / activation element in BF16.
BF16_BYTES = 2
#: Bytes per parameter in FP32 (optimizer master weights).
FP32_BYTES = 4


@dataclass(frozen=True)
class ModelSpec:
    """Architecture of a decoder-only transformer."""

    name: str
    num_layers: int
    hidden_size: int
    intermediate_size: int
    num_attention_heads: int
    num_kv_heads: int
    vocab_size: int
    max_position_embeddings: int = 32768
    dtype_bytes: int = BF16_BYTES

    # -- derived sizes --------------------------------------------------------
    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_attention_heads

    @property
    def attention_params(self) -> int:
        """Per-layer attention parameters (GQA: separate KV head count)."""
        q = self.hidden_size * self.hidden_size
        kv = 2 * self.hidden_size * (self.num_kv_heads * self.head_dim)
        out = self.hidden_size * self.hidden_size
        return q + kv + out

    @property
    def mlp_params(self) -> int:
        """Per-layer gated-MLP parameters (gate, up, down projections)."""
        return 3 * self.hidden_size * self.intermediate_size

    @property
    def layer_params(self) -> int:
        # Two RMSNorm weight vectors per layer.
        return self.attention_params + self.mlp_params + 2 * self.hidden_size

    @property
    def embedding_params(self) -> int:
        return self.vocab_size * self.hidden_size

    @property
    def num_parameters(self) -> int:
        """Total parameter count (tied LM head excluded; Qwen2.5 unties >7B)."""
        lm_head = self.vocab_size * self.hidden_size
        return self.num_layers * self.layer_params + self.embedding_params + lm_head

    @property
    def weight_bytes(self) -> float:
        """Size of the full model weights in the serving dtype."""
        return float(self.num_parameters) * self.dtype_bytes

    # -- KVCache ---------------------------------------------------------------
    @property
    def kv_bytes_per_token(self) -> float:
        """KVCache bytes for one token of one sequence (full model)."""
        return float(
            2 * self.num_layers * self.num_kv_heads * self.head_dim * self.dtype_bytes
        )

    def kv_bytes_per_token_sharded(self, tensor_parallel: int) -> float:
        """Per-GPU KVCache bytes per token under tensor parallelism."""
        if tensor_parallel <= 0:
            raise ValueError("tensor_parallel must be positive")
        return self.kv_bytes_per_token / tensor_parallel

    # -- FLOPs -------------------------------------------------------------------
    def flops_per_token(self, context_length: int = 0) -> float:
        """Forward-pass FLOPs to process one token.

        The classic 2 * N_params matmul term plus the attention score/value
        term, which grows with the current context length.
        """
        dense = 2.0 * self.num_parameters
        attention = 4.0 * self.num_layers * self.hidden_size * max(0, context_length)
        return dense + attention

    def training_flops_per_token(self, context_length: int = 0) -> float:
        """Forward + backward FLOPs per trained token (3x forward)."""
        return 3.0 * self.flops_per_token(context_length)


# -- Qwen2.5 family (per the Qwen2.5 technical report) -------------------------

QWEN_7B = ModelSpec(
    name="Qwen2.5-7B",
    num_layers=28,
    hidden_size=3584,
    intermediate_size=18944,
    num_attention_heads=28,
    num_kv_heads=4,
    vocab_size=152064,
)

QWEN_32B = ModelSpec(
    name="Qwen2.5-32B",
    num_layers=64,
    hidden_size=5120,
    intermediate_size=27648,
    num_attention_heads=40,
    num_kv_heads=8,
    vocab_size=152064,
)

QWEN_72B = ModelSpec(
    name="Qwen2.5-72B",
    num_layers=80,
    hidden_size=8192,
    intermediate_size=29568,
    num_attention_heads=64,
    num_kv_heads=8,
    vocab_size=152064,
)

MODEL_REGISTRY = {
    "7B": QWEN_7B,
    "32B": QWEN_32B,
    "72B": QWEN_72B,
    QWEN_7B.name: QWEN_7B,
    QWEN_32B.name: QWEN_32B,
    QWEN_72B.name: QWEN_72B,
}


def get_model(name: str) -> ModelSpec:
    """Look a model up by short ("7B") or full ("Qwen2.5-7B") name."""
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; known: {sorted(set(MODEL_REGISTRY))}"
        ) from None

"""Latency model for the actor training stage.

The trainer processes one *global batch* (8192 trajectories in §8) per RL
iteration, split into mini-batches (16 update steps per iteration in §8).
Each mini-batch step costs forward+backward FLOPs on every token plus a
gradient synchronization.  Experience preparation (reference / reward model
forward passes and advantage computation) adds a fixed fraction of iteration
time — the paper measures it at 7.3% of the RL iteration (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.cluster import GPUSpec, H800
from ..sim.network import RDMA_LINK, LinkSpec
from .model_spec import ModelSpec
from .parallelism import ParallelConfig


#: Fraction of iteration time spent preparing experiences (§2.2).
EXPERIENCE_PREP_FRACTION = 0.073
#: Fixed per-optimizer-step overhead (optimizer kernels, logging), seconds.
OPTIMIZER_STEP_OVERHEAD = 0.25


@dataclass(frozen=True)
class TrainingModel:
    """Iteration/mini-batch latency model for the actor (and critic if any)."""

    model: ModelSpec
    config: ParallelConfig
    gpu: GPUSpec = H800
    inter_link: LinkSpec = RDMA_LINK
    #: Multiplier for additional colocated models executed in time-sharing
    #: (reference model forward, reward model).  GRPO needs only the reference
    #: forward, so the default adds one forward pass worth of work.
    auxiliary_forward_factor: float = 1.0 / 3.0

    @property
    def num_gpus(self) -> int:
        return self.config.world_size

    @property
    def effective_flops(self) -> float:
        return self.gpu.peak_flops_bf16 * self.gpu.mfu * self.num_gpus

    # -- mini-batch / iteration costs ---------------------------------------------
    def minibatch_step_time(self, tokens_in_minibatch: float, mean_context: int = 0) -> float:
        """Latency of one optimizer step over ``tokens_in_minibatch`` tokens."""
        if tokens_in_minibatch < 0:
            raise ValueError("tokens_in_minibatch must be non-negative")
        flops = tokens_in_minibatch * self.model.training_flops_per_token(mean_context)
        flops *= 1.0 + self.auxiliary_forward_factor
        compute = flops / self.effective_flops
        return compute + self.gradient_sync_time() + OPTIMIZER_STEP_OVERHEAD

    def gradient_sync_time(self) -> float:
        """Gradient all-reduce / reduce-scatter time across data-parallel ranks.

        Ring all-reduce moves ~2x the sharded gradient bytes per rank.
        """
        if self.config.data_parallel <= 1:
            return 0.0
        grad_bytes_per_rank = self.model.weight_bytes / self.config.model_shards
        return self.inter_link.transfer_time(2.0 * grad_bytes_per_rank)

    def iteration_time(
        self,
        total_tokens: float,
        num_minibatches: int,
        mean_context: int = 0,
        include_experience_prep: bool = True,
    ) -> float:
        """Training-stage latency of one full RL iteration."""
        if num_minibatches <= 0:
            raise ValueError("num_minibatches must be positive")
        per_minibatch = self.minibatch_step_time(total_tokens / num_minibatches, mean_context)
        total = per_minibatch * num_minibatches
        if include_experience_prep:
            total *= 1.0 + EXPERIENCE_PREP_FRACTION
        return total

    # -- memory-driven feasibility ---------------------------------------------------
    def max_tokens_per_gpu(self, gpu_memory_bytes: float | None = None) -> float:
        """Rough bound on trainable tokens per GPU given activation memory."""
        gpu_memory_bytes = gpu_memory_bytes or self.gpu.memory_bytes
        per_param_state = (2 + 2 + 8 + 4)  # bf16 w/g + fp32 m/v + master
        state = self.model.num_parameters * per_param_state / self.config.model_shards
        free = gpu_memory_bytes * 0.9 - state
        act_per_token = (
            2.0 * self.model.hidden_size * self.model.num_layers * self.model.dtype_bytes
            / max(1, self.config.sequence_parallel)
        )
        if free <= 0 or act_per_token <= 0:
            return 0.0
        return free / act_per_token

"""LLM architecture specs and analytical latency models."""

from .model_spec import (
    BF16_BYTES,
    FP32_BYTES,
    MODEL_REGISTRY,
    ModelSpec,
    QWEN_7B,
    QWEN_32B,
    QWEN_72B,
    get_model,
)
from .parallelism import (
    ParallelConfig,
    TrainingMemoryModel,
    fsdp_trainer_config,
    megatron_trainer_config,
    rollout_free_memory_for_kvcache,
    rollout_parallel_config,
)
from .decode_model import DECODE_STEP_OVERHEAD, DecodeModel
from .training_model import EXPERIENCE_PREP_FRACTION, TrainingModel

__all__ = [
    "BF16_BYTES",
    "FP32_BYTES",
    "MODEL_REGISTRY",
    "ModelSpec",
    "QWEN_7B",
    "QWEN_32B",
    "QWEN_72B",
    "get_model",
    "ParallelConfig",
    "TrainingMemoryModel",
    "fsdp_trainer_config",
    "megatron_trainer_config",
    "rollout_free_memory_for_kvcache",
    "rollout_parallel_config",
    "DECODE_STEP_OVERHEAD",
    "DecodeModel",
    "EXPERIENCE_PREP_FRACTION",
    "TrainingModel",
]

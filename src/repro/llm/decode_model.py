"""Roofline latency model for LLM generation (decode and prefill).

Figure 4 of the paper shows that one-step decode latency is nearly flat in the
decode batch size until the operation stops being memory-bound: decoding a
batch of 8 costs almost the same as a batch of 64.  That observation is what
makes trajectory repacking free (§5.2).  We reproduce it with a roofline
model (Williams et al., cited by the paper):

* memory time  = (weight shard bytes + KV bytes read for the whole batch)
                 / effective HBM bandwidth
* compute time = 2 * params * batch / effective FLOPs (per TP shard)
* step latency = max(memory, compute) + a fixed kernel/scheduler overhead.

Prefill is compute-bound and costed from FLOPs directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.cluster import GPUSpec, H800
from .model_spec import ModelSpec


#: Fixed per-decode-step overhead (kernel launches, sampler, scheduler) in seconds.
DECODE_STEP_OVERHEAD = 4e-3
#: Fixed per-prefill overhead in seconds.
PREFILL_OVERHEAD = 8e-3


@dataclass(frozen=True)
class DecodeModel:
    """Latency model for one rollout replica (one TP group on one machine)."""

    model: ModelSpec
    gpu: GPUSpec = H800
    tensor_parallel: int = 1
    step_overhead: float = DECODE_STEP_OVERHEAD

    def __post_init__(self) -> None:
        if self.tensor_parallel <= 0:
            raise ValueError("tensor_parallel must be positive")

    # -- effective hardware rates ------------------------------------------------
    @property
    def effective_bandwidth(self) -> float:
        """Aggregate usable HBM bandwidth across the TP group (bytes/s)."""
        return self.gpu.hbm_bandwidth * self.gpu.membw_efficiency * self.tensor_parallel

    @property
    def effective_flops(self) -> float:
        """Aggregate usable FLOP/s across the TP group."""
        return self.gpu.peak_flops_bf16 * self.gpu.mfu * self.tensor_parallel

    # -- decode -------------------------------------------------------------------
    def decode_step_time(self, batch_size: int, context_length: int) -> float:
        """Latency of generating ONE token for each of ``batch_size`` sequences.

        ``context_length`` is the average number of tokens already cached per
        sequence (prompt + generated so far).
        """
        if batch_size < 0:
            raise ValueError("batch_size must be non-negative")
        if batch_size == 0:
            return 0.0
        context_length = max(1, int(context_length))

        weight_bytes = self.model.weight_bytes
        kv_read = batch_size * context_length * self.model.kv_bytes_per_token
        memory_time = (weight_bytes + kv_read) / self.effective_bandwidth

        flops = batch_size * self.model.flops_per_token(context_length)
        compute_time = flops / self.effective_flops

        return max(memory_time, compute_time) + self.step_overhead

    def decode_step_time_many(
        self, batch_sizes: np.ndarray, context_lengths: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`decode_step_time` over parallel arrays.

        Bit-identical to the scalar method lane for lane: every float
        operation is applied in the same order and association
        (``(weight + batch*ctx*kv) / bw`` vs ``batch * flops(ctx) / flops``),
        with the same ``max(1, int(ctx))`` clamp, so the fused cross-replica
        stepper can price many replicas' decode batches in one call without
        perturbing any committed baseline.  Lanes with ``batch_size == 0``
        return 0.0 like the scalar method.
        """
        batch = np.asarray(batch_sizes, dtype=np.int64)
        context = np.maximum(1, np.asarray(context_lengths, dtype=np.int64))
        return decode_step_time_arrays(
            batch,
            context,
            weight_bytes=self.model.weight_bytes,
            kv_bytes_per_token=self.model.kv_bytes_per_token,
            effective_bandwidth=self.effective_bandwidth,
            effective_flops=self.effective_flops,
            dense_flops=2.0 * self.model.num_parameters,
            attn_coef=4.0 * self.model.num_layers * self.model.hidden_size,
            step_overhead=self.step_overhead,
        )

    def decode_throughput(self, batch_size: int, context_length: int) -> float:
        """Tokens generated per second at the given batch/context."""
        step = self.decode_step_time(batch_size, context_length)
        return batch_size / step if step > 0 else 0.0

    def roofline_batch_bound(self, context_length: int) -> int:
        """Batch size at which decode transitions from memory- to compute-bound.

        This is the upper bound ``B`` used by the repack algorithm (§5.2):
        packing beyond it would start increasing per-step latency materially.
        """
        context_length = max(1, int(context_length))
        per_seq_kv = context_length * self.model.kv_bytes_per_token
        per_seq_flops = self.model.flops_per_token(context_length)
        # Solve max(memory, compute) crossover:
        #   (W + B*kv) / BW == B * F / FLOPS   =>   B = W / (F*BW/FLOPS - kv)
        denom = per_seq_flops * self.effective_bandwidth / self.effective_flops - per_seq_kv
        if denom <= 0:
            # KV traffic alone keeps decode memory-bound at any batch size; the
            # effective bound is then set by KVCache capacity, not the roofline.
            return 2**30
        bound = self.model.weight_bytes / denom
        return max(1, int(bound))

    def batch_bound_for_latency_slack(
        self, context_length: int, slack: float = 2.0, max_batch: int = 4096
    ) -> int:
        """Largest batch whose step latency stays within ``slack``x the batch-1 latency.

        The repack algorithm needs an upper bound ``B`` on how many trajectories
        may be packed onto one replica "with only a negligible increase in
        latency" (§5.2).  When KV traffic keeps decode memory-bound at every
        batch size the pure roofline crossover is unbounded, so this latency-
        slack criterion provides the practical bound.
        """
        if slack < 1.0:
            raise ValueError("slack must be >= 1.0")
        base = self.decode_step_time(1, context_length)
        low, high = 1, max_batch
        if self.decode_step_time(max_batch, context_length) <= slack * base:
            return max_batch
        while low < high:
            mid = (low + high + 1) // 2
            if self.decode_step_time(mid, context_length) <= slack * base:
                low = mid
            else:
                high = mid - 1
        return low

    # -- prefill -------------------------------------------------------------------
    def prefill_time(self, prompt_tokens: int, batch_size: int = 1) -> float:
        """Latency of prefilling ``batch_size`` prompts of ``prompt_tokens`` each."""
        if prompt_tokens < 0 or batch_size < 0:
            raise ValueError("prompt_tokens and batch_size must be non-negative")
        if prompt_tokens == 0 or batch_size == 0:
            return 0.0
        flops = batch_size * prompt_tokens * self.model.flops_per_token(prompt_tokens // 2)
        return flops / self.effective_flops + PREFILL_OVERHEAD

    def reprefill_time(self, cached_tokens: int) -> float:
        """Cost of rebuilding the KVCache for one interrupted trajectory.

        Partial-rollout systems pay this on every weight update for every
        in-flight trajectory (§2.3): the previously generated ``cached_tokens``
        must be re-prefetched through the prefill path.
        """
        return self.prefill_time(cached_tokens, batch_size=1)


def decode_step_time_arrays(
    batch: np.ndarray,
    context: np.ndarray,
    *,
    weight_bytes,
    kv_bytes_per_token,
    effective_bandwidth,
    effective_flops,
    dense_flops,
    attn_coef,
    step_overhead,
) -> np.ndarray:
    """Elementwise roofline decode-step latency over parallel lanes.

    The workhorse behind :meth:`DecodeModel.decode_step_time_many`.  Every
    parameter may be a scalar or a per-lane array, so a fused cross-replica
    sweep can mix replicas with different models/TP degrees in one call.
    ``batch`` must be int64 and ``context`` already clamped to >= 1; each
    float operation mirrors :meth:`DecodeModel.decode_step_time`'s expression
    tree exactly (same association, same int->float conversion points).
    """
    kv_read = batch * context * kv_bytes_per_token
    memory_time = (weight_bytes + kv_read) / effective_bandwidth
    flops = batch * (dense_flops + attn_coef * context)
    compute_time = flops / effective_flops
    value = np.maximum(memory_time, compute_time) + step_overhead
    return np.where(batch > 0, value, 0.0)

"""Run configuration shared by Laminar and every baseline system.

A :class:`SystemConfig` captures everything needed to simulate one point of
the evaluation grid: model, task, GPU split, parallelism, batch geometry and
the per-system knobs (staleness bound, repack, partial rollout).  The
experiment drivers in :mod:`repro.experiments` construct these from the
paper's Table 2 / Table 3 settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .llm.model_spec import ModelSpec, get_model
from .llm.parallelism import ParallelConfig, fsdp_trainer_config, megatron_trainer_config
from .sim.cluster import GPUSpec, H800
from .trainer.trainer import TrainerConfig
from .workload.datasets import TaskSpec, math_task, tool_task


@dataclass(frozen=True)
class SystemConfig:
    """Full description of one simulated RL post-training run."""

    system: str
    model_size: str
    task_type: str  # "math" or "tool"
    trainer_gpus: int
    rollout_gpus: int
    rollout_tensor_parallel: int
    trainer_parallel: ParallelConfig
    global_batch_size: int = 8192
    num_prompts_per_batch: int = 512
    num_minibatches: int = 16
    max_concurrency_per_replica: int = 1024
    #: k-step staleness bound for pipelined baselines (ignored by Laminar).
    staleness_bound: int = 1
    #: Enables the repack mechanism (Laminar only).
    repack_enabled: bool = True
    #: Repack periodic-check interval in seconds (§5.1).
    repack_interval: float = 5.0
    #: Number of measured iterations and warm-up iterations.
    num_iterations: int = 5
    warmup_iterations: int = 2
    seed: int = 0
    gpu: GPUSpec = H800
    max_tool_turns: int = 8
    #: Persistent stragglers (repro.faults): ``(replica_id, factor)`` pairs.
    #: Every system builds replicas through the shared workload, so the
    #: slowdown applies identically to barrier and continuous orchestrations
    #: in either stepping mode.  Factors multiply both decode step time and
    #: environment latency; the empty default is the nominal cluster.
    straggler_factors: Tuple[Tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        if self.trainer_gpus <= 0:
            raise ValueError("trainer_gpus must be positive")
        if self.rollout_gpus < 0:
            raise ValueError("rollout_gpus must be non-negative")
        if self.rollout_tensor_parallel <= 0:
            raise ValueError("rollout_tensor_parallel must be positive")
        if self.global_batch_size % self.num_prompts_per_batch != 0:
            raise ValueError("global_batch_size must be divisible by num_prompts_per_batch")
        if self.task_type not in ("math", "tool"):
            raise ValueError("task_type must be 'math' or 'tool'")
        if self.num_iterations <= 0:
            raise ValueError("num_iterations must be positive")
        if self.warmup_iterations < 0 or self.warmup_iterations >= self.num_iterations:
            raise ValueError("warmup_iterations must be in [0, num_iterations)")
        for entry in self.straggler_factors:
            replica_id, factor = entry
            if replica_id < 0:
                raise ValueError("straggler replica_id must be non-negative")
            if factor <= 0:
                raise ValueError("straggler factor must be positive")

    # -- derived objects -----------------------------------------------------------
    @property
    def total_gpus(self) -> int:
        """Total GPUs in the configuration (colocated systems reuse the same GPUs)."""
        if self.colocated:
            return self.trainer_gpus
        return self.trainer_gpus + self.rollout_gpus

    @property
    def colocated(self) -> bool:
        return self.rollout_gpus == 0

    @property
    def group_size(self) -> int:
        return self.global_batch_size // self.num_prompts_per_batch

    def model(self) -> ModelSpec:
        return get_model(self.model_size)

    def task(self) -> TaskSpec:
        if self.task_type == "math":
            spec = math_task(self.model_size)
        else:
            spec = tool_task(self.model_size, max_turns=self.max_tool_turns)
        if spec.group_size != self.group_size:
            spec = replace(spec, group_size=self.group_size)
        return spec

    def trainer_config(self) -> TrainerConfig:
        return TrainerConfig(
            global_batch_size=self.global_batch_size,
            num_minibatches=self.num_minibatches,
        )

    def num_rollout_replicas(self) -> int:
        """Rollout replicas (TP groups) available for generation."""
        gpus = self.trainer_gpus if self.colocated else self.rollout_gpus
        return max(1, gpus // self.rollout_tensor_parallel)

    def scaled(self, factor: float) -> "SystemConfig":
        """Return a configuration with the batch scaled down by ``factor``.

        Used by the benchmark harness to keep simulated runs fast while
        preserving the per-replica workload shape (the prompt count and batch
        size shrink together so the group size is unchanged).
        """
        if factor <= 0 or factor > 1:
            raise ValueError("factor must be in (0, 1]")
        prompts = max(1, int(round(self.num_prompts_per_batch * factor)))
        batch = prompts * self.group_size
        minibatches = min(self.num_minibatches, max(1, batch // 64))
        while batch % minibatches != 0:
            minibatches -= 1
        return replace(
            self,
            num_prompts_per_batch=prompts,
            global_batch_size=batch,
            num_minibatches=max(1, minibatches),
        )


def default_trainer_parallel(model_size: str, trainer_gpus: int, system: str) -> ParallelConfig:
    """Trainer parallelism per Appendix A.2.

    AReaL uses Megatron TP/PP; every other system uses FSDP (+ Ulysses SP).
    FSDP/TP sizes follow the appendix: 8/4 for 7B, 16/8 for 32B, 32/8 for 72B;
    AReaL uses TP,PP = (2,1), (4,2), (4,4).
    """
    if system == "areal":
        tp, pp = {"7B": (2, 1), "32B": (4, 2), "72B": (4, 4)}[model_size]
        shards = tp * pp
        if trainer_gpus < shards:
            tp, pp = trainer_gpus, 1
            shards = tp
        usable = (trainer_gpus // shards) * shards
        return megatron_trainer_config(max(shards, usable), tp, pp)
    fsdp, sp = {"7B": (8, 4), "32B": (16, 8), "72B": (32, 8)}[model_size]
    if trainer_gpus < fsdp:
        fsdp = trainer_gpus
    usable = (trainer_gpus // fsdp) * fsdp
    return fsdp_trainer_config(max(fsdp, usable), fsdp, sequence_parallel=sp)

"""AReaL-style partial-rollout baseline (Fig 3d).

Rollouts generate continuously at full concurrency (no per-iteration barrier),
and the trainer consumes a global batch from the experience buffer whenever
enough trajectories have completed.  Whenever the actor publishes new weights,
every rollout is interrupted: all in-flight trajectories switch to the new
policy version mid-generation, which requires rebuilding (re-prefilling) their
KVCache.  A single trajectory may therefore mix several policy versions
(``Trajectory.versions_used``), the re-prefill storm costs GPU time on every
iteration, and the trajectory staleness is unbounded.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..metrics.results import StageBreakdown, SystemRunResult
from ..rollout.generation import ReplicaGenerationState
from ..types import Trajectory
from .base import BaselineSystem


class PartialRollout(BaselineSystem):
    """Continuous generation with pause-and-sync partial rollouts (AReaL)."""

    name = "areal"

    #: Simulation round length (seconds) for advancing all replicas in lockstep.
    round_length: float = 20.0
    #: Bound on run-ahead: stop admitting new prompts once the buffered plus
    #: in-flight trajectories exceed this many global batches.  Keeps staleness
    #: (and the simulated warm-up transient) bounded, mirroring the data
    #: freshness controls production systems apply on top of partial rollout.
    run_ahead_batches: float = 3.0

    def __init__(self, config) -> None:
        super().__init__(config)
        self.replicas: List[ReplicaGenerationState] = []
        self._target_inflight = 0

    # ------------------------------------------------------------------ helpers
    def _concurrency_target(self) -> int:
        """How many sequences to keep queued+in-flight per replica.

        Enough to keep the KVCache saturated (so freed space is refilled
        immediately) without building an unbounded waiting queue.
        """
        if self._target_inflight:
            return self._target_inflight
        kv_tokens = self.replica_config.kvcache_config().total_tokens
        mean_reserved = self.task.length_dist.mean() + 512.0
        capacity = max(1, int(kv_tokens / mean_reserved))
        self._target_inflight = min(
            self.config.max_concurrency_per_replica, int(capacity * 1.3) + 1
        )
        return self._target_inflight

    def _run_ahead_budget(self) -> int:
        """Trajectories that may still be admitted before hitting the run-ahead cap."""
        in_flight = sum(r.num_sequences for r in self.replicas)
        # Never starve the natural generation pipeline: each replica may always
        # hold a bit more than its concurrency target.
        pipeline_floor = int(1.25 * len(self.replicas) * self._concurrency_target())
        cap = max(int(self.run_ahead_batches * self.config.global_batch_size), pipeline_floor)
        return max(0, cap - in_flight - len(self.buffer))

    def _top_up(self, replica: ReplicaGenerationState) -> None:
        deficit = self._concurrency_target() - replica.num_sequences
        deficit = min(deficit, self._run_ahead_budget())
        if deficit <= 0:
            return
        prompts = self.dataset.sample_batch(
            max(1, -(-deficit // self.task.group_size)), self.rng
        )[:deficit]
        states = self.factory.make(prompts, weight_version=replica.weight_version)
        replica.add_sequences(states)

    def _advance_all(self, dt: float) -> List[Trajectory]:
        completed: List[Trajectory] = []
        for replica in self.replicas:
            completed.extend(replica.advance(dt))
            self._top_up(replica)
        return completed

    def _align_clocks(self) -> float:
        """Bring every replica to the same wall-clock (idle-padding stragglers)."""
        latest = max(r.clock for r in self.replicas)
        for replica in self.replicas:
            gap = latest - replica.clock
            if gap > 1e-9:
                replica.inject_stall(gap, busy=False)
        return latest

    # ------------------------------------------------------------------ main loop
    def run(self, num_iterations: Optional[int] = None) -> SystemRunResult:
        num_iterations = num_iterations or self.config.num_iterations
        result = self.new_result()
        sync_time = self.global_sync_time()

        self.replicas = self.make_replicas(self.num_generation_replicas(), weight_version=0)
        for replica in self.replicas:
            self._top_up(replica)

        clock = 0.0
        total_reprefill_stall = 0.0
        for _ in range(num_iterations):
            iteration_start = clock
            # --- accumulate a global batch of completed trajectories ------------
            batch_ready_time = clock
            while not self.buffer.can_sample(self.config.global_batch_size):
                completed = self._advance_all(self.round_length)
                clock += self.round_length
                for trajectory in completed:
                    reward = self.environment.score(trajectory)
                    self.buffer.write(trajectory, reward, self.trainer.weight_version)
                if completed and self.buffer.can_sample(self.config.global_batch_size):
                    # The batch became ready somewhere inside this round: use
                    # the precise completion timestamp of the last trajectory
                    # needed rather than the round boundary.
                    needed = sorted(t.finish_time for t in completed)
                    batch_ready_time = needed[-1]
            batch_ready_time = max(batch_ready_time, iteration_start)

            batch = self.buffer.sample(self.config.global_batch_size)
            tokens = sum(exp.tokens for exp in batch)
            train_time = self.trainer.iteration_compute_time(tokens)
            update_done = batch_ready_time + train_time

            # Generation continues during training; advance replicas up to the
            # moment the new weights land, then pay the pause-and-sync cycle.
            self._align_clocks()
            remaining = update_done - self.replicas[0].clock
            if remaining > 0:
                completed = self._advance_all(remaining)
                for trajectory in completed:
                    reward = self.environment.score(trajectory)
                    self.buffer.write(trajectory, reward, self.trainer.weight_version)
            clock = self._align_clocks()
            clock = max(clock, update_done)

            record = self.trainer.record_iteration(batch, iteration_start, clock)

            # --- partial rollout: interrupt, sync weights, re-prefill -----------
            reprefill_stall = 0.0
            for replica in self.replicas:
                replica.inject_stall(sync_time, busy=False)
                reprefill_stall += replica.reprefill_all_inflight()
                replica.set_weight_version(self.trainer.weight_version)
            clock = self._align_clocks()
            total_reprefill_stall += reprefill_stall

            result.iterations.append(record)
            result.breakdowns.append(
                StageBreakdown(
                    generation_time=record.duration,
                    training_time=train_time,
                    weight_sync_time=sync_time,
                    bubble_time=reprefill_stall / max(1, len(self.replicas)),
                )
            )
            result.staleness_samples.extend(exp.staleness for exp in batch)
            result.extras["mixed_version_fraction"] = float(
                np.mean([exp.trajectory.mixed_versions for exp in batch])
            )
        result.wall_clock = clock
        result.extras["global_sync_time"] = sync_time
        result.extras["total_reprefill_stall"] = total_reprefill_stall
        return result

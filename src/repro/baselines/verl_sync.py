"""Synchronous colocated baseline (verl v0.5 with HybridEngine placement).

All GPUs alternate between the generation and training stages (§2.2, Fig 3a):
generate the full global batch, switch the engines, train on it, switch back.
Stage times add up, and the generation stage ends only when the single slowest
long-tail trajectory completes — the bubbles Laminar removes.
"""

from __future__ import annotations

from typing import Optional

from ..metrics.results import StageBreakdown, SystemRunResult
from .base import BaselineSystem, COLOCATED_SWITCH_OVERHEAD


class VerlSynchronous(BaselineSystem):
    """Fully synchronous, on-policy, colocated RL training."""

    name = "verl"

    def run(self, num_iterations: Optional[int] = None) -> SystemRunResult:
        num_iterations = num_iterations or self.config.num_iterations
        result = self.new_result()
        clock = 0.0
        for _ in range(num_iterations):
            start = clock
            # --- generation stage: all GPUs act as rollout replicas ------------
            outcome = self.generate_full_batch(self.trainer.weight_version)
            clock += outcome.duration + COLOCATED_SWITCH_OVERHEAD
            # --- training stage: same GPUs switch to the actor -----------------
            self.score_and_buffer(outcome.trajectories, self.trainer.weight_version)
            batch = self.buffer.sample(self.config.global_batch_size)
            tokens = sum(exp.tokens for exp in batch)
            train_time = self.trainer.iteration_compute_time(tokens)
            clock += train_time + COLOCATED_SWITCH_OVERHEAD
            record = self.trainer.record_iteration(batch, start, clock)
            result.iterations.append(record)
            result.breakdowns.append(
                StageBreakdown(
                    generation_time=outcome.duration,
                    training_time=train_time,
                    weight_sync_time=2 * COLOCATED_SWITCH_OVERHEAD,
                    bubble_time=outcome.bubble_time,
                )
            )
            result.staleness_samples.extend(exp.staleness for exp in batch)
        result.wall_clock = clock
        return result

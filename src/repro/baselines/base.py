"""Shared machinery for the baseline RL post-training systems.

Every baseline (and Laminar) consumes the same workload objects — prompt
dataset, trajectory factory, decode model, trainer cost model — built by
:class:`repro.runtime.WorkloadBundle`, so measured differences come only from
orchestration (global synchronization, staleness pipelines, partial rollout),
mirroring the paper's controlled comparison.

The orchestration itself runs on the discrete-event engine: each baseline's
``run`` is a single process on a fresh :class:`Environment`, and the global
generation barrier is an ``AllOf`` join over per-replica processes
(:func:`repro.runtime.generation_barrier`) — the batch is complete when the
slowest replica's process terminates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Generator, List, Optional, Sequence

from ..config import SystemConfig
from ..metrics.results import SystemRunResult
from ..rollout.generation import ReplicaGenerationState, SequenceState
from ..runtime.components import CompletionPipeline, GlobalWeightSync
from ..runtime.harness import GenerationOutcome, generation_barrier
from ..runtime.workload import WorkloadBundle
from ..sim.engine import Environment
from ..types import Trajectory

#: Engine switch overhead (offload weights / rebuild decode engine) paid twice
#: per iteration by colocated synchronous systems such as verl's HybridEngine.
COLOCATED_SWITCH_OVERHEAD = 4.0

__all__ = [
    "BaselineSystem",
    "COLOCATED_SWITCH_OVERHEAD",
    "GenerationOutcome",
]


class BaselineSystem(ABC):
    """Base class for the event-driven simulators of the baseline systems."""

    name = "baseline"

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.workload = WorkloadBundle.from_config(config)
        self.model = self.workload.model
        self.task = self.workload.task
        self.dataset = self.workload.dataset
        self.factory = self.workload.factory
        self.environment = self.workload.environment
        self.rng = self.workload.rng
        self.trainer = self.workload.trainer
        self.buffer = self.workload.buffer
        self.replica_config = self.workload.replica_config
        self.decode_model = self.workload.decode_model
        self.pipeline = CompletionPipeline(environment=self.environment, buffer=self.buffer)
        self.weight_sync = GlobalWeightSync.from_config(config, self.model)
        self._next_replica_id = 0

    # ------------------------------------------------------------------ helpers
    def num_generation_replicas(self) -> int:
        return self.config.num_rollout_replicas()

    def make_replicas(self, count: int, weight_version: int) -> List[ReplicaGenerationState]:
        replicas = []
        for _ in range(count):
            replicas.append(self.workload.make_replica(self._next_replica_id, weight_version))
            self._next_replica_id += 1
        return replicas

    def sample_batch_states(self, weight_version: int) -> List[SequenceState]:
        """Sample one global batch worth of prompts and build sequence states."""
        prompts = self.dataset.sample_batch(self.config.num_prompts_per_batch, self.rng)
        return self.factory.make(prompts, weight_version=weight_version)

    def generate_batch_process(self, env: Environment, weight_version: int) -> Generator:
        """Sub-process: synchronous full-batch generation across fresh replicas.

        Sequences are distributed round-robin over the replicas; the ``AllOf``
        join completes when the slowest replica finishes (the global barrier
        of the synchronous and k-step-staleness designs).
        """
        states = self.sample_batch_states(weight_version)
        replicas = self.make_replicas(self.num_generation_replicas(), weight_version)
        for index, state in enumerate(states):
            replicas[index % len(replicas)].add_sequences([state])
        outcome = yield from generation_barrier(env, replicas)
        return outcome

    def generate_full_batch(self, weight_version: int) -> GenerationOutcome:
        """Run one generation barrier on a private environment (tests, probes)."""
        env = Environment()
        process = env.process(
            self.generate_batch_process(env, weight_version),
            name=f"{self.name}-generation",
        )
        return env.run(until=process)

    def score_and_buffer(self, trajectories: Sequence[Trajectory], actor_version: int) -> None:
        self.pipeline.process(trajectories, actor_version)

    def global_sync_time(self) -> float:
        """GPU-direct global weight synchronization latency (NCCL-style)."""
        return self.weight_sync.sync_time()

    def batch_tokens(self, trajectories: Sequence[Trajectory]) -> int:
        return sum(t.total_tokens for t in trajectories)

    def new_result(self) -> SystemRunResult:
        return SystemRunResult(
            system=self.name,
            model=self.config.model_size,
            task=self.config.task_type,
            total_gpus=self.config.total_gpus,
            trainer_gpus=self.config.trainer_gpus,
            rollout_gpus=self.config.rollout_gpus or self.config.trainer_gpus,
        )

    def run(self, num_iterations: Optional[int] = None) -> SystemRunResult:
        """Simulate ``num_iterations`` RL iterations on the event engine."""
        num_iterations = num_iterations or self.config.num_iterations
        result = self.new_result()
        env = Environment()
        main = env.process(
            self._run_process(env, result, num_iterations), name=f"{self.name}-main"
        )
        env.run(until=main)
        result.wall_clock = env.now
        return result

    # ------------------------------------------------------------------ interface
    @abstractmethod
    def _run_process(self, env: Environment, result: SystemRunResult,
                     num_iterations: int) -> Generator:
        """Process body simulating ``num_iterations`` RL iterations."""

"""Shared machinery for the baseline RL post-training systems.

Every baseline (and Laminar) consumes the same workload objects — prompt
dataset, trajectory factory, decode model, trainer cost model — so measured
differences come only from orchestration (global synchronization, staleness
pipelines, partial rollout), mirroring the paper's controlled comparison.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import SystemConfig
from ..data.experience_buffer import ExperienceBuffer
from ..llm.decode_model import DecodeModel
from ..metrics.results import StageBreakdown, SystemRunResult
from ..rollout.environment import SimulatedEnvironment, TrajectoryFactory
from ..rollout.generation import ReplicaGenerationState, SequenceState
from ..rollout.replica_config import RolloutReplicaConfig
from ..sim.network import RDMA_LINK, gpu_direct_global_sync_time
from ..trainer.trainer import Trainer
from ..types import Trajectory
from ..workload.datasets import PromptDataset


#: Engine switch overhead (offload weights / rebuild decode engine) paid twice
#: per iteration by colocated synchronous systems such as verl's HybridEngine.
COLOCATED_SWITCH_OVERHEAD = 4.0


@dataclass
class GenerationOutcome:
    """Result of generating one batch of trajectories on a set of replicas."""

    duration: float
    trajectories: List[Trajectory]
    #: Per-replica generation time (time until that replica finished its share).
    per_replica_time: List[float]
    tokens_generated: int

    @property
    def bubble_time(self) -> float:
        """Aggregate idle GPU-time caused by the long tail (relative units).

        Mean idle span per replica: the gap between a replica finishing its
        share and the slowest replica finishing (the bubbles of Fig 3a-c).
        """
        if not self.per_replica_time:
            return 0.0
        slowest = max(self.per_replica_time)
        return float(np.mean([slowest - t for t in self.per_replica_time]))


class BaselineSystem(ABC):
    """Base class for the iteration-level simulators of the baseline systems."""

    name = "baseline"

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.model = config.model()
        self.task = config.task()
        self.dataset = PromptDataset(self.task, seed=config.seed)
        self.factory = TrajectoryFactory(self.task, seed=config.seed + 1)
        self.environment = SimulatedEnvironment(self.task, seed=config.seed + 2)
        self.rng = np.random.default_rng(config.seed + 3)
        self.trainer = Trainer(
            model=self.model,
            parallel=config.trainer_parallel,
            config=config.trainer_config(),
        )
        self.buffer = ExperienceBuffer(seed=config.seed + 4)
        self.replica_config = RolloutReplicaConfig(
            model=self.model,
            tensor_parallel=config.rollout_tensor_parallel,
            gpu=config.gpu,
            max_concurrency=config.max_concurrency_per_replica,
        )
        self.decode_model = self.replica_config.decode_model()
        self._next_replica_id = 0

    # ------------------------------------------------------------------ helpers
    def num_generation_replicas(self) -> int:
        return self.config.num_rollout_replicas()

    def make_replicas(self, count: int, weight_version: int) -> List[ReplicaGenerationState]:
        replicas = []
        for _ in range(count):
            replicas.append(
                ReplicaGenerationState(
                    replica_id=self._next_replica_id,
                    decode_model=self.decode_model,
                    kvcache_config=self.replica_config.kvcache_config(),
                    max_concurrency=self.config.max_concurrency_per_replica,
                    weight_version=weight_version,
                )
            )
            self._next_replica_id += 1
        return replicas

    def sample_batch_states(self, weight_version: int) -> List[SequenceState]:
        """Sample one global batch worth of prompts and build sequence states."""
        prompts = self.dataset.sample_batch(self.config.num_prompts_per_batch, self.rng)
        return self.factory.make(prompts, weight_version=weight_version)

    def generate_full_batch(self, weight_version: int) -> GenerationOutcome:
        """Synchronous full-batch generation across fresh replicas.

        Sequences are distributed round-robin over the replicas; the batch is
        complete when the slowest replica finishes (the global barrier of the
        synchronous and k-step-staleness designs).
        """
        states = self.sample_batch_states(weight_version)
        replicas = self.make_replicas(self.num_generation_replicas(), weight_version)
        for index, state in enumerate(states):
            replica = replicas[index % len(replicas)]
            replica.add_sequences([state])
        trajectories: List[Trajectory] = []
        per_replica_time: List[float] = []
        tokens = 0
        for replica in replicas:
            duration, completed = replica.run_to_completion()
            per_replica_time.append(duration)
            trajectories.extend(completed)
            tokens += replica.stats.tokens_generated
        return GenerationOutcome(
            duration=max(per_replica_time) if per_replica_time else 0.0,
            trajectories=trajectories,
            per_replica_time=per_replica_time,
            tokens_generated=tokens,
        )

    def score_and_buffer(self, trajectories: Sequence[Trajectory], actor_version: int) -> None:
        for trajectory in trajectories:
            reward = self.environment.score(trajectory)
            self.buffer.write(trajectory, reward, actor_version)

    def global_sync_time(self) -> float:
        """GPU-direct global weight synchronization latency (NCCL-style)."""
        rollout_gpus = self.config.rollout_gpus or self.config.trainer_gpus
        machines = max(1, rollout_gpus // 8)
        return gpu_direct_global_sync_time(self.model.weight_bytes, machines, RDMA_LINK)

    def batch_tokens(self, trajectories: Sequence[Trajectory]) -> int:
        return sum(t.total_tokens for t in trajectories)

    def new_result(self) -> SystemRunResult:
        return SystemRunResult(
            system=self.name,
            model=self.config.model_size,
            task=self.config.task_type,
            total_gpus=self.config.total_gpus,
            trainer_gpus=self.config.trainer_gpus,
            rollout_gpus=self.config.rollout_gpus or self.config.trainer_gpus,
        )

    # ------------------------------------------------------------------ interface
    @abstractmethod
    def run(self, num_iterations: Optional[int] = None) -> SystemRunResult:
        """Simulate ``num_iterations`` RL iterations and return the result."""

"""Baseline RL post-training systems from §8: verl, one-step, stream, AReaL."""

from .base import BaselineSystem, COLOCATED_SWITCH_OVERHEAD, GenerationOutcome
from .verl_sync import VerlSynchronous
from .one_step import OneStepStaleness
from .stream_gen import StreamGeneration
from .partial_rollout import PartialRollout

BASELINE_REGISTRY = {
    "verl": VerlSynchronous,
    "one_step": OneStepStaleness,
    "stream_gen": StreamGeneration,
    "areal": PartialRollout,
}


def make_baseline(config) -> BaselineSystem:
    """Instantiate the baseline simulator matching ``config.system``."""
    try:
        cls = BASELINE_REGISTRY[config.system]
    except KeyError:
        raise KeyError(
            f"unknown baseline {config.system!r}; known: {sorted(BASELINE_REGISTRY)}"
        ) from None
    return cls(config)


__all__ = [
    "BaselineSystem",
    "COLOCATED_SWITCH_OVERHEAD",
    "GenerationOutcome",
    "VerlSynchronous",
    "OneStepStaleness",
    "StreamGeneration",
    "PartialRollout",
    "BASELINE_REGISTRY",
    "make_baseline",
]

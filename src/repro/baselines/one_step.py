"""One-step staleness pipeline baseline (Fig 3b).

Actor and rollouts live on disjoint GPU sets.  While the actor trains on the
batch generated during the previous iteration, the rollouts generate the next
batch with the previous weights (k = 1 bounded staleness).  At the end of the
iteration a blocking GPU-direct global weight synchronization distributes the
new weights to every rollout.

Iteration time therefore is ``max(generation, training) + global_sync`` — the
pipeline hides whichever stage is shorter, but the generation barrier (the
``AllOf`` join over the replica processes) still ends only when the slowest
long-tail trajectory finishes.
"""

from __future__ import annotations

from typing import Generator

from ..metrics.results import StageBreakdown, SystemRunResult
from ..sim.engine import Environment
from .base import BaselineSystem


class OneStepStaleness(BaselineSystem):
    """k=1 bounded-staleness pipelined RL training."""

    name = "one_step"

    def _run_process(self, env: Environment, result: SystemRunResult,
                     num_iterations: int) -> Generator:
        sync_time = self.global_sync_time()

        # Pipeline fill: generate the first batch before training can start.
        outcome = yield from self.generate_batch_process(env, 0)
        yield env.timeout(sync_time)
        self.score_and_buffer(outcome.trajectories, self.trainer.weight_version)

        for _ in range(num_iterations):
            start = env.now
            batch = self.buffer.sample(self.config.global_batch_size)
            tokens = sum(exp.tokens for exp in batch)
            train_time = self.trainer.iteration_compute_time(tokens)

            # Concurrently, rollouts generate the next batch with the current
            # (pre-update) weights; training hides behind whichever stage is
            # longer, then the blocking global sync couples every rollout.
            outcome = yield from self.generate_batch_process(env, self.trainer.weight_version)
            stage_time = max(train_time, outcome.duration)
            yield env.timeout(max(0.0, start + stage_time + sync_time - env.now))
            record = self.trainer.record_iteration(batch, start, env.now)
            # The freshly generated batch becomes visible only now, after the
            # global synchronization barrier.
            self.score_and_buffer(outcome.trajectories, self.trainer.weight_version)

            result.iterations.append(record)
            result.breakdowns.append(
                StageBreakdown(
                    generation_time=outcome.duration,
                    training_time=train_time,
                    weight_sync_time=sync_time,
                    bubble_time=outcome.bubble_time + max(0.0, stage_time - outcome.duration),
                )
            )
            result.staleness_samples.extend(exp.staleness for exp in batch)
        result.extras["global_sync_time"] = sync_time

"""One-step staleness pipeline baseline (Fig 3b).

Actor and rollouts live on disjoint GPU sets.  While the actor trains on the
batch generated during the previous iteration, the rollouts generate the next
batch with the previous weights (k = 1 bounded staleness).  At the end of the
iteration a blocking GPU-direct global weight synchronization distributes the
new weights to every rollout.

Iteration time therefore is ``max(generation, training) + global_sync`` — the
pipeline hides whichever stage is shorter, but the generation stage still ends
only when the slowest long-tail trajectory finishes.
"""

from __future__ import annotations

from typing import Optional

from ..metrics.results import StageBreakdown, SystemRunResult
from .base import BaselineSystem


class OneStepStaleness(BaselineSystem):
    """k=1 bounded-staleness pipelined RL training."""

    name = "one_step"

    def run(self, num_iterations: Optional[int] = None) -> SystemRunResult:
        num_iterations = num_iterations or self.config.num_iterations
        result = self.new_result()
        clock = 0.0
        sync_time = self.global_sync_time()

        # Pipeline fill: generate the first batch before training can start.
        outcome = self.generate_full_batch(weight_version=0)
        clock += outcome.duration + sync_time
        self.score_and_buffer(outcome.trajectories, self.trainer.weight_version)

        for _ in range(num_iterations):
            start = clock
            batch = self.buffer.sample(self.config.global_batch_size)
            tokens = sum(exp.tokens for exp in batch)
            train_time = self.trainer.iteration_compute_time(tokens)

            # Concurrently, rollouts generate the next batch with the current
            # (pre-update) weights.
            outcome = self.generate_full_batch(self.trainer.weight_version)

            stage_time = max(train_time, outcome.duration)
            clock += stage_time + sync_time
            record = self.trainer.record_iteration(batch, start, clock)
            # The freshly generated batch becomes visible only now, after the
            # global synchronization barrier.
            self.score_and_buffer(outcome.trajectories, self.trainer.weight_version)

            result.iterations.append(record)
            result.breakdowns.append(
                StageBreakdown(
                    generation_time=outcome.duration,
                    training_time=train_time,
                    weight_sync_time=sync_time,
                    bubble_time=outcome.bubble_time + max(0.0, stage_time - outcome.duration),
                )
            )
            result.staleness_samples.extend(exp.staleness for exp in batch)
        result.wall_clock = clock
        result.extras["global_sync_time"] = sync_time
        return result

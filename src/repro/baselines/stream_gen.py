"""Stream-generation baseline (Fig 3c).

Like the one-step pipeline, actor and rollouts are disaggregated, but the
actor starts training on the *current* batch's early mini-batches (built from
the trajectories that complete first) while the long-tail trajectories of the
same batch are still being generated.  The trainer's progress is therefore
tied to the completion of each fraction of the batch; the final mini-batch
still waits for the very slowest trajectory, and the global weight
synchronization still couples every rollout at the iteration boundary.
"""

from __future__ import annotations

from typing import Generator

from ..metrics.results import StageBreakdown, SystemRunResult
from ..sim.engine import Environment
from .base import BaselineSystem


class StreamGeneration(BaselineSystem):
    """Streaming mini-batch consumption with a global sync per iteration."""

    name = "stream_gen"

    def _run_process(self, env: Environment, result: SystemRunResult,
                     num_iterations: int) -> Generator:
        sync_time = self.global_sync_time()
        num_minibatches = self.config.num_minibatches
        minibatch_trajs = self.config.global_batch_size // num_minibatches

        for _ in range(num_iterations):
            start = env.now
            outcome = yield from self.generate_batch_process(env, self.trainer.weight_version)
            # Completion times of the batch's trajectories relative to the
            # iteration start, sorted ascending (short trajectories first —
            # exactly the order the streaming trainer consumes them in).
            completion_times = sorted(t.finish_time for t in outcome.trajectories)
            tokens_by_completion = [
                t.total_tokens for t in sorted(outcome.trajectories, key=lambda t: t.finish_time)
            ]

            # Mini-batch pipeline recurrence: mini-batch j can start training
            # once (j+1) * minibatch_trajs trajectories have completed and the
            # previous mini-batch has finished its optimizer step.
            train_cursor = 0.0
            total_train_time = 0.0
            for j in range(num_minibatches):
                ready_index = min(len(completion_times), (j + 1) * minibatch_trajs) - 1
                data_ready = completion_times[ready_index]
                mb_tokens = sum(
                    tokens_by_completion[j * minibatch_trajs : (j + 1) * minibatch_trajs]
                )
                mb_time = self.trainer.minibatch_time(mb_tokens)
                train_cursor = max(train_cursor, data_ready) + mb_time
                total_train_time += mb_time

            iteration_span = train_cursor + sync_time
            yield env.timeout(max(0.0, start + iteration_span - env.now))

            self.score_and_buffer(outcome.trajectories, self.trainer.weight_version)
            batch = self.buffer.sample(self.config.global_batch_size)
            record = self.trainer.record_iteration(batch, start, env.now)

            result.iterations.append(record)
            result.breakdowns.append(
                StageBreakdown(
                    generation_time=outcome.duration,
                    training_time=total_train_time,
                    weight_sync_time=sync_time,
                    bubble_time=outcome.bubble_time,
                )
            )
            result.staleness_samples.extend(exp.staleness for exp in batch)
        result.extras["global_sync_time"] = sync_time

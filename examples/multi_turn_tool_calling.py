#!/usr/bin/env python3
"""Multi-turn tool-calling workload (the ReTool-style task of Fig 12).

Demonstrates the workload side of the library: builds the code-sandbox task,
inspects the environment-latency and turn-count distributions that create the
long-tail problem, then runs a Laminar simulation on the multi-turn task and
compares its throughput against the stream-generation baseline.

Usage::

    python examples/multi_turn_tool_calling.py
"""

from dataclasses import replace

import numpy as np

from repro.systems import LaminarSystem
from repro.experiments import make_system_config, measure_point
from repro.rollout import TrajectoryFactory
from repro.workload import PromptDataset, tool_task


def main() -> None:
    task = tool_task("7B", max_turns=8)
    dataset = PromptDataset(task, num_questions=2_000, seed=0)
    factory = TrajectoryFactory(task, seed=1)
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------ workload shape
    prompts = dataset.sample_batch(64, rng)
    states = factory.make(prompts)
    turns = np.array([s.schedule.num_turns for s in states])
    env_waits = np.array([sum(s.schedule.env_latencies) for s in states])
    lengths = np.array([s.trajectory.target_tokens for s in states])
    print("=== Tool-calling workload (1024 trajectories) ===")
    print(f"  tool calls per trajectory: mean {turns.mean():.1f}, max {turns.max()}")
    print(f"  env wait per trajectory:   p50 {np.percentile(env_waits, 50):6.1f} s, "
          f"p99 {np.percentile(env_waits, 99):6.1f} s")
    print(f"  response length:           p50 {np.percentile(lengths, 50):6.0f}, "
          f"p99 {np.percentile(lengths, 99):6.0f} tokens "
          f"(skew {np.percentile(lengths, 99) / np.percentile(lengths, 50):.1f}x)")

    # ------------------------------------------------------------------ Laminar on tool task
    config = make_system_config("laminar", "7B", 32, task_type="tool")
    config = replace(config.scaled(1 / 16), num_iterations=4, warmup_iterations=1)
    system = LaminarSystem(config)
    result = system.run()
    print("\n=== Laminar on the multi-turn task (scaled) ===")
    print(f"  throughput: {result.throughput(1):.0f} tokens/s, "
          f"max inherent staleness {int(result.extras['max_inherent_staleness'])}")

    # ------------------------------------------------------------------ Fig 12 style comparison
    print("\n=== Steady-state tool-task throughput (Fig 12 shape) ===")
    for name in ("verl", "stream_gen", "laminar"):
        point = measure_point(name, "7B", 64, task_type="tool", batch_scale=0.25)
        print(f"  {name:10s}: {point.throughput:9.0f} tokens/s")


if __name__ == "__main__":
    main()

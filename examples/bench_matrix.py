#!/usr/bin/env python3
"""Programmatic use of the ``repro.bench`` subsystem.

Selects scenarios from the registry, registers a custom one, runs the
(system × GPU scale × variant) matrix on two worker processes, persists the
results as a schema-versioned ``BENCH_*.json`` artifact, and regression-gates
a second run against it.

The same workflow is available from the command line::

    repro-bench list
    repro-bench run --scenario throughput_smoke --jobs 2 --export BENCH_smoke.json
    repro-bench compare --baseline BENCH_smoke.json

Usage::

    python examples/bench_matrix.py
"""

import os
import tempfile

from repro.bench import (
    ScenarioConfig,
    compare_runs,
    register_scenario,
    render_comparison,
    render_results,
    run_scenarios,
    save_artifact,
    select_scenarios,
    unregister_scenario,
)


def main() -> None:
    # ------------------------------------------------------------------ select + extend
    # Patterns resolve ids, globs, substrings and tags; "smoke" picks the
    # quick scenarios the CI gate runs.
    scenarios = select_scenarios(["smoke"])

    custom = register_scenario(ScenarioConfig(
        id="example_tool_matrix",
        description="Laminar vs stream generation on the multi-turn tool task, "
                    "with a long-horizon variant (16 environment turns).",
        kind="throughput",
        systems=("stream_gen", "laminar"),
        model_size="7B",
        task_type="tool",
        gpu_scales=(16,),
        variants=(
            ("8-turn", ()),
            ("16-turn", (("max_tool_turns", 16),)),
        ),
        batch_scale=0.125,
        tags=("example",),
    ))
    scenarios = scenarios + [custom]

    # ------------------------------------------------------------------ run the matrix
    print(f"running {sum(len(s.expand()) for s in scenarios)} units across "
          f"{len(scenarios)} scenarios on 2 workers...\n")
    results = run_scenarios(scenarios, jobs=2)
    print(render_results(results))

    # ------------------------------------------------------------------ persist + gate
    path = os.path.join(tempfile.mkdtemp(prefix="repro_bench_"), "BENCH_example.json")
    save_artifact(results, path, configs=scenarios)
    print(f"\nartifact written to {path}")

    # A rerun with the same seeds is bit-identical, so the gate reports
    # "no regression" with every unit within tolerance.
    rerun = run_scenarios(scenarios, jobs=2)
    report = compare_runs(rerun, results, tolerance=0.05)
    print()
    print(render_comparison(report))

    unregister_scenario(custom.id)


if __name__ == "__main__":
    main()

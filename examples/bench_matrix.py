#!/usr/bin/env python3
"""Programmatic use of the ``repro.bench`` subsystem.

Selects scenarios from the registry, registers a custom one, runs the
(system × GPU scale × variant) matrix on two worker processes, persists the
results as a schema-versioned ``BENCH_*.json`` artifact, regression-gates a
second run against it, and finally re-runs the same grid on the distributed
queue backend (embedded coordinator + one ``repro-bench worker`` agent
subprocess) to show the bit-identical cross-backend contract.

The same workflow is available from the command line::

    repro-bench list
    repro-bench run --scenario throughput_smoke --jobs 2 --export BENCH_smoke.json
    repro-bench compare --baseline BENCH_smoke.json

    # distributed: terminal 1 (fleet) / terminal 2 (driver)
    repro-bench serve --bind 0.0.0.0:7781
    repro-bench worker --connect HOST:7781 --jobs 4
    repro-bench run --scenario throughput_smoke --backend queue --connect HOST:7781

Usage::

    python examples/bench_matrix.py
"""

import os
import subprocess
import sys
import tempfile

from repro.bench import (
    Coordinator,
    QueueBackend,
    ScenarioConfig,
    compare_runs,
    register_scenario,
    render_comparison,
    render_results,
    run_scenarios,
    save_artifact,
    select_scenarios,
    unregister_scenario,
)


def main() -> None:
    # ------------------------------------------------------------------ select + extend
    # Patterns resolve ids, globs, substrings and tags; "smoke" picks the
    # quick scenarios the CI gate runs.
    scenarios = select_scenarios(["smoke"])

    custom = register_scenario(ScenarioConfig(
        id="example_tool_matrix",
        description="Laminar vs stream generation on the multi-turn tool task, "
                    "with a long-horizon variant (16 environment turns).",
        kind="throughput",
        systems=("stream_gen", "laminar"),
        model_size="7B",
        task_type="tool",
        gpu_scales=(16,),
        variants=(
            ("8-turn", ()),
            ("16-turn", (("max_tool_turns", 16),)),
        ),
        batch_scale=0.125,
        tags=("example",),
    ))
    scenarios = scenarios + [custom]

    # ------------------------------------------------------------------ run the matrix
    print(f"running {sum(len(s.expand()) for s in scenarios)} units across "
          f"{len(scenarios)} scenarios on 2 workers...\n")
    results = run_scenarios(scenarios, jobs=2)
    print(render_results(results))

    # ------------------------------------------------------------------ persist + gate
    path = os.path.join(tempfile.mkdtemp(prefix="repro_bench_"), "BENCH_example.json")
    save_artifact(results, path, configs=scenarios)
    print(f"\nartifact written to {path}")

    # A rerun with the same seeds is bit-identical, so the gate reports
    # "no regression" with every unit within tolerance.
    rerun = run_scenarios(scenarios, jobs=2)
    report = compare_runs(rerun, results, tolerance=0.05)
    print()
    print(render_comparison(report))

    # ------------------------------------------------------------------ distributed rerun
    # The queue backend leases the same units to a worker fleet over TCP.
    # Here the coordinator is embedded and a single worker agent (a 2-slot
    # sub-pool) runs as a subprocess; `repro-bench worker --connect` on other
    # machines joins the same way.  Determinism is per grid index, so the
    # merged results match the local runs bit for bit.
    coordinator = Coordinator().start()
    host, port = coordinator.address
    print(f"\nembedded coordinator on {host}:{port}; leasing to 1 worker agent...")
    worker = subprocess.Popen(
        [sys.executable, "-m", "repro.bench", "worker",
         "--connect", f"{host}:{port}", "--jobs", "2"],
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(p for p in sys.path if p)},
    )
    try:
        distributed = run_scenarios(
            scenarios, backend=QueueBackend(coordinator=coordinator)
        )
    finally:
        coordinator.close()
        worker.wait(timeout=30)
    identical = (
        [r.comparable() for r in distributed] == [r.comparable() for r in results]
    )
    print(f"queue backend bit-identical to local run: {identical}")

    unregister_scenario(custom.id)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: simulate Laminar and the verl baseline on one configuration.

Runs a scaled-down 7B math post-training job on a simulated 32-GPU cluster,
prints per-iteration throughput for both systems, and shows Laminar's
emergent (inherent) staleness distribution.

Usage::

    python examples/quickstart.py
"""

from dataclasses import replace

from repro.systems import LaminarSystem, make_system
from repro.experiments import make_system_config, measure_point


def main() -> None:
    # ------------------------------------------------------------------ Laminar
    config = make_system_config("laminar", "7B", 32, task_type="math")
    # Scale the 8192-trajectory global batch down 16x so this runs in seconds.
    config = replace(config.scaled(1 / 16), num_iterations=5, warmup_iterations=1)
    laminar = LaminarSystem(config)
    result = laminar.run()

    print("=== Laminar (7B, 32 GPUs, scaled batch) ===")
    for record in result.iterations:
        print(f"  iteration {record.iteration}: {record.duration:7.1f} s, "
              f"{record.throughput_tokens_per_s:9.0f} tokens/s, "
              f"mean reward {record.mean_reward:+.3f}")
    print(f"  inherent staleness: mean={laminar.staleness.mean_staleness():.2f} "
          f"max={laminar.staleness.max_staleness()} (no staleness bound configured)")
    print(f"  repacks executed: {int(result.extras['repacks'])}, "
          f"replicas released: {int(result.extras['replicas_released'])}")
    print(f"  relay pull wait: mean {result.extras['relay_mean_pull_wait']:.2f} s")

    # ------------------------------------------------------------------ verl baseline
    verl_config = make_system_config("verl", "7B", 32, task_type="math")
    verl_config = replace(verl_config.scaled(1 / 16), num_iterations=2, warmup_iterations=0)
    verl = make_system(verl_config).run()
    print("\n=== verl (synchronous, colocated) ===")
    print(f"  mean iteration time: {verl.mean_iteration_time():.1f} s, "
          f"throughput {verl.throughput():.0f} tokens/s")

    # ------------------------------------------------------------------ steady state
    print("\n=== Steady-state comparison at the paper's batch size ===")
    for system in ("verl", "one_step", "areal", "laminar"):
        point = measure_point(system, "7B", 32, batch_scale=0.25)
        print(f"  {system:10s}: {point.throughput:9.0f} tokens/s "
              f"(iteration {point.iteration_time:6.1f} s)")


if __name__ == "__main__":
    main()

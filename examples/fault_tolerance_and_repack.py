#!/usr/bin/env python3
"""Fault tolerance and repack: Laminar's robustness mechanisms in action.

1. Injects a rollout-machine failure into a running Laminar job and reports
   detection, trajectory redirection and recovery time (Fig 15).
2. Shows the repack mechanism's effect on generation throughput and KVCache
   utilisation (Fig 16 / Table 1) and the relay weight-sync advantage (Fig 14).

Usage::

    python examples/fault_tolerance_and_repack.py
"""

from dataclasses import replace

from repro.systems import FailureEvent, FailureInjector, FailureKind, LaminarSystem
from repro.experiments import (
    figure14_weight_sync,
    figure16_repack_efficiency,
    make_system_config,
)


def main() -> None:
    # ------------------------------------------------------------------ failure injection
    config = make_system_config("laminar", "7B", 64, task_type="math")
    config = replace(config.scaled(1 / 16), num_iterations=20, warmup_iterations=1)
    injector = FailureInjector()
    injector.add(FailureEvent(time=45.0, kind=FailureKind.ROLLOUT_MACHINE, target=0))
    system = LaminarSystem(config, failure_injector=injector)
    result = system.run()

    print("=== Rollout-machine failure at t=45 s (Fig 15) ===")
    print(f"  iterations completed despite the failure: {len(result.iterations)}")
    if system.manager.recovery_records:
        record = system.manager.recovery_records[0]
        print(f"  detected after:            {record.detected_at - record.event.time:.1f} s (heartbeat)")
        print(f"  in-progress trajectories:  {record.trajectories_redirected} redirected, "
              f"{record.trajectories_lost} lost")
        print(f"  machine back in service:   {record.downtime:.0f} s after the failure")
    print(f"  relay chain rebuilds:      {system.relay.chain_rebuilds} (sub-second each)")

    # ------------------------------------------------------------------ repack efficiency
    print("\n=== Repack efficiency (Fig 16 / Table 1) ===")
    stats = figure16_repack_efficiency("7B", 64)
    print(f"  generation rate w/o repack: {stats['generation_rate_without_repack']:.0f} tok/s/replica")
    print(f"  generation rate w/  repack: {stats['generation_rate_with_repack']:.0f} tok/s/replica "
          f"({(stats['throughput_gain'] - 1) * 100:.0f}% gain)")
    print(f"  replica released after {stats['replica_release_time']:.0f} s of a "
          f"{stats['replica_cycle_time']:.0f} s batch cycle")

    # ------------------------------------------------------------------ weight sync
    print("\n=== Rollout waiting time during weight sync, 32B model (Fig 14) ===")
    for gpus, row in figure14_weight_sync("32B", rollout_gpu_counts=[64, 256, 512]).items():
        print(f"  {gpus:4d} rollout GPUs: GPU-direct {row['gpu_direct']:.2f} s  vs  "
              f"Laminar relay {row['laminar_mean']:.2f} s (best {row['laminar_best']:.2f} s)")


if __name__ == "__main__":
    main()

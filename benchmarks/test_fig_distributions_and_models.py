"""Fig 1(b), Fig 2, Fig 4, Fig 17 and Fig 18: workload distributions, the
decode-latency roofline, and the relay broadcast latency model."""

from conftest import report, run_once

from repro.experiments import (
    figure1_time_breakdown,
    figure2_distributions,
    figure4_decode_latency,
    figure17_length_distributions,
    figure18_broadcast_latency,
)


def test_fig01_time_breakdown(benchmark):
    breakdown = run_once(benchmark, figure1_time_breakdown, 1.0 / 8.0)
    report("Figure 1(b) stage-time fractions (synchronous RL)", breakdown)
    # Generation dominates the synchronous workflow on both task types.
    for task_type, fractions in breakdown.items():
        assert fractions["generation"] > fractions["training"]
        assert fractions["generation"] > 0.4


def test_fig02_distributions(benchmark):
    stats = run_once(benchmark, figure2_distributions)
    report("Figure 2 distribution statistics", stats)
    assert stats["response_length"]["skew_p99_over_p50"] > 4.0
    assert stats["env_latency"]["max"] <= 600.0


def test_fig04_decode_latency(benchmark):
    series = run_once(benchmark, figure4_decode_latency)
    report("Figure 4 one-step decode latency [ms]", series)
    for label, curve in series.items():
        small, mid = curve[8], curve[64]
        assert mid < 2.0 * small  # memory-bound: near-flat latency
    assert series["32B, TP=8"][256] < series["32B, TP=2"][256]


def test_fig17_length_distributions(benchmark):
    stats = run_once(benchmark, figure17_length_distributions)
    report("Figure 17 response-length statistics per checkpoint", stats)
    for key, row in stats.items():
        assert row["p99"] > 2 * row["p50"]


def test_fig18_broadcast_latency(benchmark):
    series = run_once(benchmark, figure18_broadcast_latency)
    report("Figure 18 relay broadcast latency [s]", series)
    # Near-constant in machine count; a couple of seconds for the 72B model.
    assert series["72B"][128] < 2.5 * series["72B"][4]
    assert series["72B"][128] < 6.0

"""Fig 13 (reward vs wall-clock), Table 2 (placements) and Table 3
(hyperparameters)."""

from conftest import report, run_once

from repro.algorithms import compare_systems, convergence_speedup
from repro.experiments import figure13_profiles, table2_rows, table3_hyperparameters


def test_fig13_convergence(benchmark):
    def run():
        profiles = figure13_profiles("7B", 32)
        curves = compare_systems(profiles, num_iterations=30, num_prompts=48, seed=0)
        return profiles, curves

    profiles, curves = run_once(benchmark, run)
    summary = {
        name: {
            "final_policy_reward": curve.final_reward(),
            "wall_clock_hours": curve.times()[-1] / 3600.0,
            "iteration_time_s": next(p.iteration_time for p in profiles if p.name == name),
        }
        for name, curve in curves.items()
    }
    speedup_vs_verl = convergence_speedup(curves, "laminar", "verl", target_fraction=0.7)
    summary["laminar_time_to_0.7x_verl_final_speedup"] = speedup_vs_verl
    report("Figure 13 convergence (7B, 32 GPUs)", summary)
    # Paper shape: Laminar reaches the reward target sooner than verl in
    # wall-clock time (the paper measures ~1.77x on the 7B model).
    assert speedup_vs_verl is not None and speedup_vs_verl > 1.0
    # Every system still learns (ends above its starting reward).
    for name, curve in curves.items():
        assert curve.final_reward() > curve.points[0].policy_reward - 0.05


def test_tab2_placements(benchmark):
    rows = run_once(benchmark, table2_rows)
    report("Table 2 GPU allocations", rows)
    assert len(rows) == 75
    laminar_rows = [r for r in rows if r["system"] == "laminar"]
    assert all(not r["colocated"] for r in laminar_rows)


def test_tab3_hyperparameters(benchmark):
    table = run_once(benchmark, table3_hyperparameters)
    report("Table 3 convergence hyperparameters", table)
    assert table["verl"]["training_global_batch_size" if False else "global_batch_size"] == 8192
    assert table["laminar"]["max_staleness"] == "4 (observed)"

"""Fig 9, Fig 10, Fig 14, Fig 15, Fig 16 and Table 1: the Laminar-specific
mechanisms — KVCache lifecycle, emergent staleness, relay weight sync,
fault tolerance, and repack efficiency."""

from conftest import report, run_once

from repro.experiments import (
    figure9_kvcache_lifecycle,
    figure10_staleness_distribution,
    figure14_weight_sync,
    figure15_fault_tolerance,
    figure16_repack_efficiency,
    table1_repack_stats,
)


def test_fig09_kvcache_lifecycle(benchmark):
    stats = run_once(benchmark, figure9_kvcache_lifecycle, 0, 256)
    report("Figure 9 KVCache lifecycle (32B replica)", stats)
    assert 0.0 < stats["release_fraction_of_cycle"] <= 1.0
    assert stats["mean_kvcache_utilization"] > 0.2


def test_fig10_staleness_distribution(benchmark):
    stats = run_once(benchmark, figure10_staleness_distribution, 1.0 / 16.0, 6)
    report("Figure 10 inherent staleness distribution (Laminar)", stats)
    # §6: staleness remains consistently low without any configured bound.
    assert stats["max_staleness"] <= 8
    assert stats["fraction_at_most_3"] > 0.4
    assert abs(sum(stats["distribution"].values()) - 1.0) < 1e-6


def test_fig14_weight_sync(benchmark):
    series = run_once(benchmark, figure14_weight_sync, "32B")
    series72 = figure14_weight_sync("72B")
    report("Figure 14 rollout waiting time during weight sync (32B)", series)
    report("Figure 14 rollout waiting time during weight sync (72B)", series72)
    for gpus, row in series.items():
        assert row["laminar_mean"] < row["gpu_direct"]
        assert row["laminar_best"] <= row["laminar_mean"]


def test_fig15_fault_tolerance(benchmark):
    stats = run_once(benchmark, figure15_fault_tolerance, 1.0 / 16.0, 60.0)
    report("Figure 15 rollout-machine failure and recovery", stats)
    assert stats["training_continued"]
    assert 0 < stats["recovery_seconds"] < 600.0
    assert stats["trajectories_lost"] == 0


def test_fig16_repack_efficiency(benchmark):
    stats = run_once(benchmark, figure16_repack_efficiency, "7B", 64)
    report("Figure 16 repack efficiency", stats)
    # The paper measures a ~26% generation-throughput gain from repacking.
    assert 1.02 < stats["throughput_gain"] < 3.0
    assert stats["kvcache_util_with_repack"] >= stats["kvcache_util_without_repack"] - 1e-9


def test_tab1_repack_stats(benchmark):
    rows = run_once(benchmark, table1_repack_stats, 1.0 / 16.0, 5)
    report("Table 1 repack statistics", rows)
    with_repack, without = rows["w/ repack"], rows["w/o repack"]
    assert with_repack["mean_kvcache_utilization"] >= 0.0
    assert with_repack["repack_overhead_mean"] < 5.0
    # Repack should not make trajectories slower (Table 1: latency unchanged).
    assert with_repack["mean_trajectory_latency"] < 1.5 * without["mean_trajectory_latency"] + 1.0

"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
rows/series it reports, so ``pytest benchmarks/ --benchmark-only -s`` doubles
as the reproduction script.  Set ``REPRO_FULL=1`` to run the full evaluation
grid (all GPU scales, full 8192-trajectory batches); the default keeps each
benchmark to a representative subset so the whole suite finishes in minutes.
"""

import json
import os

import pytest

#: Full-fidelity switch (all scales / all systems).
FULL = os.environ.get("REPRO_FULL", "0") == "1"

#: Batch scale used for directly-simulated batch-synchronous systems.
#: 1.0 reproduces the paper's 8192-trajectory batches.
BATCH_SCALE = 1.0 if FULL else 0.25


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
                              warmup_rounds=0)


def report(title, payload):
    """Print a figure/table payload in a stable, readable JSON form."""
    print(f"\n=== {title} ===")
    print(json.dumps(payload, indent=2, default=str, sort_keys=True))


@pytest.fixture
def full_grid():
    return FULL

"""Fig 11 (a-c) and Fig 12: end-to-end training throughput, and the §8.1
speedup / scaling-efficiency numbers derived from them.

Fig 12 goes through the ``repro.bench`` scenario registry + matrix runner
(the same path as ``repro-bench run --scenario throughput_7b_tool``); the
Fig 11 sweeps still call the experiment drivers directly.
"""

from dataclasses import replace

import pytest

from conftest import BATCH_SCALE, FULL, report, run_once

from repro.bench import get_scenario, run_scenarios
from repro.experiments import (
    MODEL_SCALES,
    SYSTEMS,
    scaling_efficiency_from_points,
    speedup_table,
    throughput_sweep,
)

#: Default (quick) grid: the smallest and largest scale per model size.
QUICK_SCALES = {size: [scales[0], scales[-1]] for size, scales in MODEL_SCALES.items()}


def _sweep(model_size, task_type="math"):
    scales = MODEL_SCALES[model_size] if FULL else QUICK_SCALES[model_size]
    return throughput_sweep(model_size, task_type=task_type, gpu_scales=scales,
                            batch_scale=BATCH_SCALE)


@pytest.mark.parametrize("model_size", ["7B", "32B", "72B"])
def test_fig11_throughput_math(benchmark, model_size):
    points = run_once(benchmark, _sweep, model_size)
    rows = [p.as_dict() for p in points]
    table = speedup_table(points)
    report(f"Figure 11 ({model_size}, math) throughput [tokens/s]", rows)
    report(f"Figure 11 ({model_size}) speedup over verl", table)
    # Paper-shape checks: Laminar wins at the largest evaluated scale.
    largest = max(p.total_gpus for p in points)
    at_largest = {p.system: p.throughput for p in points if p.total_gpus == largest}
    assert at_largest["laminar"] == max(at_largest.values())
    assert at_largest["laminar"] / at_largest["verl"] > 1.3


def test_fig11_scaling_efficiency(benchmark):
    points = run_once(benchmark, _sweep, "7B")
    efficiencies = {s: scaling_efficiency_from_points(points, s)
                    for s in SYSTEMS if any(p.system == s for p in points)}
    report("Section 8.1 strong-scaling efficiency (7B, math)", efficiencies)
    assert efficiencies["laminar"] >= max(
        v for k, v in efficiencies.items() if k != "laminar") - 0.05


def test_fig12_throughput_tool(benchmark):
    scenario = get_scenario("throughput_7b_tool")
    if FULL:
        scenario = replace(scenario, gpu_scales=tuple(MODEL_SCALES["7B"]),
                           batch_scale=1.0, timeout_s=3600.0)
    (result,) = run_once(benchmark, run_scenarios, [scenario], jobs=1)
    assert result.status == "ok"
    report("Figure 12 (7B, tool-calling) throughput [tokens/s] via repro.bench",
           [u.as_dict() for u in result.units])
    largest = max(u.total_gpus for u in result.units)
    at_largest = {u.system: u.metrics["throughput_tok_s"]
                  for u in result.units if u.total_gpus == largest}
    assert at_largest["laminar"] == max(at_largest.values())
    assert result.summary["best_system_by_scale"][str(largest)] == "laminar"

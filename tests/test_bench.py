"""Tests for the repro.bench subsystem: registry, runner, store, compare, CLI."""

import json

import pytest

from repro.bench import (
    SCENARIOS,
    ScenarioConfig,
    ScenarioResult,
    UnitResult,
    all_scenarios,
    compare_runs,
    default_artifact_path,
    get_scenario,
    load_artifact,
    merge_artifacts,
    register_scenario,
    results_from_artifact,
    run_scenarios,
    save_artifact,
    select_scenarios,
    unregister_scenario,
)
from repro.bench.cli import main as bench_main
from repro.bench.compare import (
    VERDICT_ERROR,
    VERDICT_IMPROVEMENT,
    VERDICT_MISSING,
    VERDICT_NEW,
    VERDICT_REGRESSION,
    VERDICT_UNCHANGED,
)
from repro.bench.store import SCHEMA_VERSION


#: Cheap two-unit scenario for runner tests (analytic Laminar + repack cycle
#: composition: no event-driven simulation, runs in well under a second).
def _tiny_scenario(scenario_id="tiny_test_scenario", **kwargs):
    defaults = dict(
        id=scenario_id,
        description="test-only scenario",
        kind="throughput",
        systems=("laminar", "areal"),
        model_size="7B",
        gpu_scales=(16,),
        batch_scale=0.125,
        timeout_s=120.0,
        tags=("test-only",),
    )
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


@pytest.fixture
def tiny_scenario():
    scenario = register_scenario(_tiny_scenario())
    yield scenario
    unregister_scenario(scenario.id)


# --------------------------------------------------------------------------- registry
def test_canonical_catalog_ids_are_unique():
    ids = [s.id for s in SCENARIOS]
    assert len(ids) == len(set(ids))
    assert "throughput_smoke" in ids


def test_get_scenario_exact_and_unknown():
    assert get_scenario("throughput_smoke").kind == "throughput"
    with pytest.raises(KeyError):
        get_scenario("definitely_not_a_scenario")


def test_select_scenarios_by_glob_tag_and_substring():
    by_glob = {s.id for s in select_scenarios(["throughput_*"])}
    assert "throughput_smoke" in by_glob and "throughput_7b_tool" in by_glob
    by_tag = {s.id for s in select_scenarios(["fig11"])}
    assert by_tag == {"throughput_7b_math", "throughput_32b_math", "throughput_72b_math"}
    # "smoke" is both a tag and an id substring; either way it must resolve.
    by_sub = {s.id for s in select_scenarios(["smoke"])}
    assert "throughput_smoke" in by_sub
    with pytest.raises(KeyError):
        select_scenarios(["no_such_pattern_anywhere"])


def test_select_scenarios_deduplicates_and_keeps_catalog_order():
    selected = select_scenarios(["throughput_smoke", "smoke", "throughput_*"])
    ids = [s.id for s in selected]
    assert len(ids) == len(set(ids))
    catalog_order = [s.id for s in all_scenarios() if s.id in set(ids)]
    assert ids == catalog_order


def test_register_rejects_duplicates_and_unregister_restores_canonical():
    with pytest.raises(ValueError):
        register_scenario(get_scenario("throughput_smoke"))
    scenario = register_scenario(_tiny_scenario("tmp_register_test"))
    assert get_scenario("tmp_register_test") is scenario
    unregister_scenario("tmp_register_test")
    with pytest.raises(KeyError):
        get_scenario("tmp_register_test")
    unregister_scenario("throughput_smoke")  # canonical ids survive unregister
    assert get_scenario("throughput_smoke").id == "throughput_smoke"


def test_scenario_validation_rejects_bad_configs():
    with pytest.raises(ValueError):
        _tiny_scenario(kind="not_a_kind")
    with pytest.raises(ValueError):
        _tiny_scenario(systems=("laminar",), gpu_scales=(48,))  # no Table 2 placement
    with pytest.raises(ValueError):
        _tiny_scenario(systems=("hal9000",))
    with pytest.raises(ValueError):
        _tiny_scenario(variants=(("a", ()), ("a", ())))
    with pytest.raises(ValueError):
        _tiny_scenario(batch_scale=0.0)
    with pytest.raises(ValueError):
        _tiny_scenario(iterations=2, warmup=2)


def test_grid_expansion_covers_matrix_with_distinct_seeds():
    scenario = _tiny_scenario(
        systems=("laminar", "verl"),
        gpu_scales=(16, 64),
        variants=(("a", ()), ("b", (("repack_interval", 10.0),))),
        seed=7,
    )
    units = scenario.expand()
    assert len(units) == 2 * 2 * 2
    assert len({u.key for u in units}) == len(units)
    assert len({u.seed for u in units}) == len(units)
    assert all(u.base_seed == 7 for u in units)
    variant_b = [u for u in units if u.variant == "b"]
    assert all(("repack_interval", 10.0) in u.overrides for u in variant_b)


def test_new_scenario_kinds_are_registered_and_gated():
    lifecycle = get_scenario("kvcache_lifecycle_7b")
    weight_sync = get_scenario("weight_sync_32b")
    assert lifecycle.kind == "kvcache_lifecycle" and "smoke" in lifecycle.tags
    assert weight_sync.kind == "weight_sync" and "smoke" in weight_sync.tags
    smoke_ids = {s.id for s in select_scenarios(["smoke"])}
    assert {"kvcache_lifecycle_7b", "weight_sync_32b"} <= smoke_ids


def test_kvcache_lifecycle_unit_reports_ramp_plateau_drain():
    (result,) = run_scenarios([get_scenario("kvcache_lifecycle_7b")], jobs=1)
    assert result.status == "ok"
    (unit,) = result.units
    metrics = unit.metrics
    # Fig 9 shape: the cache ramps up, plateaus near its peak for a sustained
    # stretch, and drains at the end of the cycle.
    assert 0.0 < metrics["mean_kvcache_utilization"] <= 1.0
    assert metrics["peak_kvcache_utilization"] >= metrics["mean_kvcache_utilization"]
    assert 0.0 < metrics["ramp_seconds"] < metrics["cycle_seconds"]
    assert 0.1 < metrics["plateau_fraction"] < 1.0
    assert 0.0 < metrics["drain_seconds"] < metrics["cycle_seconds"]
    assert metrics["ramp_seconds"] + metrics["drain_seconds"] < metrics["cycle_seconds"]
    # The repack release point falls inside the drain phase, before the end.
    assert 0.0 < metrics["release_fraction_of_cycle"] <= 1.0


def test_weight_sync_unit_compares_relay_to_gpu_direct():
    (result,) = run_scenarios([get_scenario("weight_sync_32b")], jobs=1)
    assert result.status == "ok"
    by_gpus = {u.total_gpus: u.metrics for u in result.units}
    for metrics in by_gpus.values():
        assert metrics["relay_best_wait_s"] <= metrics["relay_mean_wait_s"]
        assert metrics["relay_mean_wait_s"] < metrics["gpu_direct_wait_s"]
        assert metrics["relay_speedup_vs_gpu_direct"] > 1.0
    # Fig 14: the relay's advantage grows with the rollout fleet.
    assert (
        by_gpus[512]["relay_speedup_vs_gpu_direct"]
        > by_gpus[128]["relay_speedup_vs_gpu_direct"]
    )


# --------------------------------------------------------------------------- runner
def test_runner_serial_results_and_summary(tiny_scenario):
    (result,) = run_scenarios([tiny_scenario], jobs=1)
    assert result.status == "ok"
    assert [u.system for u in result.units] == ["laminar", "areal"]
    for unit in result.units:
        assert unit.metrics["throughput_tok_s"] > 0
    assert result.summary["units_ok"] == 2
    assert result.summary["primary_metric"] == "throughput_tok_s"
    assert result.summary["best_system_by_scale"]["16"] == "laminar"


def test_runner_parallel_matches_serial_bit_identically(tiny_scenario):
    serial = run_scenarios([tiny_scenario], jobs=1)
    parallel = run_scenarios([tiny_scenario], jobs=2)
    assert [r.comparable() for r in serial] == [r.comparable() for r in parallel]


def test_runner_reports_unit_failures_without_raising():
    scenario = register_scenario(
        _tiny_scenario("failing_test_scenario", systems=("laminar",),
                       overrides=(("no_such_config_field", 1),))
    )
    try:
        (result,) = run_scenarios([scenario], jobs=1)
    finally:
        unregister_scenario(scenario.id)
    assert result.status == "failed"
    assert result.units[0].status == "failed"
    assert "no_such_config_field" in result.units[0].error
    assert result.summary["units_ok"] == 0


def test_unit_and_scenario_results_round_trip_via_dicts(tiny_scenario):
    (result,) = run_scenarios([tiny_scenario], jobs=1)
    clone = ScenarioResult.from_dict(json.loads(json.dumps(result.as_dict())))
    assert clone.comparable() == result.comparable()


# --------------------------------------------------------------------------- store
def test_artifact_save_load_round_trip(tiny_scenario, tmp_path):
    results = run_scenarios([tiny_scenario], jobs=1)
    path = str(tmp_path / default_artifact_path(tiny_scenario.id, ""))
    save_artifact(results, path, configs=[tiny_scenario])
    artifact = load_artifact(path)
    assert artifact["schema_version"] == SCHEMA_VERSION
    assert artifact["git_rev"]
    entry = artifact["scenarios"][tiny_scenario.id]
    assert entry["config"]["id"] == tiny_scenario.id  # config echo
    (loaded,) = results_from_artifact(artifact)
    assert loaded.comparable() == results[0].comparable()


def test_load_artifact_rejects_foreign_and_versioned_files(tmp_path):
    foreign = tmp_path / "foreign.json"
    foreign.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(ValueError):
        load_artifact(str(foreign))
    futuristic = tmp_path / "future.json"
    futuristic.write_text(json.dumps({
        "kind": "repro-bench-results", "schema_version": SCHEMA_VERSION + 1,
        "scenarios": {},
    }))
    with pytest.raises(ValueError):
        load_artifact(str(futuristic))


def test_merge_artifacts_overlays_new_scenarios():
    base = {"schema_version": SCHEMA_VERSION, "kind": "repro-bench-results",
            "git_rev": "aaa", "scenarios": {"s1": {"result": 1}, "s2": {"result": 2}}}
    update = {"schema_version": SCHEMA_VERSION, "kind": "repro-bench-results",
              "git_rev": "bbb", "scenarios": {"s2": {"result": 22}, "s3": {"result": 3}}}
    merged = merge_artifacts(base, update)
    assert merged["git_rev"] == "bbb"
    assert merged["scenarios"] == {"s1": {"result": 1}, "s2": {"result": 22},
                                   "s3": {"result": 3}}


def test_save_artifact_merges_prior_runs(tiny_scenario, tmp_path):
    path = str(tmp_path / "BENCH_merge.json")
    other = ScenarioResult(scenario_id="other_scenario", kind="throughput", units=[
        UnitResult(scenario_id="other_scenario", system="laminar", model_size="7B",
                   total_gpus=16, variant="", seed=0,
                   metrics={"throughput_tok_s": 1.0}),
    ])
    save_artifact([other], path)
    results = run_scenarios([tiny_scenario], jobs=1)
    artifact = save_artifact(results, path, configs=[tiny_scenario])
    assert set(artifact["scenarios"]) == {"other_scenario", tiny_scenario.id}


# --------------------------------------------------------------------------- compare
def _unit(system="laminar", tput=100.0, status="ok", scenario_id="s"):
    return UnitResult(scenario_id=scenario_id, system=system, model_size="7B",
                      total_gpus=16, variant="", seed=0, status=status,
                      metrics={"throughput_tok_s": tput} if status == "ok" else {})


def _result(units, scenario_id="s"):
    return ScenarioResult(scenario_id=scenario_id, kind="throughput", units=units)


def test_compare_verdicts_cover_all_outcomes():
    baseline = _result([
        _unit("laminar", 100.0), _unit("verl", 100.0), _unit("areal", 100.0),
        _unit("one_step", 100.0), _unit("stream_gen", 100.0),
    ])
    candidate = _result([
        _unit("laminar", 120.0),            # improvement
        _unit("verl", 98.0),                # within tolerance
        _unit("areal", 80.0),               # regression
        _unit("one_step", 100.0, status="failed"),  # unit-error
        # stream_gen absent -> missing-in-candidate
    ])
    report = compare_runs([candidate], [baseline], tolerance=0.05)
    verdicts = {v.unit_label.split(":")[0]: v.verdict for v in report.verdicts}
    assert verdicts["laminar"] == VERDICT_IMPROVEMENT
    assert verdicts["verl"] == VERDICT_UNCHANGED
    assert verdicts["areal"] == VERDICT_REGRESSION
    assert verdicts["one_step"] == VERDICT_ERROR
    assert verdicts["stream_gen"] == VERDICT_MISSING
    assert not report.passed
    assert len(report.regressions) == 3


def test_compare_without_baseline_passes():
    candidate = _result([_unit("laminar", 50.0)])
    report = compare_runs([candidate], [], tolerance=0.05)
    assert [v.verdict for v in report.verdicts] == [VERDICT_NEW]
    assert report.passed


def test_compare_identical_runs_report_no_regression():
    run = _result([_unit("laminar", 100.0), _unit("verl", 90.0)])
    report = compare_runs([run], [run], tolerance=0.0)
    assert report.passed
    assert all(v.verdict == VERDICT_UNCHANGED for v in report.verdicts)
    assert all(v.delta == 0.0 for v in report.verdicts)


def test_compare_respects_tolerance_boundary():
    baseline = _result([_unit("laminar", 100.0)])
    report = compare_runs([_result([_unit("laminar", 94.0)])], [baseline], tolerance=0.05)
    assert not report.passed
    report = compare_runs([_result([_unit("laminar", 96.0)])], [baseline], tolerance=0.05)
    assert report.passed


# --------------------------------------------------------------------------- CLI
def test_cli_list_runs_clean(capsys):
    assert bench_main(["list", "-v"]) == 0
    out = capsys.readouterr().out
    assert "throughput_smoke" in out and "fault_injection" in out


def test_cli_run_and_regression_gate(tiny_scenario, tmp_path, capsys):
    artifact = str(tmp_path / "BENCH_cli.json")
    assert bench_main(["run", "--scenario", tiny_scenario.id,
                       "--export", artifact]) == 0
    capsys.readouterr()

    # Same seed, same tree: the gate must report no regression.
    assert bench_main(["run", "--scenario", tiny_scenario.id, "--export", artifact,
                       "--compare"]) == 0
    assert "no regression" in capsys.readouterr().out

    # Degrade the stored candidate and gate it against the healthy baseline.
    degraded = json.loads(open(artifact).read())
    entry = degraded["scenarios"][tiny_scenario.id]["result"]
    for unit in entry["units"]:
        unit["metrics"]["throughput_tok_s"] *= 0.5
    bad_path = str(tmp_path / "BENCH_bad.json")
    with open(bad_path, "w") as handle:
        json.dump(degraded, handle)
    assert bench_main(["compare", "--baseline", artifact,
                       "--candidate", bad_path]) == 1
    assert "REGRESSION" in capsys.readouterr().out

"""Tests for the experiment drivers (figures/tables) and the throughput model."""

import pytest

from repro.experiments import (
    continuous_replica_rate,
    figure2_distributions,
    figure4_decode_latency,
    figure13_profiles,
    figure14_weight_sync,
    figure16_repack_efficiency,
    figure17_length_distributions,
    figure18_broadcast_latency,
    make_system_config,
    measure_areal,
    measure_laminar,
    measure_point,
    replica_batch_cycle,
    scaling_efficiency_from_points,
    speedup_table,
    table2_rows,
    table3_hyperparameters,
)


# --------------------------------------------------------------------------- component rates
@pytest.fixture(scope="module")
def laminar_cycle():
    config = make_system_config("laminar", "7B", 64)
    return replica_batch_cycle(config, seed=0)


def test_replica_batch_cycle_invariants(laminar_cycle):
    cycle = laminar_cycle
    assert cycle.total_tokens > 0
    assert 0 < cycle.release_time <= cycle.full_duration
    assert cycle.rate_with_repack >= cycle.rate_without_repack
    assert 0.0 < cycle.mean_kvcache_utilization <= 1.0


def test_repack_improves_generation_rate_and_kvcache(laminar_cycle):
    """Fig 16 / Table 1: repack raises generation throughput and KVCache use."""
    cycle = laminar_cycle
    gain = cycle.rate_with_repack / cycle.rate_without_repack
    assert 1.0 < gain < 4.0
    assert cycle.mean_kvcache_utilization_to_release >= cycle.mean_kvcache_utilization - 1e-9


def test_continuous_replica_rate_positive():
    config = make_system_config("areal", "7B", 64)
    profile = continuous_replica_rate(config, horizon=120.0, seed=0)
    assert profile.tokens_per_second > 1000
    assert profile.mean_inflight > 1
    assert profile.mean_inflight_context > 100


# --------------------------------------------------------------------------- throughput model
@pytest.fixture(scope="module")
def throughput_points():
    points = []
    for system in ("verl", "one_step", "stream_gen", "areal", "laminar"):
        kwargs = dict(batch_scale=1 / 8, num_iterations=2, warmup_iterations=0) \
            if system in ("verl", "one_step", "stream_gen") else {}
        points.append(measure_point(system, "7B", 256, **kwargs))
    return points


def test_laminar_has_highest_throughput_at_scale(throughput_points):
    """Fig 11a at 256 GPUs: Laminar wins, and by a substantial factor over verl."""
    by_system = {p.system: p for p in throughput_points}
    laminar = by_system["laminar"].throughput
    assert laminar == max(p.throughput for p in throughput_points)
    assert laminar / by_system["verl"].throughput > 1.5
    assert laminar / by_system["areal"].throughput > 1.05


def test_throughput_points_have_positive_components(throughput_points):
    for point in throughput_points:
        assert point.throughput > 0
        assert point.iteration_time > 0
        assert point.details["training_time"] > 0
        row = point.as_dict()
        assert row["system"] == point.system and row["gpus"] == 256


def test_speedup_table_and_scaling_efficiency(throughput_points):
    table = speedup_table(throughput_points)
    assert table["verl"][256] == pytest.approx(1.0)
    assert table["laminar"][256] > 1.0
    small = measure_laminar(make_system_config("laminar", "7B", 16))
    points = [small] + [p for p in throughput_points if p.system == "laminar"]
    efficiency = scaling_efficiency_from_points(points, "laminar")
    assert 0.0 < efficiency <= 1.5


def test_laminar_estimated_staleness_is_small():
    point = measure_laminar(make_system_config("laminar", "7B", 128))
    assert point.details["estimated_max_staleness"] <= 8


def test_areal_pays_reprefill_overhead():
    point = measure_areal(make_system_config("areal", "7B", 128))
    assert point.details["reprefill_time_per_update"] > 0
    assert point.throughput > 0


# --------------------------------------------------------------------------- figure drivers
def test_figure2_and_17_distribution_shapes():
    fig2 = figure2_distributions(num_samples=20_000)
    assert fig2["response_length"]["skew_p99_over_p50"] > 4.0
    assert fig2["env_latency"]["p99"] > fig2["env_latency"]["p50"]
    fig17 = figure17_length_distributions(num_samples=10_000)
    assert set(fig17) == {"math-7B", "math-32B", "math-72B", "tool-7B"}
    for stats in fig17.values():
        assert stats["p99"] > stats["p50"]


def test_figure4_decode_latency_series():
    series = figure4_decode_latency(batch_sizes=[1, 8, 64, 256])
    assert set(series) == {"7B, TP=1", "7B, TP=2", "7B, TP=4",
                           "32B, TP=2", "32B, TP=4", "32B, TP=8"}
    for label, curve in series.items():
        assert curve[8] < 1.3 * curve[1]  # near-flat in the memory-bound regime
        assert curve[256] >= curve[8]
    assert series["32B, TP=8"][64] < series["32B, TP=2"][64]


def test_figure13_profiles_use_throughput_model():
    profiles = figure13_profiles("7B", 32)
    names = {p.name for p in profiles}
    assert names == {"verl", "one_step", "stream_gen", "areal", "laminar"}
    by_name = {p.name: p for p in profiles}
    assert by_name["laminar"].iteration_time < by_name["verl"].iteration_time
    assert by_name["areal"].algorithm == "decoupled_ppo"
    assert by_name["verl"].mean_staleness == 0.0


def test_figure14_weight_sync_scaling():
    fig14 = figure14_weight_sync("32B", rollout_gpu_counts=[64, 512])
    assert fig14[64]["laminar_mean"] < fig14[64]["gpu_direct"]
    assert fig14[512]["gpu_direct"] >= fig14[64]["gpu_direct"]


def test_figure16_repack_efficiency_gain():
    fig16 = figure16_repack_efficiency("7B", 64)
    assert fig16["throughput_gain"] > 1.0
    assert fig16["replica_release_time"] <= fig16["replica_cycle_time"]


def test_figure18_broadcast_latency_magnitudes():
    fig18 = figure18_broadcast_latency()
    assert fig18["72B"][128] > fig18["32B"][128]
    assert fig18["72B"][128] < 6.0  # seconds, §4.2 says ~1.6 s measured


def test_table2_and_table3_shapes():
    rows = table2_rows()
    assert {r["system"] for r in rows} == {"verl", "one_step", "stream_gen", "areal", "laminar"}
    table3 = table3_hyperparameters()
    assert table3["verl"]["max_staleness"] == 0
    assert table3["areal"]["algorithm"] == "Decoupled PPO"
    assert table3["laminar"]["sampling"] == "FIFO"
    assert all(row["group_size"] == 16 for row in table3.values())

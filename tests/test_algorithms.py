"""Tests for the GRPO / Decoupled-PPO substrate and the convergence harness."""

import numpy as np
import pytest

from repro.algorithms import (
    ConvergenceCurve,
    DecoupledPPOTrainer,
    GRPOConfig,
    GRPOTrainer,
    SoftmaxPolicy,
    SyntheticReasoningTask,
    SystemConvergenceProfile,
    compare_systems,
    convergence_speedup,
    generate_rollouts,
    group_normalized_advantages,
    run_convergence,
)


@pytest.fixture(scope="module")
def task():
    return SyntheticReasoningTask(num_problems=256, feature_dim=12, num_strategies=6, seed=0)


# --------------------------------------------------------------------------- task / policy
def test_task_reward_bounds(task):
    assert -1.0 < task.random_mean_reward() < task.optimal_mean_reward() < 1.0
    problem_ids = np.arange(10)
    strategies = np.zeros(10, dtype=int)
    probs = task.solve_probability(problem_ids, strategies)
    assert np.all((probs > 0) & (probs < 1))


def test_policy_probabilities_and_log_prob(task):
    policy = SoftmaxPolicy(task.feature_dim, task.num_strategies)
    probs = policy.probabilities(task.features[:5])
    assert probs.shape == (5, task.num_strategies)
    assert np.allclose(probs.sum(axis=1), 1.0)
    # Zero parameters -> uniform policy.
    assert np.allclose(probs, 1.0 / task.num_strategies)
    strategies = np.array([0, 1, 2, 3, 4])
    log_prob = policy.log_prob(task.features[:5], strategies)
    assert np.allclose(log_prob, np.log(1.0 / task.num_strategies))


def test_policy_sampling_follows_distribution(task):
    rng = np.random.default_rng(0)
    policy = SoftmaxPolicy(task.feature_dim, task.num_strategies)
    policy.theta[:, 0] = 5.0  # strongly prefer strategy 0 on all-positive features
    features = np.full((2000, task.feature_dim), 1.0 / np.sqrt(task.feature_dim))
    samples = policy.sample(features, rng)
    assert (samples == 0).mean() > 0.8


def test_group_normalized_advantages_zero_mean_per_group():
    rewards = np.array([1.0, -1.0, 1.0, 1.0, -1.0, -1.0, -1.0, 1.0])
    advantages = group_normalized_advantages(rewards, group_size=4)
    assert advantages.shape == (8,)
    assert np.allclose(advantages.reshape(2, 4).mean(axis=1), 0.0, atol=1e-9)
    with pytest.raises(ValueError):
        group_normalized_advantages(rewards, group_size=3)


def test_clip_higher_gradient_stats(task):
    policy = SoftmaxPolicy(task.feature_dim, task.num_strategies)
    rng = np.random.default_rng(0)
    features = task.features[:64]
    strategies = rng.integers(0, task.num_strategies, 64)
    advantages = rng.normal(0, 1, 64)
    behaviour_log_prob = policy.log_prob(features, strategies) - 1.0  # force large ratios
    grad, stats = policy.surrogate_gradient(features, strategies, advantages,
                                            behaviour_log_prob, clip_low=0.2, clip_high=0.28)
    assert grad.shape == policy.theta.shape
    assert 0.0 <= stats["clip_fraction"] <= 1.0
    assert stats["mean_ratio"] > 1.0


def test_grpo_learns_on_policy(task):
    trainer = GRPOTrainer(task, GRPOConfig(group_size=8), seed=1)
    rng = np.random.default_rng(1)
    start = trainer.policy.mean_reward(task)
    for _ in range(30):
        batch = generate_rollouts(task, trainer.policy, 32, trainer.config, rng)
        stats = trainer.update(batch)
    assert stats["policy_reward"] > start + 0.1
    assert trainer.updates == 30


def test_stale_behaviour_policy_slows_learning(task):
    """Off-policy data (stale behaviour policy) should not learn faster than
    on-policy data with the same budget — the §2.3 throughput/stability tension."""
    def final_reward(staleness):
        trainer = GRPOTrainer(task, GRPOConfig(group_size=8), seed=2)
        rng = np.random.default_rng(2)
        history = [trainer.policy.copy()]
        for _ in range(25):
            behaviour = history[max(0, len(history) - 1 - staleness)]
            batch = generate_rollouts(task, behaviour, 32, trainer.config, rng)
            stats = trainer.update(batch)
            history.append(trainer.policy.copy())
        return stats["policy_reward"]

    assert final_reward(0) >= final_reward(8) - 0.05


def test_decoupled_ppo_handles_mixed_versions(task):
    trainer = DecoupledPPOTrainer(task, GRPOConfig(group_size=8), seed=3)
    rng = np.random.default_rng(3)
    old_policy = trainer.policy.copy()
    for _ in range(15):
        batch = generate_rollouts(task, trainer.policy, 16, trainer.config, rng,
                                  mixture_policy=old_policy, mixture_fraction=0.4)
        stats = trainer.update(batch)
    assert np.isfinite(stats["policy_reward"])
    assert stats["policy_reward"] > task.random_mean_reward()


# --------------------------------------------------------------------------- convergence harness
def test_convergence_profile_validation():
    with pytest.raises(ValueError):
        SystemConvergenceProfile(name="x", iteration_time=0.0)
    with pytest.raises(ValueError):
        SystemConvergenceProfile(name="x", iteration_time=1.0, mixture_fraction=2.0)
    with pytest.raises(ValueError):
        SystemConvergenceProfile(name="x", iteration_time=1.0, algorithm="dqn")


def test_run_convergence_produces_monotone_wall_clock(task):
    profile = SystemConvergenceProfile(name="laminar", iteration_time=30.0,
                                       mean_staleness=1.0, max_staleness=4)
    curve = run_convergence(profile, task=task, num_iterations=10, num_prompts=16, seed=0)
    times = curve.times()
    assert len(curve.points) == 10
    assert times == sorted(times)
    assert times[-1] == pytest.approx(300.0)


def test_faster_iterations_win_in_wall_clock(task):
    """Fig 13's core effect: higher throughput converges sooner in wall-clock."""
    profiles = [
        SystemConvergenceProfile(name="slow_on_policy", iteration_time=200.0),
        SystemConvergenceProfile(name="fast_low_staleness", iteration_time=50.0,
                                 mean_staleness=1.0, max_staleness=4),
    ]
    curves = compare_systems(profiles, num_iterations=25, num_prompts=32, seed=0)
    target = 0.6 * curves["slow_on_policy"].final_reward()
    t_slow = curves["slow_on_policy"].time_to_reward(target)
    t_fast = curves["fast_low_staleness"].time_to_reward(target)
    assert t_fast is not None and t_slow is not None
    assert t_fast < t_slow
    ratio = convergence_speedup(curves, "fast_low_staleness", "slow_on_policy",
                                target_fraction=0.6)
    assert ratio is not None and ratio > 1.0


def test_curve_helpers():
    curve = ConvergenceCurve(system="x")
    assert curve.final_reward() == float("-inf")
    assert curve.time_to_reward(0.0) is None

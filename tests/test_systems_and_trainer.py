"""Tests for the baseline systems, the trainer model and result metrics."""

from dataclasses import replace

import pytest

from repro.systems import (
    OneStepStaleness,
    PartialRollout,
    StreamGeneration,
    VerlSynchronous,
    available_systems,
    make_system,
)
from repro.experiments import make_system_config, placement_for, table2_rows
from repro.llm import QWEN_7B, fsdp_trainer_config
from repro.metrics import StageBreakdown, SystemRunResult, scaling_efficiency, speedup
from repro.trainer import Trainer, TrainerConfig
from repro.types import Prompt, Trajectory


def quick_config(system, gpus=32, scale=1 / 32, iters=2, warm=0, task="math"):
    config = make_system_config(system, "7B", gpus, task_type=task).scaled(scale)
    return replace(config, num_iterations=iters, warmup_iterations=warm)


# --------------------------------------------------------------------------- trainer
def test_trainer_config_validation():
    with pytest.raises(ValueError):
        TrainerConfig(global_batch_size=100, num_minibatches=16)
    config = TrainerConfig(global_batch_size=512, num_minibatches=16)
    assert config.global_batch_size // config.num_minibatches == 32


def test_trainer_records_iterations_and_checkpoints():
    trainer = Trainer(QWEN_7B, fsdp_trainer_config(8, 8),
                      TrainerConfig(global_batch_size=4, num_minibatches=2,
                                    checkpoint_interval_iterations=2))
    prompt = Prompt(prompt_id=0, group_id=0, prompt_tokens=10)
    batch = []
    for i in range(4):
        trajectory = Trajectory(traj_id=i, prompt=prompt, target_tokens=20)
        trajectory.advance(20, 0)
        from repro.types import Experience
        batch.append(Experience(trajectory=trajectory, reward=1.0, actor_version_at_completion=0))
    record1 = trainer.record_iteration(batch, 0.0, 10.0)
    record2 = trainer.record_iteration(batch, 10.0, 21.0)
    assert trainer.weight_version == 2
    assert record2.iteration == 2
    assert trainer.checkpoints_written == 1
    assert trainer.mean_iteration_duration() == pytest.approx(10.5)
    assert record1.throughput_tokens_per_s > 0


def test_trainer_iteration_time_scales_with_gpus():
    small = Trainer(QWEN_7B, fsdp_trainer_config(8, 8))
    large = Trainer(QWEN_7B, fsdp_trainer_config(64, 8))
    assert small.iteration_compute_time(1e6) > large.iteration_compute_time(1e6)


# --------------------------------------------------------------------------- placements (Table 2)
def test_table2_placements_consistency():
    rows = table2_rows()
    assert len(rows) == 75  # 5 systems x 3 models x 5 scales
    assert placement_for("laminar", "7B", 256) == (192, 64)
    assert placement_for("one_step", "72B", 1024) == (256, 768)
    assert placement_for("verl", "32B", 128) == (128, 0)
    with pytest.raises(KeyError):
        placement_for("laminar", "7B", 48)
    for (system, model, total), (train, rollout) in __import__(
        "repro.experiments.placements", fromlist=["PLACEMENTS"]
    ).PLACEMENTS.items():
        if rollout:
            assert train + rollout == total, (system, model, total)


def test_make_system_config_sets_system_specific_knobs():
    laminar = make_system_config("laminar", "7B", 64)
    areal = make_system_config("areal", "7B", 64)
    verl = make_system_config("verl", "7B", 64)
    assert laminar.repack_enabled and not areal.repack_enabled
    assert laminar.rollout_tensor_parallel == 1 and verl.rollout_tensor_parallel == 2
    assert verl.colocated and not laminar.colocated
    assert areal.staleness_bound > 100
    with pytest.raises(ValueError):
        make_system_config("nope", "7B", 64)


def test_scaled_config_preserves_group_size():
    config = make_system_config("verl", "7B", 64)
    scaled = config.scaled(1 / 16)
    assert scaled.group_size == config.group_size
    assert scaled.global_batch_size == scaled.num_prompts_per_batch * scaled.group_size
    assert scaled.global_batch_size % scaled.num_minibatches == 0
    with pytest.raises(ValueError):
        config.scaled(0.0)


# --------------------------------------------------------------------------- baselines
def test_system_registry_and_factory():
    assert {"verl", "one_step", "stream_gen", "areal", "laminar"} <= set(available_systems())
    assert isinstance(make_system(quick_config("verl")), VerlSynchronous)
    assert isinstance(make_system(quick_config("areal")), PartialRollout)


def test_verl_is_on_policy_and_serial():
    result = make_system(quick_config("verl")).run()
    assert len(result.iterations) == 2
    assert result.mean_staleness() == 0.0
    breakdown = result.mean_breakdown()
    # Generation and training are serial: iteration covers both plus switches.
    assert result.mean_iteration_time() == pytest.approx(
        breakdown.generation_time + breakdown.training_time + breakdown.weight_sync_time,
        rel=0.05,
    )


def test_one_step_pipeline_overlaps_and_has_staleness_one():
    result = make_system(quick_config("one_step", iters=3, warm=1)).run()
    assert result.max_staleness() == 1
    breakdown = result.mean_breakdown()
    assert result.mean_iteration_time(1) < (
        breakdown.generation_time + breakdown.training_time
    ) + 2 * result.extras["global_sync_time"]


def test_stream_generation_records_minibatch_pipeline():
    result = make_system(quick_config("stream_gen", iters=2)).run()
    assert len(result.iterations) == 2
    assert result.mean_iteration_time() > 0
    assert result.extras["global_sync_time"] > 0


def test_partial_rollout_mixes_versions_and_pays_reprefill():
    config = quick_config("areal", iters=3, warm=0)
    system = PartialRollout(config)
    result = system.run()
    assert len(result.iterations) == 3
    assert result.extras["total_reprefill_stall"] > 0
    # After a couple of updates some in-flight trajectories span versions.
    assert any(t.reprefill_count > 0 for r in system.replicas for t in
               [s.trajectory for s in r.sequences()]) or result.extras[
        "mixed_version_fraction"] >= 0.0


def test_long_tail_creates_bubbles_in_synchronous_generation():
    system = make_system(quick_config("verl", scale=1 / 16))
    outcome = system.generate_full_batch(weight_version=0)
    # The slowest replica defines the barrier; others idle (Fig 3a bubbles).
    assert outcome.bubble_time > 0
    assert max(outcome.per_replica_time) > min(outcome.per_replica_time)


# --------------------------------------------------------------------------- metrics
def test_speedup_and_scaling_efficiency_helpers():
    def result_with(tput_tokens, duration, gpus):
        result = SystemRunResult(system="x", model="7B", task="math", total_gpus=gpus,
                                 trainer_gpus=gpus, rollout_gpus=gpus)
        from repro.trainer.trainer import IterationRecord
        result.iterations.append(
            IterationRecord(iteration=1, start_time=0.0, end_time=duration,
                            tokens_trained=tput_tokens, trajectories=1, mean_reward=0.0,
                            mean_staleness=0.0, max_staleness=0, weight_version=1)
        )
        return result

    fast = result_with(1000, 1.0, 32)
    slow = result_with(1000, 4.0, 16)
    assert speedup(fast, slow) == pytest.approx(4.0)
    efficiency = scaling_efficiency([slow, fast])
    assert efficiency == pytest.approx(2.0)  # 4x throughput on 2x GPUs


def test_stage_breakdown_fractions_sum_to_one():
    breakdown = StageBreakdown(generation_time=8.0, training_time=1.0, weight_sync_time=0.5,
                               experience_prep_time=0.25, bubble_time=0.25)
    fractions = breakdown.fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert fractions["generation"] == pytest.approx(0.8)

"""Tests for Laminar's core: repack (Algorithm 1), relays, staleness, failover,
and the end-to-end LaminarSystem."""

from dataclasses import replace

import numpy as np
import pytest

from repro.systems import (
    FailureEvent,
    FailureInjector,
    FailureKind,
    LaminarSystem,
    RecoveryModel,
    RelayService,
    RepackExecutor,
    ReplicaSnapshot,
    RolloutManager,
    StalenessTracker,
    best_fit_consolidation,
    broadcast_breakdown,
    broadcast_latency,
    figure18_series,
    plan_repack,
    rollout_wait_comparison,
    storage_vs_relay,
)
from repro.experiments import make_system_config
from repro.llm import QWEN_7B, QWEN_32B, QWEN_72B
from repro.types import Prompt, Trajectory


# --------------------------------------------------------------------------- Algorithm 1
def snap(rid, used, prev, reqs, version=0, waiting=False):
    return ReplicaSnapshot(replica_id=rid, weight_version=version, kvcache_used=used,
                           kvcache_prev=prev, num_requests=reqs, has_waiting=waiting)


def test_best_fit_consolidates_underutilised_replicas():
    snapshots = [
        snap(0, 0.10, 0.20, 10),
        snap(1, 0.15, 0.30, 12),
        snap(2, 0.20, 0.40, 20),
        snap(3, 0.95, 0.99, 200, waiting=True),  # busy replica: not a candidate
    ]
    plan = best_fit_consolidation(snapshots, c_max=0.99, batch_bound=128)
    assert plan.num_released >= 2
    assert 3 not in plan.sources and 3 not in plan.destinations
    # Sources are released in ascending KVCache order (smallest footprint first).
    assert plan.sources[0] == 0


def test_best_fit_respects_cache_and_request_bounds():
    snapshots = [snap(0, 0.6, 0.7, 100), snap(1, 0.6, 0.7, 100)]
    # Together they would exceed the request bound, so no consolidation.
    plan = best_fit_consolidation(snapshots, c_max=0.99, batch_bound=150)
    assert plan.num_released == 0
    # Raise the bound and they consolidate.
    plan = best_fit_consolidation(snapshots, c_max=1.3, batch_bound=400)
    assert plan.num_released == 1


def test_best_fit_prefers_densest_destination():
    snapshots = [snap(0, 0.05, 0.1, 5), snap(1, 0.50, 0.6, 50), snap(2, 0.30, 0.4, 30)]
    plan = best_fit_consolidation(snapshots, c_max=0.99, batch_bound=500)
    # Replica 0 (smallest) is packed into replica 1 (densest that still fits).
    assert plan.pairs[0] == (0, 1)


def test_plan_repack_groups_by_version():
    snapshots = [snap(0, 0.1, 0.2, 5, version=3), snap(1, 0.1, 0.2, 5, version=3),
                 snap(2, 0.1, 0.2, 5, version=4), snap(3, 0.1, 0.2, 5, version=4)]
    plans = plan_repack(snapshots, c_max=0.99, batch_bound=100)
    assert set(plans) == {3, 4}
    for version, plan in plans.items():
        for source, dest in plan.pairs:
            source_version = [s for s in snapshots if s.replica_id == source][0].weight_version
            dest_version = [s for s in snapshots if s.replica_id == dest][0].weight_version
            assert source_version == dest_version == version


def test_best_fit_rejects_mixed_version_group():
    with pytest.raises(ValueError):
        best_fit_consolidation([snap(0, 0.1, 0.2, 5, version=1), snap(1, 0.1, 0.2, 5, version=2)],
                               c_max=0.99, batch_bound=64)


def test_candidate_condition_matches_paper_line3():
    c_max, bound = 0.99, 64
    assert snap(0, 0.5, 0.6, 10).is_candidate(c_max, bound)
    assert not snap(0, 0.5, 0.4, 10).is_candidate(c_max, bound)   # utilisation increasing
    assert not snap(0, 0.995, 1.0, 10).is_candidate(c_max, bound)  # above C_max
    assert not snap(0, 0.5, 0.6, 65).is_candidate(c_max, bound)    # too many requests
    assert not snap(0, 0.5, 0.6, 10, waiting=True).is_candidate(c_max, bound)


# --------------------------------------------------------------------------- relays
def test_relay_publish_and_pull_semantics():
    relay = RelayService(QWEN_32B, rollout_machine_ids=[0, 1, 2, 3], rollout_tensor_parallel=4)
    publication = relay.publish(1, time=100.0)
    assert publication.actor_stall < 5.0  # the actor barely stalls (§8.3)
    assert publication.master_available_at < publication.broadcast_complete_at
    # Just after publication only the master machine has version 1.
    t = publication.master_available_at + 1e-6
    assert relay.available_version(0, t) == 1
    assert relay.available_version(3, t) in (0, 1)
    # After the broadcast completes every machine sees version 1.
    t_done = publication.broadcast_complete_at + 1e-6
    assert all(relay.available_version(m, t_done) == 1 for m in range(4))
    # Pulls never block on the broadcast: they return the resident version.
    record = relay.pull_latency(3, publication.master_available_at + 1e-6, replica_id=9)
    assert record.local_hit
    assert record.wait_time < 1.0
    assert relay.mean_pull_wait() > 0


def test_relay_versions_must_be_published_in_order():
    relay = RelayService(QWEN_7B, [0], 1)
    relay.publish(1, 0.0)
    with pytest.raises(ValueError):
        relay.publish(3, 1.0)
    with pytest.raises(ValueError):
        relay.publish(1, 1.0)


def test_relay_failover_and_master_reelection():
    relay = RelayService(QWEN_7B, [0, 1, 2], 1)
    repair = relay.fail_machine(0)  # the master
    assert repair <= 2.0
    assert relay.master_machine == 1
    assert relay.master_failovers == 1
    relay.publish(1, 10.0)
    catch_up = relay.recover_machine(0, 50.0)
    assert catch_up >= 50.0
    assert relay.available_version(0, catch_up + 1e-6) == 1


def test_relay_pull_specific_version_waits_for_broadcast():
    relay = RelayService(QWEN_72B, [0, 1, 2, 3, 4, 5, 6, 7], 8)
    publication = relay.publish(1, time=0.0)
    record = relay.pull_specific_version(7, 1, time=publication.master_available_at)
    assert record.wait_time > 0.0
    with pytest.raises(KeyError):
        relay.pull_specific_version(0, 9, time=0.0)


# --------------------------------------------------------------------------- broadcast model
def test_broadcast_latency_matches_paper_magnitude():
    """Fig 18 / §4.2: a 72B broadcast to ~128 relays takes a couple of seconds."""
    latency = broadcast_latency(QWEN_72B, 128)
    assert 1.0 < latency < 6.0
    series = figure18_series(QWEN_32B)
    assert series[128] < 2 * series[4] + 1.0  # near-constant in machine count


def test_broadcast_breakdown_dominated_by_bandwidth_term():
    breakdown = broadcast_breakdown(QWEN_72B, 128)
    assert breakdown.bandwidth_term > 10 * breakdown.latency_term
    assert breakdown.bandwidth_term > breakdown.pipeline_term


def test_rollout_wait_comparison_laminar_beats_gpu_direct():
    comparison = rollout_wait_comparison(QWEN_32B, rollout_gpus=256, rollout_tensor_parallel=4)
    assert comparison["laminar_best"] < comparison["laminar_mean"] < comparison["gpu_direct"]


def test_storage_system_is_much_slower_than_relay():
    numbers = storage_vs_relay(QWEN_32B, num_readers=16)
    assert numbers["storage_system"] > 20 * numbers["relay_chain"]


# --------------------------------------------------------------------------- staleness tracker
def test_staleness_tracker_distribution_and_buckets():
    tracker = StalenessTracker()
    prompt = Prompt(prompt_id=0, group_id=0, prompt_tokens=10)
    for i, (version, finish) in enumerate([(0, 10.0), (0, 130.0), (1, 260.0), (3, 400.0)]):
        trajectory = Trajectory(traj_id=i, prompt=prompt, target_tokens=5, weight_version=version)
        trajectory.advance(5, version)
        trajectory.finish_time = finish
        tracker.record(trajectory, actor_version_at_finish=3)
    dist = tracker.distribution()
    assert sum(dist.values()) == pytest.approx(1.0)
    assert tracker.max_staleness() == 3
    assert tracker.fraction_at_most(3) == 1.0
    buckets = tracker.by_finish_time_bucket(bucket_seconds=120.0)
    assert len(buckets) >= 3


# --------------------------------------------------------------------------- failure injection
def test_failure_injector_fires_in_order():
    injector = FailureInjector()
    injector.add(FailureEvent(time=50.0, kind=FailureKind.ROLLOUT_MACHINE, target=1))
    injector.add(FailureEvent(time=10.0, kind=FailureKind.RELAY, target=0))
    assert injector.next_failure_time() == 10.0
    assert [e.kind for e in injector.due(20.0)] == [FailureKind.RELAY]
    assert injector.due(20.0) == []
    assert [e.target for e in injector.due(60.0)] == [1]
    assert len(injector.fired) == 2


def test_recovery_model_latencies():
    model = RecoveryModel()
    event = FailureEvent(time=0.0, kind=FailureKind.ROLLOUT_MACHINE, target=0)
    slow = model.rollout_recovery_time(event)
    fast = model.rollout_recovery_time(replace(event, reinit_succeeds=True))
    assert fast < slow
    assert model.relay_recovery_time() < 1.0


# --------------------------------------------------------------------------- end-to-end Laminar
@pytest.fixture(scope="module")
def small_laminar_result():
    config = make_system_config("laminar", "7B", 32, task_type="math").scaled(1 / 32)
    config = replace(config, num_iterations=4, warmup_iterations=1)
    system = LaminarSystem(config)
    result = system.run()
    return system, result


def test_laminar_completes_requested_iterations(small_laminar_result):
    system, result = small_laminar_result
    assert len(result.iterations) == 4
    assert result.throughput(1) > 0
    assert result.wall_clock > 0


def test_laminar_staleness_is_small_and_emergent(small_laminar_result):
    system, result = small_laminar_result
    # §6 / Fig 10: inherent staleness stays small without any configured bound.
    assert result.extras["max_inherent_staleness"] <= 8
    assert system.staleness.fraction_at_most(4) > 0.5


def test_laminar_trajectories_use_single_policy_version(small_laminar_result):
    """Unlike partial rollout, Laminar never mixes policy versions in a trajectory."""
    system, result = small_laminar_result
    assert all(not exp.trajectory.mixed_versions for exp in system.buffer.peek_all())


def test_laminar_relay_and_actor_overheads_are_small(small_laminar_result):
    system, result = small_laminar_result
    assert result.extras["relay_mean_pull_wait"] < 2.0
    # Actor stall per update is well under a couple of seconds for a 7B model.
    per_update = result.extras["actor_stall_total"] / max(1, len(result.iterations))
    assert per_update < 2.0


def test_laminar_requires_disaggregated_placement():
    config = make_system_config("verl", "7B", 32)
    with pytest.raises(ValueError):
        LaminarSystem(replace(config, system="laminar"))


def test_laminar_survives_rollout_machine_failure():
    config = make_system_config("laminar", "7B", 64, task_type="math").scaled(1 / 32)
    config = replace(config, num_iterations=12, warmup_iterations=0)
    injector = FailureInjector()
    injector.add(FailureEvent(time=15.0, kind=FailureKind.ROLLOUT_MACHINE, target=0))
    system = LaminarSystem(config, failure_injector=injector)
    result = system.run()
    assert len(result.iterations) == 12  # training continued through the failure
    assert result.extras["failures_handled"] == 1.0
    record = system.manager.recovery_records[0]
    assert record.trajectories_lost == 0 or record.trajectories_redirected >= 0
    assert record.downtime > 0


def test_relay_outage_does_not_rehost_a_failed_machines_replicas():
    """A relay recovery rebuilds only the relay chain.  With a rollout-machine
    outage in flight, the relay's (earlier-finishing) recovery must not hand
    the dead machine's replica budget to the relay's machine — the replicas
    come back only when the failed machine itself recovers."""
    config = make_system_config("laminar", "7B", 64, task_type="math").scaled(1 / 32)
    config = replace(config, num_iterations=12, warmup_iterations=0)
    injector = FailureInjector()
    injector.add(FailureEvent(time=15.0, kind=FailureKind.ROLLOUT_MACHINE, target=0))
    injector.add(FailureEvent(time=16.0, kind=FailureKind.RELAY, target=1))
    system = LaminarSystem(config, failure_injector=injector)
    failed_count = len(
        [rid for rid, machine in system.replica_machine.items() if machine == 0]
    )
    per_machine_cap = system._replicas_per_machine()
    result = system.run()
    assert len(result.iterations) == 12
    # The relay's quick recovery must not have re-hosted machine 0's replica
    # budget on machine 1: no machine ever hosts more than its own share, and
    # machine 0's replicas return only via its own recovery (or not at all if
    # the run ends first).
    per_machine = {}
    for machine in system.replica_machine.values():
        per_machine[machine] = per_machine.get(machine, 0) + 1
    assert all(count <= per_machine_cap for count in per_machine.values())
    assert per_machine.get(0, 0) in (0, failed_count)
    # The relay chain itself did come back.
    assert system.relay.latest_version() >= 1


def _trainer_failure_run(failure_time=None, num_iterations=2):
    config = make_system_config("laminar", "7B", 64, task_type="math").scaled(1 / 32)
    config = replace(config, num_iterations=num_iterations, warmup_iterations=1)
    injector = FailureInjector()
    if failure_time is not None:
        injector.add(FailureEvent(time=failure_time, kind=FailureKind.TRAINER, target=0))
    system = LaminarSystem(config, failure_injector=injector)
    return system, system.run()


def test_trainer_failure_while_idle_charges_checkpoint_restore():
    """Regression: an idle-trainer failure used to be a no-op; the checkpoint
    restore must delay the next iteration in both the busy and idle cases."""
    _, baseline = _trainer_failure_run(None)
    system, failed = _trainer_failure_run(failure_time=1.0)  # buffer still filling: idle
    restore = system.recovery.trainer_recovery_time()
    delay = failed.iterations[0].end_time - baseline.iterations[0].end_time
    # The first update cannot complete before the restore finishes...
    assert failed.iterations[0].end_time >= 1.0 + restore
    # ... and the charged delay is on the order of the restore time.
    assert delay > restore / 2
    # Rollouts keep generating through the outage and training still finishes.
    assert len(failed.iterations) == len(baseline.iterations)


def test_trainer_failure_while_busy_delays_completion():
    _, baseline = _trainer_failure_run(None)
    busy_at = baseline.iterations[0].end_time - 0.5  # mid first iteration
    system, failed = _trainer_failure_run(failure_time=busy_at)
    restore = system.recovery.trainer_recovery_time()
    delay = failed.iterations[0].end_time - baseline.iterations[0].end_time
    assert delay >= restore - 1.0


def test_recovered_machine_hosts_original_replica_count():
    """Regression: recovery recomputed replicas-per-machine as ``8 // TP``,
    ignoring the ``min(gpus_per_machine, rollout_gpus)`` clamp used at
    construction — a machine with fewer than 8 rollout GPUs could come back
    hosting more replicas than it originally did.  Placement and recovery now
    share one helper."""
    from repro.config import SystemConfig
    from repro.llm import fsdp_trainer_config

    config = SystemConfig(
        system="laminar",
        model_size="7B",
        task_type="math",
        trainer_gpus=8,
        rollout_gpus=4,  # partially-populated machine: the clamp matters
        rollout_tensor_parallel=1,
        trainer_parallel=fsdp_trainer_config(8, 8),
        global_batch_size=64,
        num_prompts_per_batch=4,
        num_minibatches=4,
        num_iterations=1,
        warmup_iterations=0,
    )
    system = LaminarSystem(config)
    # The helper applies the clamp: 4 GPUs / TP=1 gives 4, not 8 // TP = 8.
    assert system._replicas_per_machine() == 4
    assert len(system.replicas) == 4

    # Full failure + recovery cycle on a two-machine fleet: the recovered
    # machine must host exactly what it hosted before, never more.
    config = make_system_config("laminar", "7B", 64, task_type="math").scaled(1 / 32)
    config = replace(config, num_iterations=1, warmup_iterations=0)
    system = LaminarSystem(config)
    hosted_before = sum(1 for m in system.replica_machine.values() if m == 0)
    assert hosted_before == system._replicas_per_machine()
    event = FailureEvent(time=10.0, kind=FailureKind.ROLLOUT_MACHINE, target=0)
    system._apply_rollout_failure(event, now=10.0)
    assert all(system.replica_machine.get(rid) != 0 for rid in system.replicas)
    system._recover_machine(0, now=300.0)
    hosted_after = sum(1 for m in system.replica_machine.values() if m == 0)
    assert hosted_after == hosted_before
    assert len(system.replicas) == config.num_rollout_replicas()


def test_rollout_manager_repack_executes_on_live_replicas():
    manager = RolloutManager(c_max=0.99, batch_bound=64, repack_interval=5.0)
    config = make_system_config("laminar", "7B", 32).scaled(1 / 32)
    system = LaminarSystem(replace(config, num_iterations=1, warmup_iterations=0))
    # Build a synthetic two-replica situation in ramp-down.
    replicas = {rid: replica for rid, replica in list(system.replicas.items())[:2]}
    for replica in replicas.values():
        replica.observe_utilization()
    released, overhead = manager.maybe_repack(replicas, now=10.0, force=True)
    assert isinstance(released, list)
    assert overhead >= 0.0
